"""Replicated checkpoint archives: quorum writes, read-repair, scrubbing.

:class:`ReplicatedCheckpointStore` turns N independent blob stores into
one durable checkpoint archive with the recovery semantics the paper's
fault-tolerance story assumes:

* **Quorum commit** — each checkpoint (the ``.npz`` bytes from
  :func:`repro.framework.checkpoint.save_bytes`) is written to every
  store; it *commits* only once a write quorum (majority by default)
  acknowledges both the payload and its manifest. A missed quorum raises
  — the caller knows the checkpoint is not durable.
* **Atomic visibility** — the manifest (carrying the payload's SHA-256
  digest) is written *after* the payload on each store, and restore
  refuses any replica whose payload does not hash to its manifest's
  digest. A torn or interrupted commit therefore never restores
  partially: readers see the previous checkpoint or the new one,
  nothing in between.
* **Failover + read-repair** — restore tries replicas in order,
  digest-verifies each, and rewrites damaged replicas from the first
  intact copy it finds.
* **Scrubbing** — a background pass (driven by the store's clock, so
  virtual-time tests can force it) digest-checks every replica of every
  checkpoint and heals rot before a second fault can make it
  unrecoverable.
* **Retention** — superseded checkpoints beyond ``keep_last`` are
  garbage-collected from all stores after each successful commit.

All of it narrates through :class:`~repro.storage.events.StorageEvent`
records on an optional tracer, and all of it is chaos-testable: arm a
:class:`~repro.framework.faults.StorageFaultPlan` with
:meth:`ReplicatedCheckpointStore.install_faults` and the ``durability``
oracle checks the commit contract under fire.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

import numpy as np

from ..framework import checkpoint as checkpoint_lib
from ..framework.checkpoint import CheckpointError
from ..framework.clock import Clock, SystemClock
from ..framework.errors import StorageError
from ..framework.faults import StorageFaultInjector, StorageFaultPlan
from .blobstore import BlobStore, LocalDirStore
from .events import StorageEvent

#: manifest JSON kind tag
MANIFEST_KIND = "repro-checkpoint-manifest"

#: key prefix every checkpoint blob lives under
CHECKPOINT_PREFIX = "ckpt/"


class CheckpointQuorumError(StorageError):
    """A checkpoint write missed its quorum and is NOT durable.

    Attributes:
        record: the :class:`CheckpointRecord` of the failed attempt
            (``committed=False``), with however many replica acks it
            did collect.
    """

    def __init__(self, message: str, record: "CheckpointRecord"):
        super().__init__(message)
        self.record = record


@dataclass(frozen=True)
class CheckpointRecord:
    """The outcome of one checkpoint write.

    Attributes:
        checkpoint_id: monotonically increasing archive id.
        digest: SHA-256 hex digest of the payload bytes.
        replicas: how many stores acknowledged both blobs.
        committed: whether the write reached quorum.
        step: the training step the checkpoint captures (-1 if unknown).
        elapsed: clock seconds the write consumed.
    """

    checkpoint_id: int
    digest: str
    replicas: int
    committed: bool
    step: int
    elapsed: float


@dataclass(frozen=True)
class ScrubReport:
    """The outcome of one scrub pass over every replica.

    Attributes:
        checked: replicas digest-verified.
        healed: damaged replicas rewritten from an intact copy.
        unrecoverable: checkpoint ids with no intact replica left.
    """

    checked: int
    healed: int
    unrecoverable: tuple[int, ...] = field(default_factory=tuple)


def state_digests(session) -> dict[str, str]:
    """Per-variable SHA-256 digests of a session's current state.

    The bitwise-identity yardstick durability checks compare against:
    two sessions agree on these exactly iff every variable is
    bit-for-bit identical.
    """
    from ..framework.checkpoint import _graph_variables
    return {
        name: hashlib.sha256(
            np.ascontiguousarray(
                session.variable_value(op.output)).tobytes()).hexdigest()
        for name, op in _graph_variables(session.graph).items()}


def _payload_key(checkpoint_id: int) -> str:
    return f"{CHECKPOINT_PREFIX}{checkpoint_id:08d}/payload"


def _manifest_key(checkpoint_id: int) -> str:
    return f"{CHECKPOINT_PREFIX}{checkpoint_id:08d}/manifest"


def _checkpoint_id_of(key: str) -> int | None:
    """Parse the checkpoint id out of an archive key, if it is one."""
    parts = key.split("/")
    if len(parts) == 3 and parts[0] == CHECKPOINT_PREFIX.rstrip("/") \
            and parts[2] in ("payload", "manifest"):
        try:
            return int(parts[1])
        except ValueError:
            return None
    return None


class ReplicatedCheckpointStore:
    """N-way replicated, digest-verified, self-scrubbing checkpoints.

    Args:
        stores: the blob stores forming the replication group (their
            ``store_id`` should match their index).
        quorum: write quorum; defaults to a majority
            (``len(stores) // 2 + 1``).
        keep_last: retain only this many committed checkpoints
            (``None`` = keep everything).
        scrub_interval: clock seconds between automatic scrub passes
            (``None`` = only scrub when :meth:`scrub` is called).
        clock: the clock scrub scheduling runs on; defaults to the
            first store's clock.
        tracer: optional tracer receiving :class:`StorageEvent`
            narration.
    """

    def __init__(self, stores, quorum: int | None = None,
                 keep_last: int | None = None,
                 scrub_interval: float | None = None,
                 clock: Clock | None = None, tracer=None):
        self.stores: tuple[BlobStore, ...] = tuple(stores)
        if not self.stores:
            raise ValueError("need at least one blob store")
        if quorum is None:
            quorum = len(self.stores) // 2 + 1
        if not 1 <= quorum <= len(self.stores):
            raise ValueError(
                f"quorum must be in [1, {len(self.stores)}], got {quorum}")
        self.quorum = quorum
        if keep_last is not None and keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.keep_last = keep_last
        self.scrub_interval = scrub_interval
        self.clock: Clock = clock if clock is not None \
            else self.stores[0].clock
        self.tracer = tracer
        self.counters = {
            "commits": 0, "commit_failures": 0, "replica_write_failures": 0,
            "failovers": 0, "corrupt_replicas": 0, "read_repairs": 0,
            "scrub_passes": 0, "scrub_heals": 0, "unrecoverable": 0,
            "gc_collected": 0}
        self._next_id = self._recover_next_id()
        self._committed: list[int] = []
        self._last_scrub = self.clock.now()
        self._injector: StorageFaultInjector | None = None

    # -- wiring ------------------------------------------------------------

    def _recover_next_id(self) -> int:
        """Resume the id sequence past anything already archived."""
        highest = -1
        for store in self.stores:
            for key in store.list(CHECKPOINT_PREFIX):
                cid = _checkpoint_id_of(key)
                if cid is not None:
                    highest = max(highest, cid)
        return highest + 1

    def install_faults(self, plan: StorageFaultPlan) -> StorageFaultInjector:
        """Arm one shared injector against every store in the group."""
        injector = plan.injector()
        injector.attach_clock(self.clock)
        for store in self.stores:
            store.attach_faults(injector)
        self._injector = injector
        return injector

    def uninstall_faults(self) -> None:
        for store in self.stores:
            store.detach_faults()
        self._injector = None

    def _emit(self, step: int, kind: str, store: int, key: str,
              seconds_lost: float, detail: str) -> None:
        if self.tracer is not None:
            self.tracer.record_event(StorageEvent(
                step=step, kind=kind, store=store, key=key,
                seconds_lost=seconds_lost, detail=detail))

    # -- writing -----------------------------------------------------------

    def save(self, session, step: int = -1) -> CheckpointRecord:
        """Checkpoint ``session``'s variables durably; raise if not.

        Serializes through :func:`repro.framework.checkpoint.save_bytes`
        (identical archive format to the file path) and quorum-writes
        via :meth:`save_payload`.
        """
        return self.save_payload(checkpoint_lib.save_bytes(session),
                                 step=step)

    def save_payload(self, data: bytes, step: int = -1) -> CheckpointRecord:
        """Quorum-write pre-serialized checkpoint bytes.

        Raises :class:`CheckpointQuorumError` when fewer than ``quorum``
        stores acknowledge — the checkpoint is then *not committed* and
        restore will never prefer it over an older committed one.
        """
        started = self.clock.now()
        checkpoint_id = self._next_id
        self._next_id += 1  # ids advance even on failure: no reuse
        digest = hashlib.sha256(data).hexdigest()
        manifest = json.dumps(
            {"kind": MANIFEST_KIND, "id": checkpoint_id, "digest": digest,
             "size": len(data), "step": step},
            sort_keys=True).encode("utf-8")
        acked = 0
        for store in self.stores:
            try:
                # Payload first, manifest second: a replica without a
                # manifest is invisible to restore, so an interruption
                # between the two writes can never expose partial state.
                store.put(_payload_key(checkpoint_id), data)
                store.put(_manifest_key(checkpoint_id), manifest)
                acked += 1
            except StorageError as exc:
                self.counters["replica_write_failures"] += 1
                self._emit(checkpoint_id, "replica_write_failed",
                           store.store_id, _payload_key(checkpoint_id),
                           0.0, f"replica write failed: {exc}")
        elapsed = self.clock.now() - started
        record = CheckpointRecord(
            checkpoint_id=checkpoint_id, digest=digest, replicas=acked,
            committed=acked >= self.quorum, step=step, elapsed=elapsed)
        if not record.committed:
            self.counters["commit_failures"] += 1
            self._emit(checkpoint_id, "commit_failed", -1,
                       _payload_key(checkpoint_id), elapsed,
                       f"checkpoint {checkpoint_id} missed quorum: "
                       f"{acked}/{self.quorum} replicas acknowledged")
            raise CheckpointQuorumError(
                f"checkpoint {checkpoint_id} is NOT durable: only {acked} "
                f"of {len(self.stores)} replicas acknowledged "
                f"(quorum {self.quorum})", record=record)
        self.counters["commits"] += 1
        self._committed.append(checkpoint_id)
        self._emit(checkpoint_id, "commit", -1,
                   _payload_key(checkpoint_id), elapsed,
                   f"checkpoint {checkpoint_id} committed on "
                   f"{acked}/{len(self.stores)} replicas "
                   f"(digest {digest[:12]}…)")
        self._gc()
        self.maybe_scrub()
        return record

    # -- reading -----------------------------------------------------------

    def _verify_replica(self, store: BlobStore,
                        checkpoint_id: int) -> tuple[bytes, bytes]:
        """Fetch and digest-verify one replica; raise on any defect."""
        manifest_raw = store.get(_manifest_key(checkpoint_id))
        try:
            manifest = json.loads(manifest_raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StorageError(
                f"store {store.store_id}: checkpoint {checkpoint_id} "
                f"manifest is unreadable: {exc}") from exc
        if manifest.get("kind") != MANIFEST_KIND \
                or manifest.get("id") != checkpoint_id \
                or "digest" not in manifest:
            raise StorageError(
                f"store {store.store_id}: checkpoint {checkpoint_id} "
                f"manifest is malformed")
        payload = store.get(_payload_key(checkpoint_id))
        actual = hashlib.sha256(payload).hexdigest()
        if actual != manifest["digest"]:
            raise StorageError(
                f"store {store.store_id}: checkpoint {checkpoint_id} "
                f"payload digest mismatch (manifest "
                f"{manifest['digest'][:12]}…, stored {actual[:12]}…)")
        return payload, manifest_raw

    def fetch(self, checkpoint_id: int) -> bytes:
        """Return a checkpoint's verified payload bytes.

        Tries replicas in store order; a replica only counts if its
        payload hashes to its manifest's digest. Damaged or unavailable
        replicas are failed over — and, once an intact copy is found,
        repaired from it in place (best effort). Raises
        :class:`~repro.framework.checkpoint.CheckpointError` when no
        intact replica remains.
        """
        started = self.clock.now()
        bad: list[tuple[BlobStore, str]] = []
        for store in self.stores:
            try:
                payload, manifest_raw = self._verify_replica(
                    store, checkpoint_id)
            except StorageError as exc:
                corrupt = "digest mismatch" in str(exc) \
                    or "manifest" in str(exc)
                kind = "corrupt_replica" if corrupt else "failover"
                counter = "corrupt_replicas" if corrupt else "failovers"
                self.counters[counter] += 1
                self._emit(checkpoint_id, kind, store.store_id,
                           _payload_key(checkpoint_id),
                           self.clock.now() - started, str(exc))
                bad.append((store, str(exc)))
                continue
            self._repair(checkpoint_id, payload, manifest_raw,
                         [store for store, _ in bad])
            return payload
        raise CheckpointError(
            f"checkpoint {checkpoint_id} has no intact replica "
            f"({len(bad)} tried): " + "; ".join(
                reason for _, reason in bad[:3]))

    def _repair(self, checkpoint_id: int, payload: bytes,
                manifest_raw: bytes, targets) -> None:
        """Rewrite damaged replicas from a verified copy (best effort)."""
        for store in targets:
            started = self.clock.now()
            try:
                store.put(_payload_key(checkpoint_id), payload)
                store.put(_manifest_key(checkpoint_id), manifest_raw)
            except StorageError:
                continue  # the scrubber will retry later
            self.counters["read_repairs"] += 1
            self._emit(checkpoint_id, "read_repair", store.store_id,
                       _payload_key(checkpoint_id),
                       self.clock.now() - started,
                       f"replica on store {store.store_id} rewritten "
                       f"from an intact copy")

    def checkpoint_ids(self) -> list[int]:
        """Every checkpoint id any store knows about, ascending."""
        ids: set[int] = set()
        for store in self.stores:
            for key in store.list(CHECKPOINT_PREFIX):
                cid = _checkpoint_id_of(key)
                if cid is not None:
                    ids.add(cid)
        return sorted(ids)

    def latest_committed_id(self) -> int | None:
        """The newest id committed *by this store object*, if any."""
        return self._committed[-1] if self._committed else None

    def restore(self, session, checkpoint_id: int | None = None,
                strict: bool = True) -> CheckpointRecord:
        """Load a checkpoint into ``session``, newest first by default.

        With an explicit ``checkpoint_id`` the restore succeeds from
        that archive or raises. With ``None`` it walks ids newest →
        oldest, skipping archives with no intact replica, and raises
        :class:`~repro.framework.checkpoint.CheckpointError` only when
        nothing restorable remains.
        """
        started = self.clock.now()
        if checkpoint_id is not None:
            candidates = [checkpoint_id]
        else:
            candidates = list(reversed(self.checkpoint_ids()))
            if not candidates:
                raise CheckpointError(
                    "no checkpoints found in any replica store")
        failures = []
        for cid in candidates:
            try:
                payload = self.fetch(cid)
            except (StorageError, CheckpointError) as exc:
                failures.append(f"ckpt {cid}: {exc}")
                continue
            checkpoint_lib.restore_bytes(
                session, payload, strict=strict,
                source=_payload_key(cid))
            return CheckpointRecord(
                checkpoint_id=cid,
                digest=hashlib.sha256(payload).hexdigest(),
                replicas=len(self.stores), committed=True, step=-1,
                elapsed=self.clock.now() - started)
        raise CheckpointError(
            "no restorable checkpoint: " + "; ".join(failures[:3]))

    # -- scrubbing ---------------------------------------------------------

    def maybe_scrub(self) -> ScrubReport | None:
        """Run a scrub pass if the configured interval has elapsed."""
        if self.scrub_interval is None:
            return None
        if self.clock.now() - self._last_scrub < self.scrub_interval:
            return None
        return self.scrub()

    def scrub(self) -> ScrubReport:
        """Digest-verify every replica of every checkpoint; heal rot.

        A damaged replica is rewritten from the first intact copy of the
        same checkpoint. Checkpoints with *no* intact replica are
        reported unrecoverable (and left in place for forensics).
        """
        checked = healed = 0
        unrecoverable: list[int] = []
        for cid in self.checkpoint_ids():
            good: tuple[bytes, bytes] | None = None
            damaged: list[BlobStore] = []
            for store in self.stores:
                if not store.exists(_manifest_key(cid)) \
                        and not store.exists(_payload_key(cid)):
                    # This store never acked this checkpoint (or GC'd
                    # it); absence is not damage.
                    continue
                checked += 1
                try:
                    replica = self._verify_replica(store, cid)
                except StorageError:
                    damaged.append(store)
                    continue
                if good is None:
                    good = replica
            if good is None:
                if damaged:
                    unrecoverable.append(cid)
                    self.counters["unrecoverable"] += 1
                    self._emit(cid, "unrecoverable", -1,
                               _payload_key(cid), 0.0,
                               f"checkpoint {cid}: every replica is "
                               f"damaged; nothing to heal from")
                continue
            payload, manifest_raw = good
            for store in damaged:
                started = self.clock.now()
                try:
                    store.put(_payload_key(cid), payload)
                    store.put(_manifest_key(cid), manifest_raw)
                except StorageError:
                    continue
                healed += 1
                self.counters["scrub_heals"] += 1
                self._emit(cid, "scrub_heal", store.store_id,
                           _payload_key(cid),
                           self.clock.now() - started,
                           f"scrub healed checkpoint {cid} replica on "
                           f"store {store.store_id}")
        self.counters["scrub_passes"] += 1
        self._last_scrub = self.clock.now()
        report = ScrubReport(checked=checked, healed=healed,
                             unrecoverable=tuple(unrecoverable))
        self._emit(-1, "scrub", -1, "", 0.0,
                   f"scrub pass: {checked} replicas checked, "
                   f"{healed} healed, "
                   f"{len(unrecoverable)} unrecoverable")
        return report

    # -- retention ---------------------------------------------------------

    def _gc(self) -> None:
        """Collect committed checkpoints beyond the retention window."""
        if self.keep_last is None or len(self._committed) <= self.keep_last:
            return
        cutoff = self._committed[-self.keep_last]
        collected = 0
        for cid in self.checkpoint_ids():
            if cid >= cutoff:
                continue
            for store in self.stores:
                for key in (_payload_key(cid), _manifest_key(cid)):
                    try:
                        store.delete(key)
                    except StorageError:
                        pass  # unreachable store: scrub-era leftovers
            collected += 1
        self._committed = [cid for cid in self._committed if cid >= cutoff]
        if collected:
            self.counters["gc_collected"] += collected
            self._emit(-1, "gc", -1, "", 0.0,
                       f"garbage-collected {collected} superseded "
                       f"checkpoint(s) below id {cutoff}")


def open_local_store(root: str | os.PathLike,
                     replicas: int | None = None,
                     clock: Clock | None = None,
                     **kwargs) -> ReplicatedCheckpointStore:
    """Open (or create) a replicated archive rooted at ``root``.

    Layout: ``root/replica-0 … root/replica-{N-1}``, one
    :class:`LocalDirStore` each. With ``replicas=None`` the replica
    count is discovered from the directories already present (raising
    if there are none); pass an explicit count to create a new archive.
    """
    root = os.fspath(root)
    if replicas is None:
        found = sorted(
            name for name in (os.listdir(root) if os.path.isdir(root)
                              else [])
            if name.startswith("replica-"))
        if not found:
            raise CheckpointError(
                f"no replica directories under {root!r}; pass an "
                f"explicit replica count to create a new archive")
        replicas = len(found)
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    clock = clock if clock is not None else SystemClock()
    stores = [LocalDirStore(os.path.join(root, f"replica-{i}"),
                            store_id=i, clock=clock)
              for i in range(replicas)]
    return ReplicatedCheckpointStore(stores, clock=clock, **kwargs)
