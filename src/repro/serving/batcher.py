"""Deadline-aware dynamic batching with admission control.

The workloads' compiled inference plans take *fixed-shape* batch feeds
(static shapes are what make the plan pipeline possible, see
docs/compiler.md), but serving traffic arrives one example at a time.
Two pieces bridge the gap:

* :class:`FeedCodec` — understands each placeholder's batch layout
  (batch-major, time-major like speech, or time-flattened like
  seq2seq), so it can split a model batch into single-example request
  feeds, assemble up to ``batch_size`` requests back into a padded
  full-batch feed, and slice the per-request reply out of the batched
  output.
* :class:`DynamicBatcher` — a bounded FIFO of pending requests with
  admission control: a request is *shed* at submit time when the queue
  is full or when, given the current latency estimate and the queue
  ahead of it, its deadline is already unmeetable. Queued requests
  whose deadline passes before dispatch are expired without wasting
  replica time on them.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Mapping

import numpy as np

from repro.framework.errors import FeedError

from .events import PendingRequest


class FeedCodec:
    """Splits, pads, and reassembles feeds for one model's inference plan.

    Batch-axis resolution per tensor, in order:

    1. axis 0 when its extent equals the model's batch size (the common
       batch-major layout);
    2. otherwise the first inner axis whose extent equals the batch
       size (speech's time-major ``(time, batch, classes)`` output);
    3. otherwise, when axis 0 is a multiple of the batch size, the
       tensor is *time-flattened*: ``(T*B, ...)`` reshapes to
       ``(T, B, ...)`` and requests index the inner axis (seq2seq's
       concatenated per-step softmaxes);
    4. otherwise the tensor is *broadcast* — identical for every
       request in a batch (scalar knobs), never split.
    """

    def __init__(self, model):
        self.model = model
        self.batch_size = model.batch_size
        plan = model.session.compile([model.inference_output])
        self.placeholders = [op.output for op in plan.placeholders]
        self._feed_axes = {tensor: self._batch_axis(tensor.shape)
                           for tensor in self.placeholders}
        self._out_axis = self._batch_axis(model.inference_output.shape)
        if self._out_axis is None:
            raise FeedError(
                f"{model.name}: inference output shape "
                f"{model.inference_output.shape} has no axis matching "
                f"batch size {self.batch_size}; cannot serve per-request "
                f"replies")

    def _batch_axis(self, shape: tuple[int, ...]) -> "int | str | None":
        """The batch axis, the string ``"folded"``, or None (broadcast)."""
        batch = self.batch_size
        if shape and shape[0] == batch:
            return 0
        for axis, extent in enumerate(shape):
            if extent == batch:
                return axis
        if shape and shape[0] % batch == 0:
            return "folded"
        return None

    # -- splitting ---------------------------------------------------------

    def _take(self, value: np.ndarray, axis, index: int) -> np.ndarray:
        if axis == "folded":
            folded = value.reshape((-1, self.batch_size) + value.shape[1:])
            return folded[:, index]
        return np.take(value, index, axis=axis)

    def split_feed(self, feed: Mapping[Any, np.ndarray]) \
            -> list[dict[Any, np.ndarray]]:
        """One full-batch feed dict -> ``batch_size`` request feeds."""
        singles: list[dict[Any, np.ndarray]] = []
        for index in range(self.batch_size):
            single = {}
            for tensor, value in feed.items():
                axis = self._feed_axes.get(tensor, 0)
                value = np.asarray(value)
                single[tensor] = (value if axis is None
                                  else self._take(value, axis, index))
            singles.append(single)
        return singles

    # -- assembly ----------------------------------------------------------

    def _put(self, values: list[np.ndarray], axis) -> np.ndarray:
        if axis == "folded":
            # values are (T, ...) per request; interleave back to (T*B, ...)
            stacked = np.stack(values, axis=1)
            return stacked.reshape((-1,) + stacked.shape[2:])
        return np.stack(values, axis=axis)

    def assemble(self, feeds: list[Mapping[Any, np.ndarray]]) \
            -> tuple[dict[Any, np.ndarray], int]:
        """Stack request feeds into one padded full-batch feed.

        Returns ``(batch_feed, live)`` where ``live`` is the number of
        real requests; rows ``live..batch_size-1`` are padding (the last
        request repeated, so padded rows are always well-formed inputs).
        """
        if not feeds:
            raise FeedError("cannot assemble an empty batch")
        if len(feeds) > self.batch_size:
            raise FeedError(
                f"{len(feeds)} requests exceed the plan batch size "
                f"{self.batch_size}; split before assembling")
        live = len(feeds)
        padded = list(feeds) + [feeds[-1]] * (self.batch_size - live)
        batch_feed = {}
        for tensor in self.placeholders:
            axis = self._feed_axes[tensor]
            if axis is None:
                batch_feed[tensor] = np.asarray(padded[0][tensor])
                continue
            values = [np.asarray(feed[tensor]) for feed in padded]
            batch_feed[tensor] = np.ascontiguousarray(
                self._put(values, axis)).astype(tensor.dtype, copy=False)
        return batch_feed, live

    def extract(self, output: np.ndarray, index: int) -> np.ndarray:
        """The per-request slice of a batched inference output."""
        return np.asarray(self._take(np.asarray(output), self._out_axis,
                                     index))


class DynamicBatcher:
    """A bounded request queue that coalesces dispatch-ready batches.

    A batch is *ready* when ``max_batch`` requests are queued or the
    oldest request has waited ``max_wait`` seconds — the classic
    dynamic-batching latency/throughput trade. Admission control sheds
    requests the server could only disappoint: see :meth:`admit`.
    """

    def __init__(self, codec: FeedCodec, max_batch: int | None = None,
                 max_wait: float = 0.002, queue_limit: int = 64,
                 admission_safety: float = 1.0):
        self.codec = codec
        self.max_batch = min(max_batch or codec.batch_size,
                             codec.batch_size)
        self.max_wait = max_wait
        self.queue_limit = queue_limit
        self.admission_safety = admission_safety
        self._queue: deque[PendingRequest] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    # -- admission control -------------------------------------------------

    def admit(self, pending: PendingRequest, now: float,
              est_batch_seconds: float) -> str | None:
        """Admit ``pending`` or return a shed reason.

        Sheds when the queue is at its bound (``"queue_full"``) or when
        the deadline is provably unmeetable (``"deadline_unmeetable"``):
        even if dispatch started immediately after the batches already
        ahead of it, the estimated service time (scaled by
        ``admission_safety``) would land past the deadline. Load
        shedding at admission is what keeps queued work young — a
        saturated server answers *some* requests on time instead of all
        requests late.
        """
        if len(self._queue) >= self.queue_limit:
            return "queue_full"
        if pending.deadline_ms > 0 and est_batch_seconds > 0:
            batches_ahead = len(self._queue) // self.max_batch
            estimate = (batches_ahead + 1) * est_batch_seconds \
                * self.admission_safety
            if now + estimate > pending.deadline_at():
                return "deadline_unmeetable"
        self._queue.append(pending)
        return None

    # -- dispatch ----------------------------------------------------------

    def ready(self, now: float) -> bool:
        """True when a batch should be dispatched right now."""
        if not self._queue:
            return False
        if len(self._queue) >= self.max_batch:
            return True
        return now - self._queue[0].arrival >= self.max_wait

    def next_deadline(self) -> float | None:
        """Earliest absolute deadline among queued requests, if any."""
        deadlines = [p.deadline_at() for p in self._queue
                     if p.deadline_ms > 0]
        return min(deadlines) if deadlines else None

    def expire(self, now: float) -> list[PendingRequest]:
        """Remove and return queued requests already past their deadline."""
        expired = [p for p in self._queue
                   if p.deadline_ms > 0 and now >= p.deadline_at()]
        if expired:
            dead = set(id(p) for p in expired)
            self._queue = deque(p for p in self._queue
                                if id(p) not in dead)
        return expired

    def pop_batch(self) -> list[PendingRequest]:
        """Dequeue up to ``max_batch`` requests, FIFO order."""
        group = []
        while self._queue and len(group) < self.max_batch:
            group.append(self._queue.popleft())
        return group

    def requeue(self, pending: PendingRequest) -> None:
        """Put a hedged request back at the *front* of the queue.

        Hedged requests have already waited one full service attempt,
        so they jump the line — the alternative (tail requeue) makes a
        single slow replica double every victim's latency.
        """
        self._queue.appendleft(pending)
