"""Serving request/reply records and SLO observability events.

Every request accepted by the server terminates in exactly one
:class:`Reply` whose ``outcome`` is one of :data:`OUTCOMES`; every
terminal outcome (and every breaker transition, hedge, and replica
restart along the way) is also emitted as a :class:`ServingEvent`
through the same tracer hook that carries
:class:`~repro.framework.resilience.FailureEvent` and
:class:`~repro.framework.session.DegradationEvent` records — so a
serialized trace of a serving run interleaves the SLO story with the
self-healing story in emit order (see
:mod:`repro.profiling.serialize`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

#: terminal request outcomes:
#: ``ok`` — answered within its deadline;
#: ``shed`` — rejected at admission (queue full / deadline hopeless);
#: ``deadline`` — accepted but its reply came (or could only come) late;
#: ``error`` — accepted but every (hedged) execution attempt failed.
OUTCOMES = ("ok", "shed", "deadline", "error")

#: ServingEvent kinds beyond the per-request ``reply``/``shed`` pair
EVENT_KINDS = ("reply", "shed", "hedge", "probe", "replica_restart",
               "breaker_open", "breaker_half_open", "breaker_close")

#: fleet-scoped ServingEvent kinds (see :mod:`repro.serving.fleet`):
#: zone/server lifecycle, load-balancer re-routes, health ejections,
#: autoscaling, and rollout/canary decisions. Fleet events carry the
#: ``zone``/``server`` fields; per-server events leave them ``None``.
FLEET_EVENT_KINDS = (
    "zone_down", "zone_up", "server_down", "server_up", "server_crash",
    "reroute", "blackhole", "blackhole_heal",
    "probe_fail", "eject", "reinstate",
    "drain_start", "drain_done", "scale_up", "scale_down",
    "rollout_start", "rollout_stage", "canary_pass", "canary_fail",
    "rollback", "rollout_done")


@dataclass(frozen=True)
class ServingEvent:
    """One structured serving-layer action, for SLO observability.

    Kinds:

    * ``reply`` — a request reached a terminal outcome (``outcome`` is
      ``ok``/``deadline``/``error``; latency and deadline recorded);
    * ``shed`` — a request was rejected at admission (``outcome`` is
      always ``shed``; ``detail`` carries the reason);
    * ``hedge`` — a request from a failed or straggling batch was
      re-enqueued for retry on a healthy replica;
    * ``probe`` — a half-open replica received a trial batch;
    * ``replica_restart`` — a crashed replica's session was rebuilt;
    * ``breaker_open`` / ``breaker_half_open`` / ``breaker_close`` —
      circuit-breaker transitions for ``replica``;
    * the :data:`FLEET_EVENT_KINDS` — fleet-scoped actions (outages,
      re-routes, ejections, scaling, rollouts), identified by the
      ``zone``/``server`` fields.

    ``step`` is the request id for per-request events and the server's
    dispatch (batch) index for replica/breaker events; fleet events use
    the fleet request id (per-request kinds) or the fleet's pump round.
    """

    step: int
    kind: str
    outcome: str | None = None
    replica: int | None = None
    latency_ms: float = 0.0
    deadline_ms: float = 0.0
    seconds_lost: float = 0.0
    detail: str = ""
    #: fleet scoping: which fault domain / fleet server the event is
    #: about (None for single-server events, PR-4 compatible)
    zone: str | None = None
    server: int | None = None

    def signature(self) -> tuple:
        """Timing-free identity, for determinism comparisons."""
        return (self.step, self.kind, self.outcome, self.replica,
                self.zone, self.server)


@dataclass
class Reply:
    """The terminal result of one serving request.

    ``value`` is the per-request slice of the model's inference output
    for ``ok`` (and late-but-computed ``deadline``) outcomes, ``None``
    for shed/errored requests. ``raise_for_outcome`` converts non-``ok``
    outcomes into the matching :mod:`repro.framework.errors` exception.
    """

    request_id: int
    outcome: str
    value: np.ndarray | None = None
    replica: int | None = None
    latency_ms: float = 0.0
    deadline_ms: float = 0.0
    hedges: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def raise_for_outcome(self) -> np.ndarray:
        from repro.framework.errors import (DeadlineExceededError,
                                            RequestRejected, ServingError)
        if self.outcome == "ok":
            return self.value
        if self.outcome == "shed":
            raise RequestRejected(
                f"request {self.request_id} shed: {self.error}",
                reason=self.error or "queue_full")
        if self.outcome == "deadline":
            raise DeadlineExceededError(
                f"request {self.request_id} missed its "
                f"{self.deadline_ms:.1f} ms deadline "
                f"(latency {self.latency_ms:.1f} ms)")
        raise ServingError(
            f"request {self.request_id} failed: {self.error}")


@dataclass
class PendingRequest:
    """A queued request awaiting dispatch (internal to the server)."""

    request_id: int
    feed: dict[Any, np.ndarray]
    deadline_ms: float
    arrival: float          #: clock seconds at admission
    attempts: int = 0       #: completed execution attempts (hedges)

    def deadline_at(self) -> float:
        """Absolute clock time the reply is due."""
        return self.arrival + self.deadline_ms / 1000.0
