"""Per-replica circuit breakers with seeded deterministic backoff.

A replica that keeps failing (crashes, poisoned outputs, straggling
batches) must be taken out of rotation *before* it burns every queued
request's deadline — but it must also get a cheap path back in, because
serving capacity is precious. The classic answer is the three-state
circuit breaker:

* **closed** — healthy; failures are counted, successes reset the count;
* **open** — tripped after ``failure_threshold`` consecutive failures;
  the replica receives no traffic until its backoff expires. Open
  durations grow exponentially per consecutive trip, with the same
  seeded jitter the resilient runner uses
  (:class:`~repro.framework.resilience.BackoffPolicy`), so breaker
  traces are deterministic given the config seed;
* **half-open** — the backoff expired; the replica gets exactly one
  *probe* batch. Success closes the breaker (and resets the trip
  streak), failure re-opens it with a longer backoff.

Transitions are reported through an optional callback so the server can
emit :class:`~repro.serving.events.ServingEvent` records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.resilience import BackoffPolicy

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs for :class:`CircuitBreaker`.

    Args:
        failure_threshold: consecutive failures (while closed) before
            the breaker trips open.
        recovery_time: base open duration in seconds; doubles (by
            ``backoff_factor``) per consecutive trip.
        backoff_factor: open-duration growth per consecutive trip.
        jitter: +/- fraction of seeded jitter on each open duration.
        max_open_time: ceiling on any single open duration.
        seed: jitter stream seed (deterministic given the config).
    """

    failure_threshold: int = 2
    recovery_time: float = 0.02
    backoff_factor: float = 2.0
    jitter: float = 0.1
    max_open_time: float = 2.0
    seed: int = 0


class CircuitBreaker:
    """One replica's health gate. Single-threaded; time is an argument.

    Every method takes ``now`` (clock seconds) instead of reading a
    clock, so the server can drive breakers from a virtual clock in
    chaos tests and everything stays deterministic.
    """

    def __init__(self, config: BreakerConfig | None = None,
                 on_transition=None):
        self.config = config or BreakerConfig()
        self.state = CLOSED
        self.consecutive_failures = 0
        self.consecutive_trips = 0
        self.open_until = 0.0
        #: lifetime transition counters, for the ServingReport
        self.opens = 0
        self.closes = 0
        self._on_transition = on_transition
        self._backoff = BackoffPolicy(
            base=self.config.recovery_time,
            factor=self.config.backoff_factor,
            jitter=self.config.jitter, seed=self.config.seed,
            max_delay=self.config.max_open_time, spawn_key=0xB4EA)

    def _transition(self, state: str, now: float, detail: str = "") -> None:
        self.state = state
        if self._on_transition is not None:
            self._on_transition(state, now, detail)

    # -- queries -----------------------------------------------------------

    def available(self, now: float) -> bool:
        """May this replica receive a batch right now?

        An open breaker whose backoff has expired moves to half-open as
        a side effect — the caller should treat the next batch as a
        probe (see :meth:`is_probe`).
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN and now >= self.open_until:
            self._transition(HALF_OPEN, now,
                             "backoff expired; next batch is a probe")
            return True
        return self.state == HALF_OPEN

    def is_probe(self) -> bool:
        """True when the next batch is a half-open trial."""
        return self.state == HALF_OPEN

    def reopen_at(self) -> float | None:
        """When an open breaker becomes probeable (None unless open)."""
        return self.open_until if self.state == OPEN else None

    # -- outcomes ----------------------------------------------------------

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.consecutive_trips = 0
            self.closes += 1
            self._transition(CLOSED, now, "probe succeeded")

    def record_failure(self, now: float) -> bool:
        """Count a failure; returns True when this one tripped the breaker."""
        if self.state == HALF_OPEN:
            # A failed probe re-opens immediately with a longer backoff.
            self._trip(now, "probe failed")
            return True
        self.consecutive_failures += 1
        if self.state == CLOSED and \
                self.consecutive_failures >= self.config.failure_threshold:
            self._trip(now, f"{self.consecutive_failures} consecutive "
                            f"failures")
            return True
        return False

    def trip(self, now: float, detail: str = "hard trip") -> None:
        """Force the breaker open (e.g. on a replica crash)."""
        if self.state != OPEN:
            self._trip(now, detail)

    def _trip(self, now: float, detail: str) -> None:
        delay = self._backoff.delay(self.consecutive_trips)
        self.consecutive_trips += 1
        self.consecutive_failures = 0
        self.open_until = now + delay
        self.opens += 1
        self._transition(OPEN, now,
                         f"{detail}; open for {delay * 1e3:.1f} ms")
