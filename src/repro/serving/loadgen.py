"""Load generation and the SLO summary report.

:class:`LoadGenerator` drives an
:class:`~repro.serving.server.InferenceServer` with synthetic request
traffic drawn from the workload's own ``sample_feed``:

* **open loop** (``qps > 0``) — requests arrive on a seeded-jitter
  Poisson-ish schedule regardless of how the server is coping. This is
  the honest way to measure a saturated server: a closed loop slows its
  own arrival rate when the server struggles and hides the overload
  (the classic coordinated-omission trap).
* **closed loop** (``qps == 0``) — each request is submitted only after
  the previous one's reply, measuring unloaded service latency.

:class:`ServingReport` condenses a run into SLO numbers: p50/p95/p99
latency over serviced requests, outcome counts, shed/hedge/probe/
restart/breaker counters, and final per-replica tiers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class LoadConfig:
    """Knobs for :class:`LoadGenerator`.

    Args:
        requests: total requests to submit.
        qps: open-loop arrival rate; ``0`` switches to closed loop.
        deadline_ms: per-request deadline (``None`` = server default).
        jitter: +/- fraction of seeded jitter on open-loop inter-arrival
            gaps.
        seed: jitter stream seed.
    """

    requests: int = 64
    qps: float = 0.0
    deadline_ms: float | None = None
    jitter: float = 0.25
    seed: int = 0


class LoadGenerator:
    """Synthetic request traffic for one workload's server."""

    def __init__(self, server, config: LoadConfig | None = None):
        self.server = server
        self.config = config or LoadConfig()
        self._rng = np.random.default_rng(
            np.random.SeedSequence(self.config.seed,
                                   spawn_key=(0x10AD,)))
        self._pool = server.codec.split_feed(
            server.model.sample_feed(training=False))

    def _feed(self, index: int):
        return self._pool[index % len(self._pool)]

    def _gap(self) -> float:
        """One open-loop inter-arrival gap, seeded-jittered."""
        base = 1.0 / self.config.qps
        spread = self.config.jitter * base
        return max(0.0, base + self._rng.uniform(-spread, spread))

    def run(self) -> "ServingReport":
        """Submit every request, drive the server to completion."""
        server, config = self.server, self.config
        if config.qps > 0:
            # True open loop: arrivals follow a precomputed absolute
            # schedule. A slow batch does NOT push later arrivals out
            # (the coordinated-omission trap) — requests whose arrival
            # time already passed while the server was busy are
            # submitted immediately as a backlog burst.
            due = 0.0
            for index in range(config.requests):
                now = server.clock.now()
                if now < due:
                    server.clock.sleep(due - now)
                server.submit(self._feed(index),
                              deadline_ms=config.deadline_ms)
                due += self._gap()
                if server.clock.now() < due:
                    # Caught up with the schedule: let the server work
                    # until the next arrival. While behind schedule,
                    # overdue arrivals burst in back-to-back instead —
                    # the backlog lands on the queue, not on the clock.
                    server.pump()
            server.drain()
        else:
            for index in range(config.requests):
                server.submit(self._feed(index),
                              deadline_ms=config.deadline_ms)
                server.drain()
        # Duck-typed: an InferenceServer returns a ServingReport, a
        # ServingFleet a FleetReport — same generator drives both.
        return server.report()


def _percentile(latencies: list[float], q: float) -> float:
    if not latencies:
        return 0.0
    return float(np.percentile(np.asarray(latencies), q))


@dataclass
class ServingReport:
    """SLO summary of one serving run (JSON-serializable)."""

    workload: str
    requests: int = 0
    accepted: int = 0
    ok: int = 0
    shed: int = 0
    deadline: int = 0
    error: int = 0
    hedges: int = 0
    probes: int = 0
    restarts: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    batches: int = 0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    mean_ms: float = 0.0
    replica_tiers: list[str] = field(default_factory=list)

    @classmethod
    def from_server(cls, server) -> "ServingReport":
        counters = server.counters
        latencies = server.latencies_ms
        return cls(
            workload=server.model.name,
            requests=len(server.replies),
            accepted=counters["accepted"],
            ok=counters["ok"],
            shed=counters["shed"],
            deadline=counters["deadline"],
            error=counters["error"],
            hedges=counters["hedges"],
            probes=counters["probes"],
            restarts=sum(r.restarts for r in server.replicas),
            breaker_opens=sum(r.breaker.opens for r in server.replicas),
            breaker_closes=sum(r.breaker.closes
                               for r in server.replicas),
            batches=server.batches_dispatched,
            p50_ms=_percentile(latencies, 50),
            p95_ms=_percentile(latencies, 95),
            p99_ms=_percentile(latencies, 99),
            mean_ms=(float(np.mean(latencies)) if latencies else 0.0),
            replica_tiers=[r.tier for r in server.replicas])

    @property
    def attainment(self) -> float:
        """Fraction of *accepted* requests answered on time."""
        return self.ok / self.accepted if self.accepted else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of all requests shed at admission."""
        return self.shed / self.requests if self.requests else 0.0

    def to_json(self) -> dict:
        blob = dict(self.__dict__)
        blob["attainment"] = self.attainment
        blob["shed_rate"] = self.shed_rate
        return blob

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        """A terminal-friendly summary for ``repro serve``."""
        lines = [
            f"serving report: {self.workload}",
            f"  requests   {self.requests:>6}  "
            f"(accepted {self.accepted}, shed {self.shed})",
            f"  outcomes   ok {self.ok}  deadline {self.deadline}  "
            f"error {self.error}",
            f"  latency    p50 {self.p50_ms:.2f} ms  "
            f"p95 {self.p95_ms:.2f} ms  p99 {self.p99_ms:.2f} ms",
            f"  attainment {self.attainment * 100:.1f}%  "
            f"shed rate {self.shed_rate * 100:.1f}%",
            f"  resilience hedges {self.hedges}  probes {self.probes}  "
            f"restarts {self.restarts}  breaker "
            f"{self.breaker_opens}->{self.breaker_closes} open->close",
            f"  replicas   {self.batches} batches; final tiers: "
            + ", ".join(self.replica_tiers),
        ]
        return "\n".join(lines)
