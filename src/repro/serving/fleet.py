"""The serving fleet: fault-domain-aware, autoscaled, multi-tenant.

:class:`ServingFleet` composes multiple
:class:`~repro.serving.server.InferenceServer` replicas — each already
robust to replica crashes, stragglers, and poisoned batches — into a
fleet that survives the failures a *single* server cannot:

* **fault domains** — servers live in zones
  (:class:`FleetServer`), and a ``zone_outage`` takes out every server
  in one domain at once. Queued work on downed servers is salvaged and
  re-routed to surviving zones.
* **probe-driven health** — a :class:`~repro.serving.health.HealthProber`
  actively probes every server from the balancer's vantage point, so a
  *silent* link failure (``lb_blackhole``) is discovered and the server
  ejected even though no passive signal ever fires. Requests captured
  in the hole are freed and re-routed at ejection (or at link heal).
* **autoscaling** — an :class:`~repro.serving.autoscale.Autoscaler`
  grows the fleet into the emptiest zone under queue or tail-latency
  pressure and shrinks it by *draining* (never killing) the youngest
  server in the fullest zone.
* **rolling deploys** — a :class:`~repro.serving.rollout.RolloutManager`
  stages new versions zone by zone with canary analysis; a defective
  version (``bad_rollout``) is convicted on SLO evidence and every
  staged server reverts in one pump round.
* **tenant isolation** — the :class:`~repro.serving.balancer.LoadBalancer`
  caps each tenant's outstanding requests, so one flooding tenant is
  shed with ``tenant_quota`` while the others flow.

The fleet invariant extends the server's: **every request the fleet
accepts reaches exactly one terminal reply** — even when a zone
outage, an autoscale event, and a rolled-back deploy land in the same
run. Re-routes are bounded (``reroute_limit``) and deadline-checked,
so salvage can never loop; a request that outruns its salvage budget
terminates with an ``error`` or ``deadline`` reply, never silence.

Everything runs on one injectable clock shared by the balancer,
prober, autoscaler, rollout manager, fault injector, and every
server — a chaos storm on a :class:`VirtualClock` is deterministic
down to the event signatures.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.framework.clock import SystemClock
from repro.framework.errors import ServingError
from repro.framework.faults import ServingFaultPlan, ServingFaultSpec

from .autoscale import AutoscaleConfig, Autoscaler
from .balancer import LoadBalancer, TenantSpec
from .events import Reply, ServingEvent
from .health import HealthConfig, HealthProber
from .rollout import Deployment, RolloutConfig, RolloutManager
from .server import InferenceServer, ServingConfig

__all__ = ["FleetConfig", "FleetReport", "FleetServer", "ServingFleet"]

#: FleetServer lifecycle states
ACTIVE = "active"        #: in rotation, taking traffic
DRAINING = "draining"    #: finishing queued work, no new traffic
DOWN = "down"            #: zone outage — will return when it heals
EJECTED = "ejected"      #: pulled from rotation by health probes
RETIRED = "retired"      #: drained out by scale-down; gone for good

#: how long a "slow" defective deployment stalls each batch
_DEFECT_STALL_SECONDS = 0.03


@dataclass
class FleetConfig:
    """Knobs for :class:`ServingFleet`.

    Args:
        zones: the fault domains, in rollout order.
        servers_per_zone: initial servers in each zone.
        server: the :class:`ServingConfig` template every fleet server
            is built from (each derives a distinct seed).
        tenants: the admission contracts (at least one).
        autoscale / health / rollout: subsystem configs.
        reroute_limit: how many times one request may be salvaged and
            re-routed before it terminates with an ``error`` reply.
        rollout_at_seconds: when set, the fleet starts a rollout of
            ``rollout_version`` at this fleet-clock time (the CLI's
            way of scripting a deploy mid-storm).
        rollout_version: the version that scripted rollout deploys.
        seed: base seed for derived per-server fault-plan seeds.
    """

    zones: tuple[str, ...] = ("z0", "z1", "z2")
    servers_per_zone: int = 1
    server: ServingConfig = field(
        default_factory=lambda: ServingConfig(replicas=1))
    tenants: tuple[TenantSpec, ...] = (TenantSpec("default"),)
    autoscale: AutoscaleConfig = field(default_factory=AutoscaleConfig)
    health: HealthConfig = field(default_factory=HealthConfig)
    rollout: RolloutConfig = field(default_factory=RolloutConfig)
    reroute_limit: int = 3
    rollout_at_seconds: float | None = None
    rollout_version: str = "v2"
    seed: int = 0

    def __post_init__(self):
        if not self.zones:
            raise ValueError("a fleet needs at least one zone")
        if len(set(self.zones)) != len(self.zones):
            raise ValueError(f"duplicate zones: {self.zones}")
        if self.servers_per_zone < 1:
            raise ValueError("servers_per_zone must be >= 1")
        if self.reroute_limit < 1:
            raise ValueError("reroute_limit must be >= 1")


class FleetServer:
    """One server's place in the fleet: identity, zone, lifecycle."""

    def __init__(self, server_id: int, zone: str,
                 server: InferenceServer, deployment: str):
        self.server_id = server_id
        self.zone = zone
        self.server = server
        self.deployment = deployment
        self.state = ACTIVE

    @property
    def routable(self) -> bool:
        """May the balancer send new traffic here?"""
        return self.state == ACTIVE

    @property
    def ejected(self) -> bool:
        return self.state == EJECTED

    @property
    def replicas(self):
        return self.server.replicas

    @property
    def queue_depth(self) -> int:
        return self.server.queue_depth

    def __repr__(self):
        return (f"FleetServer(id={self.server_id}, zone={self.zone!r}, "
                f"state={self.state!r}, v={self.deployment!r})")


@dataclass
class _FleetPending:
    """Fleet-side bookkeeping for one accepted request."""

    fleet_id: int
    tenant: str
    feed: dict[Any, np.ndarray]
    deadline_ms: float
    arrival: float                 #: fleet-clock seconds at admission
    admitted: bool = False         #: counted against the tenant quota
    server_id: int | None = None   #: where it is queued right now
    server_rid: int | None = None  #: its request id on that server
    hole: int | None = None        #: blackholed link it vanished into
    handoff_ms: float = 0.0        #: fleet-arrival -> server-arrival gap
    reroutes: int = 0

    def deadline_at(self) -> float:
        return self.arrival + self.deadline_ms / 1000.0


class ServingFleet:
    """A zone-aware fleet of inference servers behind one balancer.

    Duck-type compatible with :class:`InferenceServer` for the pieces
    :class:`~repro.serving.loadgen.LoadGenerator` uses — ``clock``,
    ``codec``, ``model``, ``submit``, ``pump``, ``drain``,
    ``report`` — so the same load generator drives either.
    """

    #: the fault family this harness accepts via :meth:`install_faults`
    #: (the campaign engine's uniform adapter surface; see repro.chaos)
    FAULT_FAMILY = "fleet"

    def __init__(self, model, config: FleetConfig | None = None,
                 tracer=None, clock=None):
        self.model = model
        self.config = config or FleetConfig()
        self.tracer = tracer
        self.clock = clock or SystemClock()
        template = self.config.server
        self.balancer = LoadBalancer(
            self.config.tenants,
            prior_seconds=template.est_batch_ms / 1000.0)
        self.prober = HealthProber(self.config.health)
        self.autoscaler = Autoscaler(self.config.autoscale)
        self.rollout = RolloutManager(self.config.rollout)
        self._tenant_order = tuple(t.name for t in self.config.tenants)
        self._servers: dict[int, FleetServer] = {}
        self._next_server_id = 0
        self._current_version = "v1"
        self._staging: Deployment | None = None
        self._version_defects: dict[str, str | None] = {"v1": None}
        for zone in self.config.zones:
            for _ in range(self.config.servers_per_zone):
                self._add_server(zone)
        self.codec = next(iter(self._servers.values())).server.codec
        self.replies: dict[int, Reply] = {}
        self.events: list[ServingEvent] = []
        self.latencies_ms: list[float] = []
        self.counters = {"accepted": 0, "shed": 0, "ok": 0,
                         "deadline": 0, "error": 0, "reroutes": 0,
                         "blackholed": 0, "ejections": 0,
                         "reinstatements": 0, "hedges": 0,
                         "rollouts": 0, "zone_outages": 0,
                         "server_crashes": 0}
        self.tenant_counters = {
            name: {"accepted": 0, "shed": 0, "ok": 0, "deadline": 0,
                   "error": 0}
            for name in self._tenant_order}
        #: fleet_id -> live bookkeeping; every entry is reachable via
        #: _routes or _holes (the no-silent-loss invariant)
        self._pending: dict[int, _FleetPending] = {}
        #: (server_id, server request id) -> fleet_id
        self._routes: dict[tuple[int, int], int] = {}
        #: blackholed link -> fleet ids swallowed by it
        self._holes: dict[int, list[int]] = {}
        self._injector = None
        self._next_id = 0
        self._round = 0
        self._rollout_autostarted = False
        self._lost_batches = 0
        self.servers_peak = len(self._servers)

    # -- topology ------------------------------------------------------------

    def _make_server(self, server_id: int) -> InferenceServer:
        template = self.config.server
        config = dataclasses.replace(
            template, seed=template.seed + 101 * (server_id + 1))
        # Servers emit into their own event logs; the fleet owns the
        # tracer stream and emits the fleet-scoped story itself.
        return InferenceServer(self.model, config, tracer=None,
                               clock=self.clock)

    def _add_server(self, zone: str) -> FleetServer:
        server_id = self._next_server_id
        self._next_server_id += 1
        fleet_server = FleetServer(server_id, zone,
                                   self._make_server(server_id),
                                   self._current_version)
        defect = self._version_defects.get(self._current_version)
        if defect is not None:
            fleet_server.server.install_faults(
                self._defect_plan(defect, server_id))
        self._servers[server_id] = fleet_server
        return fleet_server

    def _ordered(self) -> list[FleetServer]:
        return [self._servers[sid] for sid in sorted(self._servers)]

    def _routable(self) -> list[FleetServer]:
        return [fs for fs in self._ordered() if fs.routable]

    def _in_zone(self, zone: str) -> list[FleetServer]:
        return [fs for fs in self._ordered() if fs.zone == zone]

    def servers_in(self, *states: str) -> list[FleetServer]:
        """The fleet's servers currently in any of ``states``."""
        return [fs for fs in self._ordered() if fs.state in states]

    # -- events --------------------------------------------------------------

    def _emit(self, event: ServingEvent) -> None:
        self.events.append(event)
        if self.tracer is not None:
            self.tracer.record_event(event)

    def _fleet_event(self, kind: str, *, step: int | None = None,
                     zone: str | None = None, server: int | None = None,
                     detail: str = "") -> None:
        self._emit(ServingEvent(
            step=self._round if step is None else step, kind=kind,
            zone=zone, server=server, detail=detail))

    # -- faults --------------------------------------------------------------

    def install_faults(self, plan):
        """Arm a :class:`~repro.framework.faults.FleetFaultPlan`."""
        self._injector = plan.injector()
        return self._injector

    def _defect_plan(self, defect: str, server_id: int) -> ServingFaultPlan:
        if defect == "poison":
            spec = ServingFaultSpec(kind="poisoned_batch",
                                    probability=1.0, max_triggers=None)
        else:
            spec = ServingFaultSpec(
                kind="slow_replica", probability=1.0, max_triggers=None,
                latency_seconds=_DEFECT_STALL_SECONDS)
        return ServingFaultPlan([spec],
                                seed=self.config.seed + server_id)

    # -- admission + placement -----------------------------------------------

    def submit(self, feed: Mapping[Any, np.ndarray],
               deadline_ms: float | None = None,
               tenant: str | None = None) -> int:
        """Admit one request into the fleet; returns its fleet id.

        ``tenant=None`` rotates requests across the configured tenants
        (deterministically, by fleet id). The effective deadline is the
        caller's, else the tenant's SLO class, else the server
        template's default.
        """
        now = self.clock.now()
        fleet_id = self._next_id
        self._next_id += 1
        if tenant is None:
            tenant = self._tenant_order[fleet_id
                                        % len(self._tenant_order)]
        elif tenant not in self.balancer.tenants:
            raise ValueError(f"unknown tenant {tenant!r}; configured: "
                             f"{self._tenant_order}")
        if deadline_ms is None:
            deadline_ms = self.balancer.deadline_for(
                tenant, self.config.server.default_deadline_ms)
        record = _FleetPending(fleet_id=fleet_id, tenant=tenant,
                               feed=dict(feed),
                               deadline_ms=float(deadline_ms),
                               arrival=now)
        self._pending[fleet_id] = record
        reason = self.balancer.admit_tenant(tenant)
        if reason is not None:
            self._finish(record, "shed", error=reason)
            return fleet_id
        record.admitted = True
        placed = self._place(record, now, set())
        if placed is True:
            self.counters["accepted"] += 1
            self.tenant_counters[tenant]["accepted"] += 1
        else:
            self._finish(record, "shed", error=placed)
        return fleet_id

    def submit_batch(self, batch_feed: Mapping[Any, np.ndarray],
                     deadline_ms: float | None = None,
                     tenant: str | None = None) -> list[int]:
        """Split a full-batch feed into per-example fleet requests."""
        return [self.submit(single, deadline_ms=deadline_ms,
                            tenant=tenant)
                for single in self.codec.split_feed(batch_feed)]

    def _place(self, record: _FleetPending, now: float,
               exclude: set[int]):
        """Queue ``record`` on the best server; spill over on shed.

        Returns ``True`` on success (including capture by a blackholed
        link — the fleet does not know the link is dead) or the final
        shed reason when every routable server refused it.
        """
        shed_reason = "no_capacity"
        tried = set(exclude)
        for candidate in self.balancer.ranked(self._routable(), tried):
            sid = candidate.server_id
            if self._injector is not None \
                    and self._injector.blackholed(sid, now):
                # The link silently swallows the request: no server-side
                # queueing, no reply, no event — discovery is the health
                # prober's job.
                record.hole = sid
                record.server_id = record.server_rid = None
                self._holes.setdefault(sid, []).append(record.fleet_id)
                self.counters["blackholed"] += 1
                return True
            remaining_ms = record.deadline_ms
            if record.deadline_ms > 0:
                remaining_ms = max(
                    (record.deadline_at() - now) * 1000.0, 0.001)
            rid = candidate.server.submit(record.feed,
                                          deadline_ms=remaining_ms)
            reply = candidate.server.result(rid)
            if reply is not None and reply.outcome == "shed":
                shed_reason = reply.error or "queue_full"
                tried.add(sid)
                continue
            record.server_id, record.server_rid = sid, rid
            record.hole = None
            record.handoff_ms = (now - record.arrival) * 1000.0
            self._routes[(sid, rid)] = record.fleet_id
            return True
        return shed_reason

    # -- terminal outcomes ---------------------------------------------------

    def _finish(self, record: _FleetPending, outcome: str,
                value: np.ndarray | None = None,
                replica: int | None = None, latency_ms: float = 0.0,
                hedges: int = 0, error: str = "",
                server: int | None = None,
                zone: str | None = None) -> None:
        if record.fleet_id in self.replies:
            raise ServingError(
                f"fleet request {record.fleet_id} finished twice "
                f"({self.replies[record.fleet_id].outcome!r} then "
                f"{outcome!r})")
        reply = Reply(request_id=record.fleet_id, outcome=outcome,
                      value=value, replica=replica,
                      latency_ms=latency_ms,
                      deadline_ms=record.deadline_ms, hedges=hedges,
                      error=error)
        self.replies[record.fleet_id] = reply
        self.counters[outcome] += 1
        self.counters["hedges"] += hedges
        self.tenant_counters[record.tenant][outcome] += 1
        if record.admitted:
            self.balancer.release_tenant(record.tenant)
        if outcome in ("ok", "deadline") and value is not None:
            self.latencies_ms.append(latency_ms)
        self._pending.pop(record.fleet_id, None)
        self._emit(ServingEvent(
            step=record.fleet_id,
            kind="shed" if outcome == "shed" else "reply",
            outcome=outcome, replica=replica, latency_ms=latency_ms,
            deadline_ms=record.deadline_ms, detail=error, zone=zone,
            server=server))

    def result(self, fleet_id: int) -> Reply | None:
        """The terminal reply for a fleet request, or None while live."""
        return self.replies.get(fleet_id)

    # -- salvage + re-route --------------------------------------------------

    def _evict_routes(self, fleet_server: FleetServer) -> list[int]:
        """Pull every queued request off a server; returns fleet ids.

        Requests swallowed by a blackholed link *to* this server are
        freed too — eviction is the moment the fleet takes back
        responsibility for everything aimed at the server.
        """
        fleet_ids: list[int] = []
        for pending in fleet_server.server.evict_pending():
            fid = self._routes.pop(
                (fleet_server.server_id, pending.request_id), None)
            if fid is not None:
                fleet_ids.append(fid)
        fleet_ids.extend(self._holes.pop(fleet_server.server_id, []))
        return fleet_ids

    def _reroute(self, fleet_ids: list[int], now: float,
                 exclude: set[int], why: str) -> None:
        """Salvage displaced requests onto surviving servers.

        Bounded: a request re-routes at most ``reroute_limit`` times
        and never past its deadline — so even a cascade of failures
        converges on terminal replies, not a routing loop.
        """
        for fid in fleet_ids:
            record = self._pending.get(fid)
            if record is None:
                continue
            record.server_id = record.server_rid = record.hole = None
            elapsed_ms = (now - record.arrival) * 1000.0
            if record.deadline_ms > 0 and now >= record.deadline_at():
                self._finish(record, "deadline", latency_ms=elapsed_ms,
                             error=f"expired during re-route: {why}")
                continue
            if record.reroutes >= self.config.reroute_limit:
                self._finish(
                    record, "error", latency_ms=elapsed_ms,
                    error=f"re-route limit "
                          f"({self.config.reroute_limit}) exhausted: "
                          f"{why}")
                continue
            record.reroutes += 1
            self.counters["reroutes"] += 1
            placed = self._place(record, now, set(exclude))
            if placed is True:
                target = record.server_id if record.server_id \
                    is not None else record.hole
                zone = self._servers[target].zone \
                    if target in self._servers else None
                self._fleet_event("reroute", step=fid, zone=zone,
                                  server=target, detail=why)
            else:
                self._finish(
                    record, "error", latency_ms=elapsed_ms,
                    error=f"no capacity after re-route ({placed}): "
                          f"{why}")

    # -- fault application ---------------------------------------------------

    def _apply_faults(self, now: float) -> None:
        if self._injector is None:
            return
        for action in self._injector.tick(now):
            kind = action[0]
            if kind == "zone_heal":
                self._heal_zone(action[1])
            elif kind == "blackhole_heal":
                self._heal_blackhole(action[1], now)
            elif kind == "zone_outage":
                zone, heal_at = action[1], action[2]
                if zone is None:
                    zone = self.config.zones[0]
                    self._injector.note_zone_outage(zone, heal_at)
                self._take_down_zone(zone, now, heal_at)
            elif kind == "correlated_crash":
                explicit, count = action[1], action[2]
                ids = list(explicit) if explicit else \
                    [fs.server_id for fs in self._ordered()
                     if fs.state == ACTIVE][:count]
                self._crash_servers(ids, now)
            elif kind == "lb_blackhole":
                sid, heal_at = action[1], action[2]
                if sid is None:
                    favourite = self.balancer.pick(self._routable())
                    if favourite is None:
                        continue
                    sid = favourite.server_id
                    self._injector.note_blackhole(sid, heal_at)
                zone = self._servers[sid].zone \
                    if sid in self._servers else None
                self._fleet_event(
                    "blackhole", zone=zone, server=sid,
                    detail=f"link silent until {heal_at:.3f}s")
            # "bad_rollout" needs no fleet action now: the defect stays
            # armed in the injector until the next rollout starts.

    def _take_down_zone(self, zone: str, now: float,
                        heal_at: float) -> None:
        self._collect()
        self.counters["zone_outages"] += 1
        self._fleet_event("zone_down", zone=zone,
                          detail=f"outage until {heal_at:.3f}s")
        victims = [fs for fs in self._in_zone(zone)
                   if fs.state in (ACTIVE, DRAINING, EJECTED)]
        # Mark the whole zone down *before* salvaging, so re-routes
        # cannot land on a sibling that is about to vanish too.
        for fleet_server in victims:
            fleet_server.state = DOWN
            self.prober.forget(fleet_server.server_id)
            self._fleet_event("server_down", zone=zone,
                              server=fleet_server.server_id)
        down_ids = {fs.server_id for fs in victims}
        for fleet_server in victims:
            self._reroute(self._evict_routes(fleet_server), now,
                          down_ids, f"zone {zone} outage")

    def _heal_zone(self, zone: str) -> None:
        self._fleet_event("zone_up", zone=zone)
        for fleet_server in self._in_zone(zone):
            if fleet_server.state == DOWN:
                fleet_server.state = ACTIVE
                self._fleet_event("server_up", zone=zone,
                                  server=fleet_server.server_id)

    def _crash_servers(self, server_ids: list[int],
                       now: float) -> None:
        self._collect()
        crashed: list[FleetServer] = []
        for sid in server_ids:
            fleet_server = self._servers.get(sid)
            if fleet_server is None \
                    or fleet_server.state in (DOWN, RETIRED):
                continue
            crashed.append(fleet_server)
        salvage: list[int] = []
        crash_ids = {fs.server_id for fs in crashed}
        for fleet_server in crashed:
            self.counters["server_crashes"] += 1
            self._fleet_event(
                "server_crash", zone=fleet_server.zone,
                server=fleet_server.server_id,
                detail="correlated crash; session pool rebuilt")
            salvage.extend(self._evict_routes(fleet_server))
            self._lost_batches += \
                fleet_server.server.batches_dispatched
            fleet_server.server = self._make_server(
                fleet_server.server_id)
            defect = self._version_defects.get(fleet_server.deployment)
            if defect is not None:
                fleet_server.server.install_faults(self._defect_plan(
                    defect, fleet_server.server_id))
            self.prober.forget(fleet_server.server_id)
        self._reroute(salvage, now, crash_ids, "correlated crash")

    def _heal_blackhole(self, server_id: int, now: float) -> None:
        zone = self._servers[server_id].zone \
            if server_id in self._servers else None
        self._fleet_event("blackhole_heal", zone=zone,
                          server=server_id)
        # Requests the hole swallowed are re-routed now that the fleet
        # knows they never arrived; the healed server is a fair target.
        self._reroute(self._holes.pop(server_id, []), now, set(),
                      "blackhole healed")

    # -- probing, rollout, autoscale -----------------------------------------

    def _apply_probes(self, now: float) -> None:
        probeable = [fs for fs in self._ordered()
                     if fs.state in (ACTIVE, EJECTED)]

        def reachable(fleet_server):
            return self._injector is None or not self._injector \
                .blackholed(fleet_server.server_id, now)

        for action in self.prober.tick(now, probeable, reachable):
            fleet_server = action[1]
            if action[0] == "probe_fail":
                self._fleet_event("probe_fail", zone=fleet_server.zone,
                                  server=fleet_server.server_id,
                                  detail=action[2])
            elif action[0] == "eject":
                fleet_server.state = EJECTED
                self.counters["ejections"] += 1
                self._fleet_event("eject", zone=fleet_server.zone,
                                  server=fleet_server.server_id)
                self._collect()
                self._reroute(
                    self._evict_routes(fleet_server), now,
                    {fleet_server.server_id},
                    f"server {fleet_server.server_id} ejected")
            elif action[0] == "reinstate":
                fleet_server.state = ACTIVE
                self.counters["reinstatements"] += 1
                self._fleet_event("reinstate", zone=fleet_server.zone,
                                  server=fleet_server.server_id)

    def start_rollout(self, deployment: Deployment) -> None:
        """Begin a zone-by-zone rollout of ``deployment``.

        If a ``bad_rollout`` fault is armed, its defect infects this
        deployment — the canary comparator has to catch it.
        """
        if self.rollout.active:
            raise ServingError(
                "a rollout is already in progress")
        if deployment.defect is None and self._injector is not None:
            defect = self._injector.take_rollout_defect()
            if defect is not None:
                deployment = Deployment(
                    version=deployment.version, defect=defect,
                    detail="bad_rollout fault armed this deploy")
        self._staging = deployment
        self._version_defects[deployment.version] = deployment.defect
        self.rollout.start(deployment, self.config.zones,
                           self._current_version)
        self.counters["rollouts"] += 1
        self._fleet_event(
            "rollout_start", zone=self.config.zones[0],
            detail=f"{self._current_version} -> {deployment.version}")

    def _deploy_to(self, fleet_server: FleetServer,
                   version: str) -> None:
        fleet_server.deployment = version
        defect = self._version_defects.get(version)
        if defect is not None:
            fleet_server.server.install_faults(self._defect_plan(
                defect, fleet_server.server_id))
        else:
            fleet_server.server.uninstall_faults()

    def _apply_rollout(self, now: float) -> None:
        if self.config.rollout_at_seconds is not None \
                and not self._rollout_autostarted \
                and now >= self.config.rollout_at_seconds \
                and not self.rollout.active:
            self._rollout_autostarted = True
            self.start_rollout(Deployment(self.config.rollout_version))
        action = self.rollout.tick(now)
        if action is None:
            return
        if action[0] == "stage":
            zone = action[1]
            version = self._staging.version
            self._fleet_event("rollout_stage", zone=zone,
                              detail=f"{version} -> zone {zone}")
            for fleet_server in self._in_zone(zone):
                if fleet_server.state != RETIRED:
                    self._deploy_to(fleet_server, version)
        elif action[0] == "canary_pass":
            self._fleet_event("canary_pass", zone=action[1],
                              detail=action[2])
        elif action[0] == "rollback":
            staged = self._staging.version
            revert_to = self.rollout.previous_version \
                or self._current_version
            self._fleet_event("canary_fail", zone=None, server=-1,
                              detail=action[1])
            for fleet_server in self._ordered():
                if fleet_server.deployment == staged:
                    self._deploy_to(fleet_server, revert_to)
            self._fleet_event(
                "rollback", zone=None, server=-1,
                detail=f"{staged} -> {revert_to}: {action[1]}")
            self._staging = None
        elif action[0] == "done":
            self._fleet_event("canary_pass", zone=action[1],
                              detail=action[2])
            self._current_version = self._staging.version
            self._fleet_event(
                "rollout_done", zone=action[1],
                detail=f"fleet now on {self._current_version}")
            self._staging = None

    def _apply_autoscale(self, now: float) -> None:
        draining = sum(1 for fs in self._ordered()
                       if fs.state == DRAINING)
        action = self.autoscaler.tick(now, self._routable(), draining)
        if action is None:
            return
        if action[0] == "up":
            zone, reason = action[1], action[2]
            fleet_server = self._add_server(zone)
            live = len(self._routable()) + draining
            self.servers_peak = max(self.servers_peak, live)
            self._fleet_event("scale_up", zone=zone,
                              server=fleet_server.server_id,
                              detail=reason)
        else:
            victim, reason = action[1], action[2]
            victim.state = DRAINING
            self._fleet_event("scale_down", zone=victim.zone,
                              server=victim.server_id, detail=reason)
            self._fleet_event("drain_start", zone=victim.zone,
                              server=victim.server_id)

    def _finish_drains(self) -> None:
        for fleet_server in self._ordered():
            if fleet_server.state != DRAINING:
                continue
            sid = fleet_server.server_id
            live = fleet_server.queue_depth \
                or any(route_sid == sid
                       for route_sid, _ in self._routes)
            if not live:
                fleet_server.state = RETIRED
                self.prober.forget(sid)
                self._fleet_event("drain_done", zone=fleet_server.zone,
                                  server=sid)

    # -- reply collection ----------------------------------------------------

    def _collect(self) -> int:
        """Harvest finished server replies into fleet terminal replies."""
        collected = 0
        for (sid, rid), fid in sorted(list(self._routes.items())):
            fleet_server = self._servers[sid]
            reply = fleet_server.server.result(rid)
            if reply is None:
                continue
            del self._routes[(sid, rid)]
            record = self._pending[fid]
            latency_ms = reply.latency_ms + record.handoff_ms
            if reply.outcome in ("ok", "deadline"):
                self.autoscaler.observe(latency_ms,
                                        record.deadline_ms)
            self.rollout.on_reply(fleet_server.deployment,
                                  reply.outcome, latency_ms)
            self._finish(record, reply.outcome, value=reply.value,
                         replica=reply.replica, latency_ms=latency_ms,
                         hedges=reply.hedges, error=reply.error,
                         server=sid, zone=fleet_server.zone)
            collected += 1
        return collected

    # -- driving -------------------------------------------------------------

    def pump(self, _drain: bool = False) -> int:
        """One fleet control round; returns batches dispatched.

        Order matters and is fixed: faults fire first (the world
        changes), probes observe the changed world, the rollout and
        autoscaler act on it, servers run, replies are harvested, and
        finished drains retire — all deterministic on the shared clock.
        """
        now = self.clock.now()
        self._apply_faults(now)
        self._apply_probes(now)
        self._apply_rollout(now)
        self._apply_autoscale(now)
        ran = 0
        for fleet_server in self._ordered():
            if fleet_server.state in (ACTIVE, DRAINING):
                if _drain:
                    before = fleet_server.server.batches_dispatched
                    fleet_server.server.drain()
                    ran += fleet_server.server.batches_dispatched \
                        - before
                else:
                    ran += fleet_server.server.pump()
        self._collect()
        self._finish_drains()
        self._round += 1
        return ran

    def outstanding(self) -> int:
        """Accepted requests without a terminal reply yet."""
        return len(self._pending)

    def drain(self, max_rounds: int = 10000) -> dict[int, Reply]:
        """Run the fleet until every accepted request terminates.

        When a round makes no progress (e.g. every request is captured
        in a blackhole, or a whole-fleet outage is in force), the clock
        sleeps toward the next scheduled thing — a fault heal or a
        probe cycle — instead of spinning. ``max_rounds`` is a
        structural backstop: exceeding it means a termination bug.
        """
        rounds = 0
        while self.outstanding():
            rounds += 1
            if rounds > max_rounds:
                raise ServingError(
                    f"fleet drain exceeded {max_rounds} rounds with "
                    f"{self.outstanding()} requests outstanding")
            before = len(self.replies)
            started = self.clock.now()
            self.pump(_drain=True)
            if len(self.replies) == before \
                    and self.clock.now() == started:
                self._sleep_toward_wakeup()
        self.pump(_drain=True)   # retire any finished drains
        return self.replies

    def _sleep_toward_wakeup(self) -> None:
        now = self.clock.now()
        candidates = [self.prober.next_wakeup(now)]
        if self._injector is not None:
            injector_next = self._injector.next_wakeup(now)
            if injector_next is not None:
                candidates.append(injector_next)
        future = [c for c in candidates if c > now]
        target = min(future) if future else now
        self.clock.sleep(max(target - now, 1e-4))

    # -- reporting -----------------------------------------------------------

    @property
    def batches_dispatched(self) -> int:
        return self._lost_batches + sum(
            fs.server.batches_dispatched
            for fs in self._servers.values())

    def report(self) -> "FleetReport":
        return FleetReport.from_fleet(self)


def _percentile(latencies: list[float], q: float) -> float:
    if not latencies:
        return 0.0
    return float(np.percentile(np.asarray(latencies), q))


@dataclass
class FleetReport:
    """SLO + survival summary of one fleet run (JSON-serializable)."""

    workload: str
    zones: list[str] = field(default_factory=list)
    requests: int = 0
    accepted: int = 0
    ok: int = 0
    shed: int = 0
    deadline: int = 0
    error: int = 0
    hedges: int = 0
    reroutes: int = 0
    blackholed: int = 0
    probes: int = 0
    ejections: int = 0
    reinstatements: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    rollouts: int = 0
    rollbacks: int = 0
    zone_outages: int = 0
    server_crashes: int = 0
    servers_final: int = 0
    servers_peak: int = 0
    batches: int = 0
    faults_injected: int = 0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    mean_ms: float = 0.0
    tenants: dict = field(default_factory=dict)

    @classmethod
    def from_fleet(cls, fleet: ServingFleet) -> "FleetReport":
        counters = fleet.counters
        latencies = fleet.latencies_ms
        return cls(
            workload=fleet.model.name,
            zones=list(fleet.config.zones),
            requests=len(fleet.replies),
            accepted=counters["accepted"],
            ok=counters["ok"],
            shed=counters["shed"],
            deadline=counters["deadline"],
            error=counters["error"],
            hedges=counters["hedges"],
            reroutes=counters["reroutes"],
            blackholed=counters["blackholed"],
            probes=fleet.prober.probes,
            ejections=counters["ejections"],
            reinstatements=counters["reinstatements"],
            scale_ups=fleet.autoscaler.scale_ups,
            scale_downs=fleet.autoscaler.scale_downs,
            rollouts=counters["rollouts"],
            rollbacks=fleet.rollout.rollbacks,
            zone_outages=counters["zone_outages"],
            server_crashes=counters["server_crashes"],
            servers_final=len(fleet.servers_in(ACTIVE)),
            servers_peak=fleet.servers_peak,
            batches=fleet.batches_dispatched,
            faults_injected=(fleet._injector.num_injected
                             if fleet._injector is not None else 0),
            p50_ms=_percentile(latencies, 50),
            p95_ms=_percentile(latencies, 95),
            p99_ms=_percentile(latencies, 99),
            mean_ms=(float(np.mean(latencies)) if latencies else 0.0),
            tenants={name: dict(stats)
                     for name, stats in fleet.tenant_counters.items()})

    @property
    def attainment(self) -> float:
        """Fraction of *accepted* requests answered on time."""
        return self.ok / self.accepted if self.accepted else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of all requests shed at admission."""
        return self.shed / self.requests if self.requests else 0.0

    def to_json(self) -> dict:
        blob = dict(self.__dict__)
        blob["attainment"] = self.attainment
        blob["shed_rate"] = self.shed_rate
        return blob

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        """A terminal-friendly summary for ``repro fleet``."""
        lines = [
            f"fleet report: {self.workload}  "
            f"(zones {', '.join(self.zones)})",
            f"  requests   {self.requests:>6}  "
            f"(accepted {self.accepted}, shed {self.shed})",
            f"  outcomes   ok {self.ok}  deadline {self.deadline}  "
            f"error {self.error}",
            f"  latency    p50 {self.p50_ms:.2f} ms  "
            f"p95 {self.p95_ms:.2f} ms  p99 {self.p99_ms:.2f} ms",
            f"  attainment {self.attainment * 100:.1f}%  "
            f"shed rate {self.shed_rate * 100:.1f}%",
            f"  survival   reroutes {self.reroutes}  "
            f"blackholed {self.blackholed}  ejections {self.ejections}"
            f"  outages {self.zone_outages}  "
            f"crashes {self.server_crashes}",
            f"  scaling    up {self.scale_ups}  down "
            f"{self.scale_downs}  peak {self.servers_peak} servers  "
            f"final {self.servers_final}",
            f"  rollouts   {self.rollouts} started, "
            f"{self.rollbacks} rolled back",
            f"  probes     {self.probes} sent, "
            f"{self.reinstatements} reinstatements; "
            f"{self.batches} batches; "
            f"{self.faults_injected} faults injected",
        ]
        for name, stats in sorted(self.tenants.items()):
            lines.append(
                f"  tenant {name:<10} accepted {stats['accepted']:>5}"
                f"  ok {stats['ok']:>5}  shed {stats['shed']:>4}"
                f"  deadline {stats['deadline']:>4}"
                f"  error {stats['error']:>4}")
        return "\n".join(lines)
