"""Robust inference serving for the Fathom workloads.

The paper's standard model interface deliberately exposes inference as
a first-class mode next to training (Section V.D contrasts the two);
this package fronts any :class:`~repro.workloads.base.FathomModel`'s
compiled inference plan with a request queue and makes it survive
overload and faults:

* :mod:`~repro.serving.batcher` — deadline-aware dynamic batching with
  admission control and bounded-queue load shedding;
* :mod:`~repro.serving.breaker` — per-replica circuit breakers
  (closed/open/half-open, seeded deterministic backoff);
* :mod:`~repro.serving.replica` — a pool of forked sessions with
  degrade-don't-die tier demotion via the self-healing ladder;
* :mod:`~repro.serving.server` — the synchronous dispatch engine with
  hedged retry and SLO event emission;
* :mod:`~repro.serving.loadgen` — open/closed-loop load generation and
  the :class:`~repro.serving.loadgen.ServingReport` latency summary.

See ``docs/serving.md`` for the architecture and SLO semantics.
"""

from .batcher import DynamicBatcher, FeedCodec
from .breaker import BreakerConfig, CircuitBreaker
from .events import OUTCOMES, Reply, ServingEvent
from .loadgen import LoadConfig, LoadGenerator, ServingReport
from .replica import Replica
from .server import InferenceServer, ServingConfig, VirtualClock

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "DynamicBatcher",
    "FeedCodec",
    "InferenceServer",
    "LoadConfig",
    "LoadGenerator",
    "OUTCOMES",
    "Replica",
    "Reply",
    "ServingConfig",
    "ServingEvent",
    "ServingReport",
    "VirtualClock",
]
