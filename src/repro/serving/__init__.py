"""Robust inference serving for the Fathom workloads.

The paper's standard model interface deliberately exposes inference as
a first-class mode next to training (Section V.D contrasts the two);
this package fronts any :class:`~repro.workloads.base.FathomModel`'s
compiled inference plan with a request queue and makes it survive
overload and faults:

* :mod:`~repro.serving.batcher` — deadline-aware dynamic batching with
  admission control and bounded-queue load shedding;
* :mod:`~repro.serving.breaker` — per-replica circuit breakers
  (closed/open/half-open, seeded deterministic backoff);
* :mod:`~repro.serving.replica` — a pool of forked sessions with
  degrade-don't-die tier demotion via the self-healing ladder;
* :mod:`~repro.serving.server` — the synchronous dispatch engine with
  hedged retry and SLO event emission;
* :mod:`~repro.serving.routing` — the EWMA-latency + breaker-state
  scoring shared by replica selection and fleet load balancing;
* :mod:`~repro.serving.loadgen` — open/closed-loop load generation and
  the :class:`~repro.serving.loadgen.ServingReport` latency summary.

The *fleet* layer composes servers into a fault-domain-aware tier:

* :mod:`~repro.serving.fleet` — zones, salvage/re-route, the fleet
  invariant (exactly one terminal reply per accepted request);
* :mod:`~repro.serving.balancer` — tenant quotas + weighted selection;
* :mod:`~repro.serving.health` — active probing, ejection, reinstate;
* :mod:`~repro.serving.autoscale` — queue/p99-driven elastic sizing;
* :mod:`~repro.serving.rollout` — canary deploys with auto-rollback.

See ``docs/serving.md`` for the architecture and SLO semantics.
"""

from .autoscale import AutoscaleConfig, Autoscaler
from .balancer import LoadBalancer, TenantSpec
from .batcher import DynamicBatcher, FeedCodec
from .breaker import BreakerConfig, CircuitBreaker
from .events import OUTCOMES, Reply, ServingEvent
from .fleet import FleetConfig, FleetReport, FleetServer, ServingFleet
from .health import HealthConfig, HealthProber
from .loadgen import LoadConfig, LoadGenerator, ServingReport
from .replica import Replica
from .rollout import Deployment, RolloutConfig, RolloutManager
from .server import InferenceServer, ServingConfig, VirtualClock

__all__ = [
    "AutoscaleConfig",
    "Autoscaler",
    "BreakerConfig",
    "CircuitBreaker",
    "Deployment",
    "DynamicBatcher",
    "FeedCodec",
    "FleetConfig",
    "FleetReport",
    "FleetServer",
    "HealthConfig",
    "HealthProber",
    "InferenceServer",
    "LoadBalancer",
    "LoadConfig",
    "LoadGenerator",
    "OUTCOMES",
    "Replica",
    "Reply",
    "RolloutConfig",
    "RolloutManager",
    "ServingConfig",
    "ServingEvent",
    "ServingFleet",
    "ServingReport",
    "TenantSpec",
    "VirtualClock",
]
