"""Shared routing-weight scoring: EWMA latency shaded by breaker state.

Both routing layers in the serving stack rank candidates by the same
two signals — how fast a target has recently been (its EWMA batch
latency) and how healthy it currently is (its circuit-breaker state):

* :class:`~repro.serving.server.InferenceServer` picks a *replica* for
  the next batch (:func:`replica_selection_key`);
* the fleet :class:`~repro.serving.balancer.LoadBalancer` picks a
  *server* for the next request (:func:`server_score`, which folds
  every replica's score into the server's best case).

Keeping the computation here — one implementation, two call sites —
is what stops the two layers' notions of "fastest healthy target" from
drifting apart.
"""

from __future__ import annotations

import math

from .breaker import CLOSED, HALF_OPEN, OPEN

#: breaker-state multipliers on the latency score: a closed breaker
#: routes at face value, a half-open one is deprioritized (its next
#: batch is a trial, not a commitment), an open one is effectively
#: unroutable (infinite weight) without being structurally excluded —
#: callers that *must* pick someone still get a total order.
BREAKER_WEIGHTS = {CLOSED: 1.0, HALF_OPEN: 2.0, OPEN: math.inf}


def effective_latency(ewma_latency: float | None,
                      prior_seconds: float = 0.0) -> float:
    """The latency estimate to route on, before any health shading.

    An unmeasured target scores ``prior_seconds`` — by default ``0.0``,
    i.e. optimistically fast, so cold targets (fresh replicas, newly
    scaled-up servers) attract traffic and get measured instead of
    starving behind warm peers.
    """
    return ewma_latency if ewma_latency is not None else prior_seconds


def breaker_weight(state: str) -> float:
    """The routing multiplier for one breaker state."""
    return BREAKER_WEIGHTS[state]


def routing_score(ewma_latency: float | None, breaker_state: str,
                  prior_seconds: float = 0.0) -> float:
    """One target's routing weight: lower is better.

    The score is the EWMA latency estimate scaled by the breaker-state
    weight; an open breaker scores ``inf`` (last resort), a half-open
    one doubles its latency (probe-shy), a closed one competes on
    measured speed alone.
    """
    latency = effective_latency(ewma_latency, prior_seconds)
    weight = breaker_weight(breaker_state)
    if math.isinf(weight):
        return math.inf
    # A cold target (latency 0.0) stays cold-attractive regardless of
    # the weight; the multiplier only shades *measured* targets.
    return latency * weight


def replica_selection_key(replica) -> tuple:
    """Sort key for :meth:`InferenceServer._pick_replica`.

    Probe-eligible (half-open) replicas sort first — once a breaker's
    backoff expires, the next batch IS the trial, otherwise a tripped
    replica starves behind healthy peers and never closes its breaker —
    then breaker-closed replicas by routing score (fastest first), with
    the replica id as the deterministic tie-break.
    """
    return (not replica.breaker.is_probe(),
            routing_score(replica.ewma_latency, CLOSED),
            replica.replica_id)


def server_score(replicas, prior_seconds: float = 0.0) -> float:
    """A whole server's routing weight: its best replica's score.

    A server is as attractive as the best batch it could serve right
    now; a server whose breakers are all open scores ``inf`` (routable
    only when nothing better exists).
    """
    if not replicas:
        return math.inf
    return min(routing_score(r.ewma_latency, r.breaker.state,
                             prior_seconds)
               for r in replicas)
