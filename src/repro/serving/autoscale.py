"""Deterministic autoscaling from queue depth and p99-vs-deadline.

The autoscaler watches two production signals:

* **queue pressure** — mean queued requests per active server. Deep
  queues mean arrivals outrun capacity; admission control is already
  shedding or about to.
* **tail latency vs SLO** — the p99 of recently serviced requests
  against their deadlines. A fleet can have shallow queues and still
  be about to blow its SLO (slow replicas, a straggling zone).

Either signal breaching its threshold scales *up*; both signals calm
scales *down*. Decisions follow PR 5's elastic-membership discipline
(:class:`~repro.distributed.membership.MembershipPlan`): changes land
only on pump-round boundaries, target selection is a pure function of
fleet state (zone occupancy, server ids), and a cooldown separates
consecutive actions — so the whole scaling trajectory is deterministic
on a virtual clock. Scale-down never kills a server outright: the
victim is *drained* (no new traffic, in-flight work finishes) and only
then decommissioned.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["AutoscaleConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs for :class:`Autoscaler`.

    Args:
        enabled: master switch (a fixed-size fleet sets False).
        min_servers: never drain below this many active servers.
        max_servers: never grow beyond this many (active + draining).
        high_queue_per_server: scale up when mean queue depth per
            active server exceeds this.
        low_queue_per_server: scale down only when mean queue depth is
            below this.
        p99_deadline_fraction: scale up when the recent p99 latency
            exceeds this fraction of the matching deadlines.
        window: how many recent serviced replies the p99 sees.
        cooldown_seconds: minimum fleet-clock time between actions.
    """

    enabled: bool = True
    min_servers: int = 2
    max_servers: int = 9
    high_queue_per_server: float = 4.0
    low_queue_per_server: float = 0.5
    p99_deadline_fraction: float = 0.9
    window: int = 64
    cooldown_seconds: float = 0.02

    def __post_init__(self):
        if self.min_servers < 1:
            raise ValueError("min_servers must be >= 1")
        if self.max_servers < self.min_servers:
            raise ValueError("max_servers must be >= min_servers")


class Autoscaler:
    """Queue- and SLO-driven scale decisions, one per cooldown window."""

    def __init__(self, config: AutoscaleConfig | None = None):
        self.config = config or AutoscaleConfig()
        self._last_action_at: float | None = None
        #: (latency_ms, deadline_ms) of recent serviced replies
        self._recent: deque[tuple[float, float]] = deque(
            maxlen=self.config.window)
        self.scale_ups = 0
        self.scale_downs = 0

    def observe(self, latency_ms: float, deadline_ms: float) -> None:
        """Feed one serviced (ok/deadline) reply into the p99 window."""
        if deadline_ms > 0:
            self._recent.append((latency_ms, deadline_ms))

    # -- signals -------------------------------------------------------------

    def p99_breach(self) -> bool:
        """True when the recent p99 is pressing against deadlines."""
        if len(self._recent) < 8:   # too little signal to act on
            return False
        latencies = np.asarray([pair[0] for pair in self._recent])
        deadlines = np.asarray([pair[1] for pair in self._recent])
        p99 = float(np.percentile(latencies, 99))
        bound = float(np.median(deadlines)) \
            * self.config.p99_deadline_fraction
        return p99 > bound

    # -- decisions -----------------------------------------------------------

    def tick(self, now: float, active_servers,
             draining: int = 0) -> tuple | None:
        """One scale decision, or ``None``.

        Returns ``("up", zone_hint, reason)`` — the fleet adds a server
        to the least-occupied zone — or ``("down", server, reason)`` —
        the fleet starts draining ``server``. ``active_servers`` are
        the currently routable servers (each with ``zone``,
        ``server_id``, and a ``queue_depth``); ``draining`` counts
        servers already on their way out (they still occupy capacity
        against ``max_servers``).
        """
        config = self.config
        if not config.enabled or not active_servers:
            return None
        if self._last_action_at is not None \
                and now - self._last_action_at < config.cooldown_seconds:
            return None
        active = sorted(active_servers, key=lambda s: s.server_id)
        depth = sum(s.queue_depth for s in active)
        per_server = depth / len(active)
        breach = self.p99_breach()
        if per_server > config.high_queue_per_server or breach:
            if len(active) + draining < config.max_servers:
                self._last_action_at = now
                self.scale_ups += 1
                reason = (f"queue {per_server:.1f}/server"
                          if per_server > config.high_queue_per_server
                          else "p99 pressing deadline")
                return ("up", self._emptiest_zone(active), reason)
            return None
        if per_server < config.low_queue_per_server and not breach \
                and len(active) > config.min_servers:
            self._last_action_at = now
            self.scale_downs += 1
            victim = self._drain_victim(active)
            return ("down", victim,
                    f"queue {per_server:.2f}/server, p99 healthy")
        return None

    @staticmethod
    def _emptiest_zone(active) -> str:
        """The zone with the fewest active servers (ties: zone order)."""
        occupancy: dict[str, int] = {}
        for server in active:
            occupancy[server.zone] = occupancy.get(server.zone, 0) + 1
        return min(sorted(occupancy), key=lambda z: occupancy[z])

    @staticmethod
    def _drain_victim(active):
        """Who drains on scale-down: the youngest server in the
        fullest zone — the deterministic inverse of scale-up, so a
        scale-up/scale-down cycle returns the fleet to its prior
        topology."""
        occupancy: dict[str, int] = {}
        for server in active:
            occupancy[server.zone] = occupancy.get(server.zone, 0) + 1
        fullest = max(sorted(occupancy), key=lambda z: occupancy[z])
        in_zone = [s for s in active if s.zone == fullest]
        return max(in_zone, key=lambda s: s.server_id)
