"""Fleet load balancing: tenant admission quotas + weighted server pick.

The :class:`LoadBalancer` is the fleet's front door. It does two jobs:

* **tenant admission** — every request belongs to a tenant (an SLO
  class with a quota on *outstanding* work). A tenant that floods the
  fleet — deliberately or because its traffic is poisoned and every
  request burns hedges — hits its own quota and is shed with reason
  ``tenant_quota`` while the other tenants' traffic flows untouched.
  Quotas bound outstanding (accepted but unterminated) requests, so a
  tenant's pressure on the fleet is capped no matter how fast it
  submits.
* **server selection** — among routable servers (active, zone up, not
  draining/ejected), pick the one with the best routing score: the
  same EWMA-latency + breaker-state weight the single server uses to
  pick replicas (see :mod:`repro.serving.routing` — one
  implementation, two layers). Ties break on server id, so selection
  is deterministic.

The balancer deliberately does *not* know about blackholes: an
``lb_blackhole`` fault is a silent link failure, and discovering it is
the health prober's job (see :mod:`repro.serving.health`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .routing import server_score

__all__ = ["LoadBalancer", "TenantSpec"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's admission contract.

    Args:
        name: tenant identity (request tagging, quota accounting).
        max_outstanding: quota on accepted-but-unterminated requests;
            submissions beyond it are shed with reason ``tenant_quota``.
        deadline_ms: this tenant's SLO class — the per-request deadline
            applied when the caller gives none (``None`` = the fleet's
            default deadline).
    """

    name: str
    max_outstanding: int = 64
    deadline_ms: float | None = None

    def __post_init__(self):
        if self.max_outstanding < 1:
            raise ValueError(
                f"max_outstanding must be >= 1, got "
                f"{self.max_outstanding}")


class LoadBalancer:
    """Weighted server selection plus per-tenant quota accounting."""

    def __init__(self, tenants: tuple[TenantSpec, ...],
                 prior_seconds: float = 0.0):
        if not tenants:
            raise ValueError("a fleet needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self.tenants = {t.name: t for t in tenants}
        self.prior_seconds = prior_seconds
        self.outstanding = {t.name: 0 for t in tenants}

    # -- tenant admission ----------------------------------------------------

    def admit_tenant(self, name: str) -> str | None:
        """Count one submission against ``name``'s quota.

        Returns ``None`` and increments the tenant's outstanding count
        on success, or the shed reason ``"tenant_quota"`` when the
        tenant is at its bound.
        """
        spec = self.tenants[name]
        if self.outstanding[name] >= spec.max_outstanding:
            return "tenant_quota"
        self.outstanding[name] += 1
        return None

    def release_tenant(self, name: str) -> None:
        """One of ``name``'s requests reached a terminal reply."""
        self.outstanding[name] -= 1
        assert self.outstanding[name] >= 0, \
            f"tenant {name} outstanding went negative"

    def deadline_for(self, name: str, default_ms: float) -> float:
        """The tenant's SLO-class deadline, or the fleet default."""
        spec = self.tenants[name]
        return spec.deadline_ms if spec.deadline_ms is not None \
            else default_ms

    # -- server selection ----------------------------------------------------

    def pick(self, servers, exclude: frozenset | set = frozenset()):
        """The best routable server, or ``None`` when nothing routes.

        ``servers`` is any iterable of fleet servers (objects with
        ``routable``, ``server_id``, and ``replicas``); ``exclude``
        removes ids already tried this submission (spillover: a server
        that sheds passes the request to the next-best candidate).
        """
        candidates = [s for s in servers
                      if s.routable and s.server_id not in exclude]
        if not candidates:
            return None
        candidates.sort(key=lambda s: (
            server_score(s.replicas, self.prior_seconds), s.server_id))
        return candidates[0]

    def ranked(self, servers, exclude: frozenset | set = frozenset()):
        """All routable servers, best first (spillover order)."""
        candidates = [s for s in servers
                      if s.routable and s.server_id not in exclude]
        candidates.sort(key=lambda s: (
            server_score(s.replicas, self.prior_seconds), s.server_id))
        return candidates
