"""The serving engine: dispatch, hedged retry, and failover.

:class:`InferenceServer` fronts one workload's compiled inference plan
with the pieces from the sibling modules — a
:class:`~repro.serving.batcher.DynamicBatcher` feeding a pool of
:class:`~repro.serving.replica.Replica` sessions — and owns the
policies that tie them together:

* **replica selection** — healthy (breaker-closed) replicas first,
  fastest EWMA first; a half-open replica gets exactly one probe batch;
  when *every* breaker is open the server sleeps until the earliest
  one becomes probeable, so accepted work always makes progress;
* **hedged retry** — requests stranded on a failed batch (crash,
  execution fault, poisoned output) re-enter the queue at the *front*
  and retry on another replica, bounded by ``max_hedges`` attempts;
* **failover + restart** — a crashed replica hard-trips its breaker and
  is rebuilt from the source model's weights, preserving its earned
  degradation tier;
* **termination** — every accepted request reaches exactly one terminal
  :class:`~repro.serving.events.Reply`; bounded hedges, queue expiry,
  and the all-breakers-open sleep make hangs structurally impossible.

The engine is synchronous and single-threaded, and *time is a
dependency*: all timing flows through an injectable clock, so chaos
tests drive the whole stack — breaker backoffs, deadlines, injected
stalls — from a :class:`VirtualClock` and stay deterministic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

# Clocks live in framework.clock so the resilience and distributed
# layers can share them; re-exported here for backward compatibility.
from repro.framework.clock import SystemClock, VirtualClock
from repro.framework.errors import ExecutionError, ReplicaCrashError, \
    ServingError
from repro.framework.session import HealingConfig

from .batcher import DynamicBatcher, FeedCodec
from .breaker import BreakerConfig
from .events import PendingRequest, Reply, ServingEvent
from .replica import Replica
from .routing import replica_selection_key

__all__ = ["InferenceServer", "ServingConfig", "SystemClock",
           "VirtualClock"]

#: small epsilon added when sleeping toward a breaker's reopen time,
#: so the subsequent availability check is strictly past the boundary
_REOPEN_EPSILON = 1e-6


@dataclass
class ServingConfig:
    """Knobs for :class:`InferenceServer`.

    Args:
        replicas: size of the session pool.
        max_batch: coalesce at most this many requests per dispatch
            (capped at the workload's plan batch size; ``None`` = the
            plan batch size).
        max_wait_ms: dispatch a partial batch once its oldest request
            has waited this long.
        queue_limit: bound on queued requests; beyond it, admission
            sheds with reason ``queue_full``.
        default_deadline_ms: per-request deadline when the caller gives
            none; ``0`` disables deadline handling for the request.
        max_hedges: retry attempts for requests stranded on a failed
            batch before they terminate with an ``error`` reply.
        slow_batch_ms: batches slower than this count as breaker
            failures for their replica (straggler detection);
            ``None`` disables.
        admission_safety: multiplier on the service-time estimate used
            by deadline-unmeetable shedding (>1 sheds earlier).
        est_batch_ms: prior service-time estimate used until the
            replicas have measured latencies.
        breaker: per-replica :class:`~repro.serving.breaker.BreakerConfig`
            (each replica derives a distinct jitter seed from it).
        healing: per-replica
            :class:`~repro.framework.session.HealingConfig` for the
            degrade-don't-die ladder.
        seed: base seed for per-replica derived seeds.
    """

    replicas: int = 2
    max_batch: int | None = None
    max_wait_ms: float = 2.0
    queue_limit: int = 64
    default_deadline_ms: float = 100.0
    max_hedges: int = 1
    slow_batch_ms: float | None = None
    admission_safety: float = 1.0
    est_batch_ms: float = 5.0
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    healing: HealingConfig = field(default_factory=HealingConfig)
    seed: int = 0


_BREAKER_EVENT_KINDS = {
    "open": "breaker_open",
    "half_open": "breaker_half_open",
    "closed": "breaker_close",
}


class InferenceServer:
    """A robust request front-end over one workload's inference plan."""

    #: the fault family this harness accepts via :meth:`install_faults`
    #: (the campaign engine's uniform adapter surface; see repro.chaos)
    FAULT_FAMILY = "serving"

    def __init__(self, model, config: ServingConfig | None = None,
                 tracer=None, clock=None):
        self.model = model
        self.config = config or ServingConfig()
        self.tracer = tracer
        self.clock = clock or SystemClock()
        self.codec = FeedCodec(model)
        self.batcher = DynamicBatcher(
            self.codec, max_batch=self.config.max_batch,
            max_wait=self.config.max_wait_ms / 1000.0,
            queue_limit=self.config.queue_limit,
            admission_safety=self.config.admission_safety)
        self.replicas = [self._make_replica(rid)
                         for rid in range(max(1, self.config.replicas))]
        self.replies: dict[int, Reply] = {}
        self.events: list[ServingEvent] = []
        #: serviced-request latencies (ok + late), for the report
        self.latencies_ms: list[float] = []
        self.counters = {"accepted": 0, "shed": 0, "ok": 0,
                         "deadline": 0, "error": 0, "hedges": 0,
                         "probes": 0}
        self.batches_dispatched = 0
        self._next_id = 0
        self._faults = None

    def _make_replica(self, replica_id: int) -> Replica:
        breaker = dataclasses.replace(
            self.config.breaker,
            seed=self.config.breaker.seed + 31 * (self.config.seed + 1)
            + replica_id)

        def on_transition(state, now, detail, _rid=replica_id):
            self._emit(ServingEvent(
                step=self.batches_dispatched,
                kind=_BREAKER_EVENT_KINDS[state], replica=_rid,
                detail=detail))

        return Replica(self.model, replica_id, breaker_config=breaker,
                       healing_config=self.config.healing,
                       sink=self._sink_degradation,
                       on_transition=on_transition)

    # -- events ------------------------------------------------------------

    def _emit(self, event: ServingEvent) -> None:
        self.events.append(event)
        if self.tracer is not None:
            self.tracer.record_event(event)

    def _sink_degradation(self, event) -> None:
        """Replica healing events flow to the same tracer stream."""
        if self.tracer is not None:
            self.tracer.record_event(event)

    # -- faults ------------------------------------------------------------

    def install_faults(self, plan):
        """Arm a :class:`~repro.framework.faults.ServingFaultPlan`.

        The injector's stalls sleep on *this server's clock*, so chaos
        under a :class:`VirtualClock` is fully deterministic.
        """
        self._faults = plan.injector(sleep=self.clock.sleep)
        return self._faults

    def uninstall_faults(self) -> None:
        """Disarm any installed fault plan (a rollback reverting a
        defective deployment)."""
        self._faults = None

    # -- admission ---------------------------------------------------------

    def _est_batch_seconds(self) -> float:
        known = [r.ewma_latency for r in self.replicas
                 if r.ewma_latency is not None]
        if known:
            return sum(known) / len(known)
        return self.config.est_batch_ms / 1000.0

    def submit(self, feed: Mapping[Any, np.ndarray],
               deadline_ms: float | None = None) -> int:
        """Admit one single-example request; returns its request id.

        A request the server cannot serve in time is shed *now* (its
        terminal :class:`~repro.serving.events.Reply` is immediately
        available) rather than queued to fail later.
        """
        now = self.clock.now()
        request_id = self._next_id
        self._next_id += 1
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        pending = PendingRequest(request_id=request_id, feed=dict(feed),
                                 deadline_ms=float(deadline_ms),
                                 arrival=now)
        reason = self.batcher.admit(pending, now,
                                    self._est_batch_seconds())
        if reason is not None:
            self._finish(pending, "shed", error=reason, now=now)
        else:
            self.counters["accepted"] += 1
        return request_id

    def submit_batch(self, batch_feed: Mapping[Any, np.ndarray],
                     deadline_ms: float | None = None) -> list[int]:
        """Split a full-batch feed into per-example requests and submit."""
        return [self.submit(single, deadline_ms=deadline_ms)
                for single in self.codec.split_feed(batch_feed)]

    # -- terminal outcomes -------------------------------------------------

    def _finish(self, pending: PendingRequest, outcome: str,
                value: np.ndarray | None = None,
                replica: int | None = None, latency_ms: float = 0.0,
                error: str = "", now: float | None = None) -> None:
        if pending.request_id in self.replies:
            raise ServingError(
                f"request {pending.request_id} finished twice "
                f"({self.replies[pending.request_id].outcome!r} then "
                f"{outcome!r})")
        reply = Reply(request_id=pending.request_id, outcome=outcome,
                      value=value, replica=replica,
                      latency_ms=latency_ms,
                      deadline_ms=pending.deadline_ms,
                      hedges=pending.attempts, error=error)
        self.replies[pending.request_id] = reply
        self.counters[outcome] += 1
        if outcome in ("ok", "deadline") and value is not None:
            self.latencies_ms.append(latency_ms)
        self._emit(ServingEvent(
            step=pending.request_id,
            kind="shed" if outcome == "shed" else "reply",
            outcome=outcome, replica=replica, latency_ms=latency_ms,
            deadline_ms=pending.deadline_ms, detail=error))

    def _expire_queue(self, now: float) -> None:
        for pending in self.batcher.expire(now):
            self._finish(pending, "deadline",
                         latency_ms=(now - pending.arrival) * 1000.0,
                         error="expired in queue", now=now)

    # -- replica selection -------------------------------------------------

    def _pick_replica(self, now: float) -> Replica:
        """A replica allowed to serve right now; sleeps if none is.

        Preference order: half-open probes first (once a breaker's
        backoff expires, the next batch IS the trial — otherwise a
        tripped replica starves behind a healthy peer and never closes
        its breaker or re-escalates; a failed trial is bounded by the
        hedge path), then breaker-closed replicas by EWMA latency
        (fastest first). When every breaker is open, sleeping until the
        earliest ``reopen_at`` converts one to half-open — so selection
        always terminates with a replica.
        """
        while True:
            available = [r for r in self.replicas
                         if r.breaker.available(now)]
            if available:
                # Probe-first, then fastest-EWMA — the same scoring the
                # fleet LoadBalancer uses to rank whole servers (see
                # repro.serving.routing).
                available.sort(key=replica_selection_key)
                return available[0]
            reopen = min(r.breaker.reopen_at() for r in self.replicas)
            self.clock.sleep(max(0.0, reopen - now) + _REOPEN_EPSILON)
            now = self.clock.now()

    # -- dispatch ----------------------------------------------------------

    def _retry_group(self, group: list[PendingRequest], now: float,
                     detail: str) -> None:
        """Hedge a failed batch's requests, or fail them terminally."""
        retry: list[PendingRequest] = []
        for pending in group:
            pending.attempts += 1
            alive = (pending.deadline_ms <= 0
                     or now < pending.deadline_at())
            if pending.attempts <= self.config.max_hedges and alive:
                retry.append(pending)
            else:
                why = detail if pending.attempts > self.config.max_hedges \
                    else f"deadline passed during failed attempt: {detail}"
                outcome = "error" if alive else "deadline"
                self._finish(pending, outcome,
                             latency_ms=(now - pending.arrival) * 1000.0,
                             error=why, now=now)
        # Front-requeue preserving FIFO order among the hedged.
        for pending in reversed(retry):
            self.batcher.requeue(pending)
            self.counters["hedges"] += 1
            self._emit(ServingEvent(
                step=pending.request_id, kind="hedge",
                detail=f"attempt {pending.attempts + 1}: {detail}"))

    def _dispatch(self) -> None:
        """Run one coalesced batch through one replica."""
        group = self.batcher.pop_batch()
        if not group:
            return
        batch_index = self.batches_dispatched
        self.batches_dispatched += 1
        now = self.clock.now()
        replica = self._pick_replica(now)
        rid = replica.replica_id
        if replica.breaker.is_probe():
            self.counters["probes"] += 1
            self._emit(ServingEvent(
                step=batch_index, kind="probe", replica=rid,
                detail=f"half-open trial at tier {replica.tier!r}"))
        batch_feed, _live = self.codec.assemble([p.feed for p in group])
        # Service time is measured around the fault hooks so injected
        # stalls count against the replica (straggler detection, EWMA).
        started = self.clock.now()
        try:
            if self._faults is not None:
                self._faults.before_batch(rid, batch_index)
            output, _ = replica.run_batch(batch_feed,
                                          clock=self.clock.now)
            if self._faults is not None:
                output = self._faults.after_batch(rid, batch_index,
                                                  output)
        except ReplicaCrashError as exc:
            now = self.clock.now()
            replica.on_crash(exc, batch_index, now)
            self._emit(ServingEvent(
                step=batch_index, kind="replica_restart", replica=rid,
                detail=f"session rebuilt at tier {replica.tier!r} "
                       f"after: {exc}"))
            self._retry_group(group, now, f"replica {rid} crashed")
            return
        except Exception as exc:
            now = self.clock.now()
            replica.on_error(exc, batch_index, now)
            self._retry_group(group, now,
                              f"replica {rid}: {exc}".splitlines()[0])
            return
        now = self.clock.now()
        elapsed = now - started
        poisoned = self._screen_output(output)
        if poisoned:
            replica.on_error(ExecutionError(
                f"replica:{rid}",
                f"non-finite inference output ({poisoned})"),
                batch_index, now)
            self._retry_group(
                group, now, f"replica {rid} returned {poisoned} output")
            return
        replica.observe_latency(elapsed)
        slow = (self.config.slow_batch_ms is not None
                and elapsed * 1000.0 > self.config.slow_batch_ms)
        if slow:
            replica.on_slow(batch_index, now,
                            detail=f"{elapsed * 1e3:.1f} ms batch")
        else:
            replica.on_success(batch_index, now)
        for index, pending in enumerate(group):
            value = self.codec.extract(output, index)
            latency_ms = (now - pending.arrival) * 1000.0
            late = pending.deadline_ms > 0 and now > pending.deadline_at()
            self._finish(pending, "deadline" if late else "ok",
                         value=value, replica=rid,
                         latency_ms=latency_ms,
                         error="served past deadline" if late else "",
                         now=now)

    @staticmethod
    def _screen_output(output) -> str | None:
        value = np.asarray(output)
        if not np.issubdtype(value.dtype, np.floating):
            return None
        if np.isnan(value).any():
            return "NaN"
        if np.isinf(value).any():
            return "Inf"
        return None

    # -- driving -----------------------------------------------------------

    def pump(self) -> int:
        """Dispatch every batch that is *ready* now; returns batches run."""
        ran = 0
        while True:
            now = self.clock.now()
            self._expire_queue(now)
            if not self.batcher.ready(now):
                return ran
            self._dispatch()
            ran += 1

    def drain(self, max_batches: int = 10000) -> dict[int, Reply]:
        """Serve until every accepted request has a terminal reply.

        Dispatches partial batches without waiting out ``max_wait`` —
        no further arrivals are coming. ``max_batches`` is a structural
        backstop; exceeding it means a termination bug, not load.
        """
        ran = 0
        while len(self.batcher):
            self._expire_queue(self.clock.now())
            if not len(self.batcher):
                break
            if ran >= max_batches:
                raise ServingError(
                    f"drain exceeded {max_batches} batches with "
                    f"{len(self.batcher)} requests still queued")
            self._dispatch()
            ran += 1
        return self.replies

    def result(self, request_id: int) -> Reply | None:
        """The terminal reply for a request, or None while pending."""
        return self.replies.get(request_id)

    # -- fleet hooks -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Queued (accepted, undispatched) requests right now."""
        return len(self.batcher)

    def evict_pending(self) -> list[PendingRequest]:
        """Remove and return every queued request *without* finishing it.

        The fleet layer's salvage path: when this server goes down (zone
        outage, correlated crash) or is ejected, its queued requests are
        evicted here and re-routed to surviving servers, so they still
        reach exactly one terminal reply — at the fleet level, on
        another server — instead of dying with this one.
        """
        evicted = []
        while len(self.batcher):
            evicted.extend(self.batcher.pop_batch())
        return evicted

    # -- reporting ---------------------------------------------------------

    def report(self):
        """A :class:`~repro.serving.loadgen.ServingReport` snapshot."""
        from .loadgen import ServingReport
        return ServingReport.from_server(self)
