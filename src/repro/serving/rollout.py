"""Rolling deploys with canary analysis and deterministic rollback.

A fleet that survives machine failures can still be killed in one
motion by its own deploy pipeline — a bad rollout is a *correlated*
fault injected by the operator. The defense is the same one production
fleets use:

* **zone-by-zone staging** — a new :class:`Deployment` lands on one
  fault domain at a time, in zone order. The blast radius of a bad
  version is one zone, never the fleet.
* **canary analysis** — while a stage bakes, the comparator splits
  terminal replies into *canary* (servers on the new version) and
  *baseline* (servers still on the old one) and, after
  ``canary_window`` canary replies, compares unhealthy-outcome rate
  (error + deadline) and p99 latency. Baseline stats accumulate across
  the whole rollout, so the final stage — when no old-version server
  remains — still judges against the versions it replaced.
* **automatic rollback** — a regression (unhealthy-rate delta or p99
  blowup beyond the configured bounds) reverts *every* staged server
  to the prior version in the same pump round. All comparisons use
  deterministic virtual-clock stats, so the same seed produces the
  same verdict and the same event signature, run after run.

The defective behaviour itself is injected by the ``bad_rollout``
fleet fault (see :class:`~repro.framework.faults.FleetFaultSpec`): a
poisoned version NaNs its batches, a slow one stalls them — both are
regressions the comparator must catch from SLO signals alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CanaryStats", "Deployment", "RolloutConfig", "RolloutManager"]


@dataclass(frozen=True)
class Deployment:
    """One deployable version of the serving configuration.

    ``defect`` is the chaos hook: ``None`` is a clean deploy, while
    ``"poison"``/``"slow"`` make servers running this version misbehave
    (wired through a per-server fault plan by the fleet). The canary
    comparator never reads ``defect`` — it must convict the version on
    observed SLO evidence.
    """

    version: str
    defect: str | None = None
    detail: str = ""


@dataclass(frozen=True)
class RolloutConfig:
    """Knobs for :class:`RolloutManager`.

    Args:
        canary_window: canary replies per stage before judging.
        max_unhealthy_delta: regression when the canary's unhealthy
            rate (error + deadline outcomes) exceeds the baseline's by
            more than this.
        max_p99_ratio: regression when the canary p99 exceeds
            ``baseline_p99 * ratio + p99_slack_ms``.
        p99_slack_ms: absolute slack on the p99 comparison (keeps tiny
            baselines from flagging noise).
        bake_seconds: judge a stage on whatever evidence arrived once
            it has baked this long, even below ``canary_window`` —
            a misbehaving canary repels traffic (its breakers open and
            its routing score collapses), so waiting for a full window
            would starve forever exactly when the version is worst.
        min_canary: minimum canary replies a baked judgement needs; a
            stage baked ``4 * bake_seconds`` with *zero* canary replies
            rolls back on starvation alone.
    """

    canary_window: int = 8
    max_unhealthy_delta: float = 0.25
    max_p99_ratio: float = 3.0
    p99_slack_ms: float = 5.0
    bake_seconds: float = 0.05
    min_canary: int = 2


@dataclass
class CanaryStats:
    """Terminal-reply tallies for one side of the comparison."""

    count: int = 0
    unhealthy: int = 0
    latencies_ms: list[float] = field(default_factory=list)

    def add(self, outcome: str, latency_ms: float) -> None:
        self.count += 1
        if outcome in ("error", "deadline"):
            self.unhealthy += 1
        elif outcome == "ok":
            self.latencies_ms.append(latency_ms)

    @property
    def unhealthy_rate(self) -> float:
        return self.unhealthy / self.count if self.count else 0.0

    def p99_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), 99))


class RolloutManager:
    """The zone-by-zone rollout state machine.

    The fleet drives it with three calls: :meth:`start` begins a
    rollout, :meth:`on_reply` feeds every terminal reply's
    ``(version, outcome, latency)``, and :meth:`tick` returns the next
    action when a stage has enough evidence:

    * ``("stage", zone)`` — apply the deployment to this zone next;
    * ``("canary_pass", zone, detail)`` — stage judged healthy;
    * ``("rollback", detail)`` — regression: revert every staged zone;
    * ``("done",)`` — all zones staged and judged.
    """

    def __init__(self, config: RolloutConfig | None = None):
        self.config = config or RolloutConfig()
        self.deployment: Deployment | None = None
        self.previous_version: str | None = None
        self.zones: list[str] = []
        self.stage_index = -1
        self.staged_pending = False   #: stage announced, not yet applied
        self._stage_started_at: float | None = None
        self.canary = CanaryStats()
        self.baseline = CanaryStats()
        self.rollbacks = 0
        self.completed = 0

    @property
    def active(self) -> bool:
        return self.deployment is not None

    # -- lifecycle -----------------------------------------------------------

    def start(self, deployment: Deployment, zones,
              current_version: str) -> None:
        if self.active:
            raise RuntimeError(
                f"rollout of {self.deployment.version!r} still in "
                f"progress; cannot start {deployment.version!r}")
        self.deployment = deployment
        self.previous_version = current_version
        self.zones = list(zones)
        self.stage_index = 0
        self.staged_pending = True
        self.canary = CanaryStats()
        self.baseline = CanaryStats()

    def on_reply(self, version: str, outcome: str,
                 latency_ms: float) -> None:
        """Classify one terminal reply as canary or baseline evidence."""
        if not self.active or outcome == "shed":
            return
        if version == self.deployment.version:
            self.canary.add(outcome, latency_ms)
        else:
            self.baseline.add(outcome, latency_ms)

    def tick(self, now: float) -> tuple | None:
        """The next rollout action, if the evidence is in."""
        if not self.active:
            return None
        if self.staged_pending:
            self.staged_pending = False
            self._stage_started_at = now
            return ("stage", self.zones[self.stage_index])
        if self.canary.count < self.config.canary_window:
            baked = now - self._stage_started_at
            if baked < self.config.bake_seconds \
                    or self.canary.count < self.config.min_canary:
                if self.canary.count == 0 \
                        and baked >= 4 * self.config.bake_seconds:
                    # Total starvation: the staged zone repels all
                    # traffic. That only happens when its servers score
                    # unroutably bad — conviction by avoidance.
                    self.rollbacks += 1
                    version = self.deployment.version
                    self._reset()
                    return ("rollback",
                            f"canary starved on {version!r}: no "
                            f"traffic reached the staged zone in "
                            f"{baked * 1000:.0f} ms")
                return None
        verdict = self._judge()
        if verdict is not None:
            self.rollbacks += 1
            version = self.deployment.version
            self._reset()
            return ("rollback",
                    f"canary regression on {version!r}: {verdict}")
        zone = self.zones[self.stage_index]
        detail = (f"canary healthy: unhealthy "
                  f"{self.canary.unhealthy_rate:.2f} vs baseline "
                  f"{self.baseline.unhealthy_rate:.2f}")
        self.stage_index += 1
        if self.stage_index >= len(self.zones):
            self.completed += 1
            self._reset()
            return ("done", zone, detail)
        # Next stage: fresh canary window, baseline keeps accumulating
        # so late stages still have an old-version yardstick.
        self.canary = CanaryStats()
        self.staged_pending = True
        return ("canary_pass", zone, detail)

    # -- judgement -----------------------------------------------------------

    def _judge(self) -> str | None:
        """The regression verdict for the current stage, or None."""
        config = self.config
        delta = self.canary.unhealthy_rate - self.baseline.unhealthy_rate
        if delta > config.max_unhealthy_delta:
            return (f"unhealthy rate {self.canary.unhealthy_rate:.2f} "
                    f"vs {self.baseline.unhealthy_rate:.2f}")
        canary_p99 = self.canary.p99_ms()
        baseline_p99 = self.baseline.p99_ms()
        bound = baseline_p99 * config.max_p99_ratio + config.p99_slack_ms
        if self.baseline.latencies_ms and canary_p99 > bound:
            return (f"p99 {canary_p99:.1f} ms vs baseline "
                    f"{baseline_p99:.1f} ms")
        return None

    def _reset(self) -> None:
        self.deployment = None
        self.zones = []
        self.stage_index = -1
        self.staged_pending = False
        self._stage_started_at = None
