"""Active health probing: probe-driven ejection and reinstatement.

The load balancer's routing weights react to what servers *report*
(EWMA latency, breaker state) — but a server the balancer cannot reach
reports nothing. An ``lb_blackhole`` fault is exactly that failure
mode: requests sent down the link vanish, the server itself is
healthy, and no passive signal ever fires. Active probing closes the
loop: the prober pings every probeable server on a fixed cadence from
the *balancer's* vantage point, so a silent link failure looks like a
dead server and gets the same remedy.

* a probe succeeds when the server is reachable (no blackhole between
  the balancer and it) **and** has serving capacity right now (at
  least one replica whose breaker is not hard-open);
* ``eject_threshold`` consecutive probe failures eject the server:
  the fleet takes it out of rotation and re-routes its queued work;
* ``reinstate_threshold`` consecutive successes while ejected bring it
  back — ejection is a routing decision, not a death sentence.

The prober never calls ``breaker.available()`` (that transitions an
expired breaker to half-open as a side effect); it peeks at breaker
state read-only, so probing cannot perturb the serving path and chaos
runs stay deterministic whether or not probes happen to land between
batches.
"""

from __future__ import annotations

from dataclasses import dataclass

from .breaker import OPEN

__all__ = ["HealthConfig", "HealthProber"]


@dataclass(frozen=True)
class HealthConfig:
    """Knobs for :class:`HealthProber`.

    Args:
        interval_seconds: probe cadence on the fleet clock.
        eject_threshold: consecutive probe failures before a server is
            ejected from rotation.
        reinstate_threshold: consecutive probe successes before an
            ejected server rejoins.
    """

    interval_seconds: float = 0.01
    eject_threshold: int = 3
    reinstate_threshold: int = 2

    def __post_init__(self):
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be > 0")
        if self.eject_threshold < 1 or self.reinstate_threshold < 1:
            raise ValueError("thresholds must be >= 1")


def _has_capacity(server, now: float) -> bool:
    """Read-only capacity check: any replica not hard-open right now.

    Mirrors ``CircuitBreaker.available`` without its open->half-open
    side effect — probing must observe, never transition.
    """
    return any(r.breaker.state != OPEN or now >= r.breaker.open_until
               for r in server.replicas)


class HealthProber:
    """Fixed-cadence probing over the fleet's servers.

    :meth:`tick` is called once per fleet pump round; when a probe
    cycle is due it returns the actions the fleet should apply —
    ``("probe_fail", server, detail)``, ``("eject", server)``,
    ``("reinstate", server)`` — in deterministic server-id order.
    """

    def __init__(self, config: HealthConfig | None = None):
        self.config = config or HealthConfig()
        self.probes = 0
        self.failures: dict[int, int] = {}   #: consecutive probe failures
        self.successes: dict[int, int] = {}  #: consecutive (while ejected)
        self._next_at: float | None = None

    def next_wakeup(self, now: float) -> float:
        """When the next probe cycle runs (drain-loop pacing)."""
        if self._next_at is None:
            return now + self.config.interval_seconds
        return self._next_at

    def tick(self, now: float, servers, reachable) -> list[tuple]:
        """Run a probe cycle if one is due; returns fleet actions.

        ``servers`` are the fleet's probeable servers (active or
        ejected — down, draining, and retired servers are owned by
        other machinery); ``reachable(server)`` is the fleet's link
        predicate (False inside an ``lb_blackhole`` window).
        """
        if self._next_at is None:
            self._next_at = now + self.config.interval_seconds
            return []
        if now < self._next_at:
            return []
        self._next_at = now + self.config.interval_seconds
        actions: list[tuple] = []
        for server in sorted(servers, key=lambda s: s.server_id):
            sid = server.server_id
            self.probes += 1
            if reachable(server) and _has_capacity(server, now):
                self.failures[sid] = 0
                if server.ejected:
                    streak = self.successes.get(sid, 0) + 1
                    self.successes[sid] = streak
                    if streak >= self.config.reinstate_threshold:
                        self.successes[sid] = 0
                        actions.append(("reinstate", server))
                continue
            self.successes[sid] = 0
            streak = self.failures.get(sid, 0) + 1
            self.failures[sid] = streak
            why = ("unreachable" if not reachable(server)
                   else "no replica capacity")
            actions.append(("probe_fail", server,
                            f"{why} ({streak}/"
                            f"{self.config.eject_threshold})"))
            if streak >= self.config.eject_threshold \
                    and not server.ejected:
                self.failures[sid] = 0
                actions.append(("eject", server))
        return actions

    def forget(self, server_id: int) -> None:
        """Drop state for a retired/crashed server."""
        self.failures.pop(server_id, None)
        self.successes.pop(server_id, None)
