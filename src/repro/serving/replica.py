"""Serving replicas: forked sessions that degrade instead of dying.

Each replica owns a :meth:`~repro.framework.session.Session.fork` of the
model's session — same graph, same weights, isolated variable store,
random stream, and plan cache — plus two health mechanisms:

* a :class:`~repro.serving.breaker.CircuitBreaker` deciding *whether*
  the replica receives traffic, and
* the existing self-healing ladder
  (:class:`~repro.framework.session.HealingPolicy` over the replica's
  own session) deciding *how* it executes: a replica whose breaker
  trips on execution faults demotes ``full -> structural -> safe``
  instead of being discarded, serves its half-open probe at the safer
  tier, and earns its way back up after consecutive clean batches —
  with every step of the ladder emitted as
  :class:`~repro.framework.session.DegradationEvent` records.

Straggler trips (slow batches) intentionally do **not** demote: latency
is not a plan defect, so resting the replica behind its open breaker is
the whole remedy; lower tiers would only make it slower.

A *crash* (:class:`~repro.framework.errors.ReplicaCrashError`) rebuilds
the session from the source model's current weights — the supervisor
restart — while preserving the degradation tier the replica had earned,
so a flapping replica does not reset its own ladder.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.framework.errors import ExecutionError, ReplicaCrashError
from repro.framework.session import HealingConfig, HealingPolicy

from .breaker import BreakerConfig, CircuitBreaker

#: EWMA smoothing for the per-replica batch-latency estimate
_LATENCY_ALPHA = 0.3


class Replica:
    """One serving replica: a forked session behind a breaker."""

    def __init__(self, model, replica_id: int,
                 breaker_config: BreakerConfig | None = None,
                 healing_config: HealingConfig | None = None,
                 sink=None, on_transition=None):
        self.model = model
        self.replica_id = replica_id
        self._sink = sink
        self._healing_config = healing_config or HealingConfig()
        self.session = model.session.fork(seed=1000 + replica_id)
        self.healing = HealingPolicy(self.session, self._healing_config,
                                     sink=sink)
        self.breaker = CircuitBreaker(breaker_config,
                                      on_transition=on_transition)
        #: EWMA of recent batch latencies (seconds); None until measured
        self.ewma_latency: float | None = None
        self.batches = 0
        self.failures = 0
        self.restarts = 0

    # -- identity ----------------------------------------------------------

    @property
    def tier(self) -> str:
        """The replica's current execution tier (full/structural/safe)."""
        return self.session.execution_tier

    def __repr__(self) -> str:
        return (f"<Replica {self.replica_id} tier={self.tier!r} "
                f"breaker={self.breaker.state!r} batches={self.batches}>")

    # -- execution ---------------------------------------------------------

    def run_batch(self, batch_feed: dict[Any, np.ndarray],
                  clock=None) -> tuple[np.ndarray, float]:
        """Execute one inference batch; returns (output, seconds).

        Timing uses the caller's clock so virtual-clock tests see
        deterministic latencies (0 plus whatever injected stalls
        advanced the clock).
        """
        import time
        now = clock or time.monotonic
        start = now()
        output = self.session.run([self.model.inference_output],
                                  feed_dict=batch_feed)[0]
        elapsed = now() - start
        self.batches += 1
        return output, elapsed

    def observe_latency(self, seconds: float) -> None:
        if self.ewma_latency is None:
            self.ewma_latency = seconds
        else:
            self.ewma_latency += _LATENCY_ALPHA * (seconds
                                                   - self.ewma_latency)

    # -- health ------------------------------------------------------------

    def on_success(self, step: int, now: float) -> None:
        """A clean batch: close the breaker path, climb the ladder."""
        self.breaker.record_success(now)
        self.healing.on_success(step)

    def on_error(self, exc: Exception, step: int, now: float) -> bool:
        """An execution fault: blame-localize, maybe demote; count for
        the breaker. Returns True when the breaker tripped."""
        self.failures += 1
        acted = False
        if isinstance(exc, ExecutionError):
            acted = self.healing.on_failure(exc, step)
        tripped = self.breaker.record_failure(now)
        if tripped and not acted and not self.session.safe_mode:
            # Degrade-don't-die: a tripped breaker costs a tier even when
            # the healing policy's own counter hasn't fired yet — but at
            # most one tier per failure.
            blamed = getattr(exc, "blamed_op", None) \
                or getattr(exc, "op_name", None) or f"replica:{self.replica_id}"
            self.healing.demote(step, blamed)
        return tripped

    def on_slow(self, step: int, now: float, detail: str = "") -> bool:
        """A straggling batch: breaker-only failure (no tier demotion)."""
        self.failures += 1
        return self.breaker.record_failure(now)

    def on_crash(self, exc: ReplicaCrashError, step: int,
                 now: float) -> None:
        """A dead replica: hard-trip the breaker and rebuild the session.

        The restarted session inherits the source model's *current*
        weights and the replica's earned degradation tier (safe mode and
        quarantined passes survive the restart).
        """
        self.failures += 1
        self.restarts += 1
        self.breaker.trip(now, f"replica crash: {exc}")
        old = self.session
        self.session = self.model.session.fork(
            seed=1000 + self.replica_id + 7919 * self.restarts)
        self.session.safe_mode = old.safe_mode
        self.session.quarantine = old.quarantine
        self.healing = HealingPolicy(self.session, self._healing_config,
                                     sink=self._sink)
