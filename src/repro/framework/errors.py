"""Exception hierarchy for the repro dataflow framework.

Every error raised by the framework derives from :class:`FrameworkError`,
so callers can catch framework problems without catching unrelated bugs.
"""

from __future__ import annotations


class FrameworkError(Exception):
    """Base class for all errors raised by ``repro.framework``."""


class ShapeError(FrameworkError):
    """Raised when operation input shapes are incompatible.

    Shape inference happens at graph-construction time, mirroring the
    static-shape checking of the original TensorFlow v0.8 runtime the
    paper used.
    """


class GraphError(FrameworkError):
    """Raised for structural graph problems (cycles, cross-graph edges)."""


class ExecutionError(FrameworkError):
    """Raised when an operation fails while executing.

    Wraps the underlying exception (chained via ``raise ... from exc``)
    and records which operation failed — plus the shapes of its inputs —
    so profiling sessions can attribute failures to model features and
    recovery logs stay debuggable.

    Attributes:
        op_name: name of the failing operation.
        input_shapes: the static shapes of the op's inputs, when known.
        transient: True for failures that are expected to succeed on
            retry (e.g. injected chaos faults); the resilient runner
            only retries transient errors unless configured otherwise.
        provenance: for failures inside a *synthesized* plan step (a
            folded constant, a fused LSTM cell), the names of the
            source-graph operations the step replaced, originating op
            first. Empty for ordinary steps.
        origin_pass: the compiler pass that synthesized the failing
            step (``"fold"``, ``"fuse"``), or None for original ops.
    """

    def __init__(self, op_name: str, message: str,
                 input_shapes: tuple | list | None = None,
                 transient: bool = False,
                 provenance: tuple | list = (),
                 origin_pass: str | None = None):
        self._message = message
        self.op_name = op_name
        self.input_shapes = tuple(tuple(shape)
                                  for shape in input_shapes or ())
        self.transient = transient
        self.provenance = tuple(provenance)
        self.origin_pass = origin_pass
        super().__init__(self._detail())

    def _detail(self) -> str:
        detail = f"operation '{self.op_name}': {self._message}"
        if self.input_shapes:
            detail += " [input shapes: " + ", ".join(
                str(shape) for shape in self.input_shapes) + "]"
        if self.provenance:
            origin = f" by {self.origin_pass} pass" if self.origin_pass \
                else ""
            detail += (f" [synthesized{origin}, replacing: "
                       + ", ".join(self.provenance) + "]")
        return detail

    @property
    def blamed_op(self) -> str:
        """The source-graph operation this failure localizes to.

        For a synthesized step that is the first provenance entry (the
        originating op the rewrite replaced); otherwise the failing op
        itself.
        """
        return self.provenance[0] if self.provenance else self.op_name

    def attach_provenance(self, provenance: tuple | list,
                          origin_pass: str | None) -> None:
        """Late-bind blame links onto an error raised *inside* a step.

        Injected faults and guardrail violations are raised with only
        the (possibly synthesized) op name; the executor calls this to
        attach the plan step's provenance chain before propagating.
        """
        if self.provenance or not provenance:
            return
        self.provenance = tuple(provenance)
        self.origin_pass = origin_pass
        self.args = (self._detail(),)


class GuardrailViolation(ExecutionError):
    """Raised by the op-level numerical guardrail (see session docs).

    ``deoptimize_hint=True`` marks violations raised under the
    ``"deoptimize"`` policy: the healing policy treats them as a
    request to recompile at a safer tier rather than a hard failure.
    """

    def __init__(self, op_name: str, message: str,
                 deoptimize_hint: bool = False):
        super().__init__(op_name, message)
        self.deoptimize_hint = deoptimize_hint


class ServingError(FrameworkError):
    """Base class for errors raised by the inference-serving layer.

    See :mod:`repro.serving`. Deriving from :class:`FrameworkError`
    keeps the CLI's one-line error reporting uniform across training
    and serving entry points.
    """


class RequestRejected(ServingError):
    """A request was shed at admission (queue full / deadline hopeless).

    Attributes:
        reason: machine-readable shed reason (``"queue_full"`` or
            ``"deadline_unmeetable"``).
    """

    def __init__(self, message: str, reason: str = "queue_full"):
        super().__init__(message)
        self.reason = reason


class DeadlineExceededError(ServingError):
    """A request's reply could not be produced before its deadline."""


class ReplicaCrashError(ExecutionError):
    """A serving replica died mid-batch (injected or real).

    Unlike :class:`~repro.framework.faults.InjectedFault` this is *not*
    transient: the replica process is modeled as gone, so the server
    must fail over the in-flight batch to a healthy replica and restart
    the crashed one behind its circuit breaker.
    """

    def __init__(self, op_name: str, message: str,
                 injection_step: int | None = None):
        super().__init__(op_name, message, transient=False)
        self.injection_step = injection_step


class StorageError(FrameworkError):
    """Base class for errors raised by the blob-storage layer.

    See :mod:`repro.storage`. Lives here (like :class:`ServingError`)
    so the fault injector in :mod:`repro.framework.faults` can raise
    storage failures without importing the storage package.
    """


class StoreUnavailableError(StorageError):
    """A blob store refused every operation (outage, injected or real)."""


class StorageFullError(StorageError):
    """A blob store rejected a write for lack of space."""


class BlobNotFoundError(StorageError):
    """A requested blob does not exist (or is not yet visible).

    Attributes:
        key: the missing blob's key.
    """

    def __init__(self, message: str, key: str | None = None):
        super().__init__(message)
        self.key = key


class FeedError(FrameworkError):
    """Raised when a required placeholder is not fed or a feed is invalid."""


class DifferentiationError(FrameworkError):
    """Raised when a gradient is requested through a non-differentiable op."""
