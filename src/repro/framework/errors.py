"""Exception hierarchy for the repro dataflow framework.

Every error raised by the framework derives from :class:`FrameworkError`,
so callers can catch framework problems without catching unrelated bugs.
"""

from __future__ import annotations


class FrameworkError(Exception):
    """Base class for all errors raised by ``repro.framework``."""


class ShapeError(FrameworkError):
    """Raised when operation input shapes are incompatible.

    Shape inference happens at graph-construction time, mirroring the
    static-shape checking of the original TensorFlow v0.8 runtime the
    paper used.
    """


class GraphError(FrameworkError):
    """Raised for structural graph problems (cycles, cross-graph edges)."""


class ExecutionError(FrameworkError):
    """Raised when an operation fails while executing.

    Wraps the underlying exception (chained via ``raise ... from exc``)
    and records which operation failed — plus the shapes of its inputs —
    so profiling sessions can attribute failures to model features and
    recovery logs stay debuggable.

    Attributes:
        op_name: name of the failing operation.
        input_shapes: the static shapes of the op's inputs, when known.
        transient: True for failures that are expected to succeed on
            retry (e.g. injected chaos faults); the resilient runner
            only retries transient errors unless configured otherwise.
    """

    def __init__(self, op_name: str, message: str,
                 input_shapes: tuple | list | None = None,
                 transient: bool = False):
        detail = f"operation '{op_name}': {message}"
        shapes = tuple(tuple(shape) for shape in input_shapes or ())
        if shapes:
            detail += " [input shapes: " + ", ".join(
                str(shape) for shape in shapes) + "]"
        super().__init__(detail)
        self.op_name = op_name
        self.input_shapes = shapes
        self.transient = transient


class FeedError(FrameworkError):
    """Raised when a required placeholder is not fed or a feed is invalid."""


class DifferentiationError(FrameworkError):
    """Raised when a gradient is requested through a non-differentiable op."""
