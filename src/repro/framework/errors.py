"""Exception hierarchy for the repro dataflow framework.

Every error raised by the framework derives from :class:`FrameworkError`,
so callers can catch framework problems without catching unrelated bugs.
"""

from __future__ import annotations


class FrameworkError(Exception):
    """Base class for all errors raised by ``repro.framework``."""


class ShapeError(FrameworkError):
    """Raised when operation input shapes are incompatible.

    Shape inference happens at graph-construction time, mirroring the
    static-shape checking of the original TensorFlow v0.8 runtime the
    paper used.
    """


class GraphError(FrameworkError):
    """Raised for structural graph problems (cycles, cross-graph edges)."""


class ExecutionError(FrameworkError):
    """Raised when an operation fails while executing.

    Wraps the underlying exception and records which operation failed so
    profiling sessions can attribute failures to model features.
    """

    def __init__(self, op_name: str, message: str):
        super().__init__(f"operation '{op_name}': {message}")
        self.op_name = op_name


class FeedError(FrameworkError):
    """Raised when a required placeholder is not fed or a feed is invalid."""


class DifferentiationError(FrameworkError):
    """Raised when a gradient is requested through a non-differentiable op."""
