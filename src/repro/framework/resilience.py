"""Resilient training: retries, NaN guards, watchdog, checkpoint recovery.

The original TensorFlow design treats fault tolerance as a user-level
concern: checkpoint the variables, restart the computation, resume from
the last consistent state. :class:`ResilientRunner` brings that recipe
to the Fathom training loop:

* **Per-step rollback.** Before every training step the runner captures
  a :class:`~repro.framework.session.SessionSnapshot` (variables + RNG
  state) and samples the minibatch once. A failed attempt restores the
  snapshot and re-runs the *identical* step, so a recovered run is
  bit-for-bit equal to a fault-free run.
* **Bounded retry with backoff.** Transient
  :class:`~repro.framework.errors.ExecutionError`\\ s (e.g. injected
  chaos faults) are retried up to ``max_retries`` times with
  exponential backoff and seeded jitter — deterministic delays given the
  config seed.
* **NaN/Inf guard.** A non-finite training loss raises
  :class:`NonFiniteLossError`; the step is rolled back and retried, and
  if the loss is *persistently* non-finite the poisoned update is
  dropped (rollback-and-skip) instead of corrupting the parameters.
* **Watchdog.** Steps slower than ``watchdog_seconds`` emit a
  ``watchdog`` event so profiles can flag stragglers.
* **Periodic atomic checkpoints.** Every ``checkpoint_every`` steps the
  runner checkpoints (atomically, via :func:`repro.framework.checkpoint.
  save`) and keeps an in-memory last-good snapshot; when retries are
  exhausted it restores the last-good state and keeps training.

Every recovery action is emitted as a structured :class:`FailureEvent`
through the tracer hook, so :mod:`repro.profiling` can attribute time
lost to faults.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol

import numpy as np

from . import checkpoint as checkpoint_lib
from .clock import SystemClock
from .errors import ExecutionError, FrameworkError
from .session import (DegradationEvent, GuardrailPolicy, HealingConfig,
                      HealingPolicy)

if TYPE_CHECKING:  # pragma: no cover
    from .graph import Tensor
    from .session import Session


class NonFiniteLossError(FrameworkError):
    """Raised by the NaN/Inf guard when a training loss is not finite."""

    def __init__(self, step: int, value: float):
        super().__init__(
            f"non-finite training loss at step {step}: {value}")
        self.step = step
        self.value = value


@dataclass(frozen=True)
class FailureEvent:
    """One structured recovery action taken by the resilient runner.

    Kinds: ``retry`` (transient op failure rolled back and retried),
    ``nan_rollback`` (non-finite loss rolled back and retried), ``skip``
    (persistently poisoned step dropped), ``restore`` (last-good
    checkpoint restored after retries were exhausted), ``watchdog``
    (step exceeded its wall-clock budget), ``checkpoint`` (periodic
    checkpoint written), ``checkpoint_failed`` (a durable checkpoint
    missed its write quorum; training continued), ``resume`` (training
    resumed from a checkpoint file or the replicated store).
    """

    step: int
    kind: str
    op_name: str | None = None
    attempt: int = 0
    seconds_lost: float = 0.0
    detail: str = ""

    def signature(self) -> tuple:
        """Timing-free identity, for determinism comparisons."""
        return (self.step, self.kind, self.op_name, self.attempt)


class EventSink(Protocol):
    """Tracers that also want recovery events implement ``record_event``."""

    def record_event(self, event: FailureEvent) -> None:  # pragma: no cover
        ...


class BackoffPolicy:
    """Deterministic exponential backoff with seeded jitter.

    The delay before retry ``attempt`` (0-based) is
    ``base * factor ** attempt``, scaled by ``1 +/- jitter`` drawn from
    a private generator seeded with ``(seed, spawn_key)`` — so two
    policies built from the same config produce identical delay
    sequences, and recovery traces reproduce run-to-run. Shared by the
    :class:`ResilientRunner` retry loop, the serving layer's circuit
    breakers (:mod:`repro.serving.breaker`), and the distributed
    runtime's retransmit loops (:mod:`repro.distributed`).

    When one config fans out across many workers, build each worker's
    policy with :meth:`for_worker` — the worker id becomes part of the
    spawn key, so the jitter streams are *independent* and a retry
    storm de-synchronizes instead of having every worker sleep the
    identical jittered delay and stampede the network in lockstep.
    """

    def __init__(self, base: float, factor: float = 2.0,
                 jitter: float = 0.1, seed: int = 0,
                 max_delay: float | None = None,
                 spawn_key: int | tuple[int, ...] = 0xB0FF):
        self.base = base
        self.factor = factor
        self.jitter = jitter
        self.max_delay = max_delay
        if isinstance(spawn_key, int):
            spawn_key = (spawn_key,)
        self._rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=tuple(spawn_key)))
        #: every jittered delay drawn, for reproducibility assertions
        self.delays: list[float] = []

    @classmethod
    def for_worker(cls, worker_id: int, base: float, factor: float = 2.0,
                   jitter: float = 0.1, seed: int = 0,
                   max_delay: float | None = None) -> "BackoffPolicy":
        """A policy whose jitter stream is private to ``worker_id``.

        Two workers built from the same config draw *different* (but
        individually reproducible) delay sequences; the same worker id
        always reproduces the same stream.
        """
        return cls(base=base, factor=factor, jitter=jitter, seed=seed,
                   max_delay=max_delay,
                   spawn_key=(0xB0FF, int(worker_id) + 1))

    def delay(self, attempt: int) -> float:
        delay = self.base * self.factor ** attempt
        if delay <= 0.0:
            return 0.0
        if self.jitter:
            swing = float(self._rng.uniform(-1.0, 1.0))
            delay *= 1.0 + self.jitter * swing
        delay = max(0.0, delay)
        if self.max_delay is not None:
            delay = min(delay, self.max_delay)
        self.delays.append(delay)
        return delay


@dataclass(frozen=True)
class ResilienceConfig:
    """Policy knobs for :class:`ResilientRunner`.

    Args:
        max_retries: failed-step re-executions before giving up.
        backoff_base: first retry delay in seconds (0 disables sleeping).
        backoff_factor: multiplier applied per additional attempt.
        backoff_jitter: +/- fraction of jitter drawn from a generator
            seeded with ``seed`` — deterministic across identical runs.
        nan_guard: enable the non-finite-loss guard.
        check_numerics: run steps under ``Session.run(check_numerics=
            True)`` so the *first offending op* is named (slower).
        retry_all_execution_errors: retry every ExecutionError, not just
            those flagged ``transient``.
        checkpoint_path: where periodic checkpoints are written (``None``
            keeps last-good state in memory only).
        checkpoint_store: a :class:`repro.storage.
            ReplicatedCheckpointStore` periodic checkpoints are
            quorum-written to instead of (or alongside) the file path —
            the durable option: replicated, digest-verified,
            self-scrubbing. A failed quorum is a recoverable event
            (training continues; the checkpoint is just not durable).
        checkpoint_every: checkpoint cadence in steps (0 disables).
        watchdog_seconds: per-step wall-clock budget (None disables).
        resume_from: checkpoint file restored before the first step —
            or, with a ``checkpoint_store``, the string ``"latest"`` to
            restore the newest intact archived checkpoint.
        healing: enable self-healing (``True`` for
            :class:`~repro.framework.session.HealingConfig` defaults, or
            a config instance): plan-step failures are blame-localized
            and repeated offenders trigger tiered de-optimization and
            pass quarantine instead of blind same-plan retries.
        guardrails: a :class:`~repro.framework.session.GuardrailPolicy`
            (or policy name) applied to every ``Session.run`` the runner
            issues — op-level NaN/Inf/overflow screening.
    """

    max_retries: int = 2
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1
    seed: int = 0
    nan_guard: bool = True
    check_numerics: bool = False
    retry_all_execution_errors: bool = False
    checkpoint_path: str | os.PathLike | None = None
    checkpoint_store: Any = None
    checkpoint_every: int = 0
    watchdog_seconds: float | None = None
    resume_from: str | os.PathLike | None = None
    healing: HealingConfig | bool | None = None
    guardrails: GuardrailPolicy | str | None = None


class TrainableModel(Protocol):
    """What the runner needs from a workload (FathomModel satisfies it)."""

    session: "Session"
    loss: "Tensor"
    train_step: "Tensor"

    def sample_feed(self, training: bool = True) -> dict:  # pragma: no cover
        ...


class ResilientRunner:
    """Drives a workload's training loop with fault recovery.

    Used by :meth:`repro.workloads.base.FathomModel.run_training` when a
    :class:`ResilienceConfig` is supplied; can also be constructed
    directly for access to the recorded :attr:`events`.
    """

    #: the fault family this harness accepts via :meth:`install_faults`
    #: (the campaign engine's uniform adapter surface; see repro.chaos)
    FAULT_FAMILY = "op"

    def __init__(self, model: TrainableModel,
                 config: ResilienceConfig | None = None,
                 tracer: Any | None = None, clock: Any | None = None):
        self.model = model
        self.config = config or ResilienceConfig()
        self.tracer = tracer
        # All step/attempt timing and backoff sleeping flows through an
        # injectable clock (now()/sleep()), matching the serving path's
        # design — so chaos runs under a VirtualClock are fully
        # deterministic: watchdog verdicts and seconds_lost become exact
        # functions of the fault schedule instead of wall-clock noise.
        self.clock = clock if clock is not None else SystemClock()
        #: every recovery action taken, in order
        self.events: list[FailureEvent] = []
        #: every self-healing action taken (tier drops, quarantines,
        #: re-escalations), in order; empty unless ``healing`` is set
        self.degradations: list[DegradationEvent] = []
        self.guardrails = GuardrailPolicy.coerce(self.config.guardrails)
        healing_config = HealingConfig.coerce(self.config.healing)
        self.healing: HealingPolicy | None = (
            HealingPolicy(model.session, healing_config,
                          sink=self._emit_degradation)
            if healing_config is not None else None)
        # Dedicated jitter stream (decorrelated from the session RNG by
        # the spawn key), so recovery traces reproduce run-to-run.
        self._backoff = BackoffPolicy(
            base=self.config.backoff_base,
            factor=self.config.backoff_factor,
            jitter=self.config.backoff_jitter, seed=self.config.seed)
        self._last_good: tuple[int, Any] | None = None

    @property
    def backoff_delays(self) -> list[float]:
        """Every jittered delay drawn, for reproducibility assertions."""
        return self._backoff.delays

    # -- fault arming (campaign adapter surface) ---------------------------

    def install_faults(self, plan) -> None:
        """Arm an op-level :class:`~repro.framework.faults.FaultPlan`.

        Mirrors ``InferenceServer.install_faults`` so the chaos campaign
        engine drives every harness through one surface; the injector is
        reachable as ``model.session.fault_injector`` afterwards.
        """
        self.model.session.fault_injector = plan.injector()

    def uninstall_faults(self) -> None:
        self.model.session.fault_injector = None

    # -- events ------------------------------------------------------------

    def _emit(self, event: FailureEvent) -> None:
        self.events.append(event)
        record = getattr(self.tracer, "record_event", None)
        if record is not None:
            record(event)

    def event_signatures(self) -> tuple:
        """Timing-free event sequence, for determinism assertions."""
        return tuple(event.signature() for event in self.events)

    def _emit_degradation(self, event: DegradationEvent) -> None:
        self.degradations.append(event)
        record = getattr(self.tracer, "record_event", None)
        if record is not None:
            record(event)

    def degradation_signatures(self) -> tuple:
        """Timing-free healing-event sequence, for determinism assertions."""
        return tuple(event.signature() for event in self.degradations)

    # -- retry policy ------------------------------------------------------

    def backoff_delay(self, attempt: int) -> float:
        """Deterministic exponential backoff with seeded jitter.

        ``attempt`` is 0-based: the delay before the first retry is
        ``backoff_base``, the next ``backoff_base * backoff_factor``, ...
        """
        return self._backoff.delay(attempt)

    def _retryable(self, exc: Exception) -> bool:
        if isinstance(exc, NonFiniteLossError):
            return True
        if self.healing is not None and isinstance(exc, ExecutionError):
            # Under healing every plan-step failure is worth a retry:
            # the policy may have just recompiled at a safer tier, so
            # re-running the same step is not "blind".
            return True
        return (self.config.retry_all_execution_errors
                or getattr(exc, "transient", False))

    # -- the training loop -------------------------------------------------

    def run(self, steps: int) -> list[float]:
        """Run ``steps`` training steps, surviving recoverable failures.

        Returns per-step losses; a skipped step contributes ``nan``.
        """
        session = self.model.session
        config = self.config
        if config.resume_from is not None:
            if config.checkpoint_store is not None \
                    and config.resume_from == "latest":
                record = config.checkpoint_store.restore(session)
                self._emit(FailureEvent(
                    step=-1, kind="resume",
                    detail=f"restored checkpoint {record.checkpoint_id} "
                           f"from the replicated store "
                           f"(digest {record.digest[:12]}…)"))
            else:
                restored = checkpoint_lib.restore(session,
                                                  config.resume_from)
                self._emit(FailureEvent(
                    step=-1, kind="resume",
                    detail=f"restored {len(restored)} variables from "
                           f"{os.fspath(config.resume_from)}"))
        losses: list[float] = []
        for step in range(steps):
            feed = self.model.sample_feed(training=True)
            snapshot = session.state_snapshot()
            step_start = self.clock.now()
            losses.append(self._run_step(step, feed, snapshot))
            elapsed = self.clock.now() - step_start
            if (config.watchdog_seconds is not None
                    and elapsed > config.watchdog_seconds):
                self._emit(FailureEvent(
                    step=step, kind="watchdog",
                    seconds_lost=elapsed - config.watchdog_seconds,
                    detail=f"step took {elapsed:.4f}s "
                           f"(budget {config.watchdog_seconds:.4f}s)"))
            if config.checkpoint_every and \
                    (step + 1) % config.checkpoint_every == 0:
                self._checkpoint(step)
        return losses

    def _run_step(self, step: int, feed: dict, snapshot) -> float:
        """Execute one step with rollback/retry; returns its loss."""
        session = self.model.session
        config = self.config
        attempt = 0
        while True:
            attempt_start = self.clock.now()
            try:
                loss_value, _ = session.run(
                    [self.model.loss, self.model.train_step],
                    feed_dict=feed, tracer=self.tracer,
                    check_numerics=config.check_numerics,
                    guardrails=self.guardrails)
                loss_value = float(np.asarray(loss_value))
                if config.nan_guard and not math.isfinite(loss_value):
                    raise NonFiniteLossError(step, loss_value)
                if self.healing is not None:
                    self.healing.on_success(step)
                return loss_value
            except (ExecutionError, NonFiniteLossError) as exc:
                lost = self.clock.now() - attempt_start
                if self.healing is not None \
                        and isinstance(exc, ExecutionError):
                    # Blame-localize and maybe demote/quarantine before
                    # deciding whether (and how) to retry.
                    self.healing.on_failure(exc, step)
                if not self._retryable(exc):
                    return self._unrecoverable(step, exc, attempt, lost)
                if attempt < config.max_retries:
                    session.restore_snapshot(snapshot)
                    kind = ("nan_rollback"
                            if isinstance(exc, NonFiniteLossError)
                            else "retry")
                    attempt += 1
                    self._emit(FailureEvent(
                        step=step, kind=kind,
                        op_name=getattr(exc, "op_name", None),
                        attempt=attempt, seconds_lost=lost,
                        detail=str(exc)))
                    delay = self.backoff_delay(attempt - 1)
                    if delay:
                        self.clock.sleep(delay)
                    continue
                if isinstance(exc, NonFiniteLossError):
                    # Persistently poisoned step: drop the update rather
                    # than corrupt the parameters (rollback-and-skip).
                    session.restore_snapshot(snapshot)
                    self._emit(FailureEvent(
                        step=step, kind="skip", attempt=attempt,
                        seconds_lost=lost, detail=str(exc)))
                    return math.nan
                return self._unrecoverable(step, exc, attempt, lost)

    def _unrecoverable(self, step: int, exc: Exception, attempt: int,
                       lost: float) -> float:
        """Restore the last-good checkpoint state, or re-raise."""
        if self._last_good is None:
            raise exc
        good_step, good_snapshot = self._last_good
        self.model.session.restore_snapshot(good_snapshot)
        self._emit(FailureEvent(
            step=step, kind="restore",
            op_name=getattr(exc, "op_name", None), attempt=attempt,
            seconds_lost=lost,
            detail=f"restored last-good state from step {good_step} "
                   f"after: {exc}"))
        return math.nan

    def _checkpoint(self, step: int) -> None:
        config = self.config
        detail = "in-memory"
        durable_failed = False
        if config.checkpoint_store is not None:
            from .errors import StorageError
            try:
                record = config.checkpoint_store.save(
                    self.model.session, step=step)
            except StorageError as exc:
                # Not durable this round — keep training; the next
                # cadence tick tries again with a fresh id.
                durable_failed = True
                self._emit(FailureEvent(
                    step=step, kind="checkpoint_failed",
                    detail=f"durable checkpoint missed quorum: {exc}"))
            else:
                detail = (f"store checkpoint {record.checkpoint_id} "
                          f"({record.replicas} replicas)")
        if config.checkpoint_path is not None:
            checkpoint_lib.save(self.model.session, config.checkpoint_path)
            detail = os.fspath(config.checkpoint_path)
        # The in-memory snapshot still lands either way (it backs retry
        # rollback), but a failed durable write is not narrated as a
        # successful checkpoint.
        self._last_good = (step, self.model.session.state_snapshot())
        if not durable_failed:
            self._emit(FailureEvent(step=step, kind="checkpoint",
                                    detail=detail))
