"""Analytic work estimates for dataflow operations.

Each operation in the framework can describe the work it performs as a
:class:`WorkEstimate`: floating-point operations, bytes moved through the
memory system, and the *trip count* — the number of independent iterations
available for intra-op parallelism. The device models in
:mod:`repro.framework.device_model` convert these estimates into modeled
execution times for CPUs with varying thread counts and for a GPU.

This is the substitution for the paper's measured Eigen/cuDNN backends: the
paper's parallelism results (Fig. 6) hinge on the observation that large
dense operations scale with threads while small, skinny-tensor operations
do not. Trip counts capture exactly that property.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Iterable


@dataclass(frozen=True)
class WorkEstimate:
    """Work performed by a single execution of one operation.

    Attributes:
        flops: Floating-point operations (multiply-adds count as two).
        bytes_moved: Bytes read from plus written to memory.
        trip_count: Independent parallel iterations available. A matrix
            multiply of an ``(m, k) @ (k, n)`` pair has ``m * n`` independent
            output elements; an elementwise op has one per element; a
            data-dependent scalar update has 1.
    """

    flops: float
    bytes_moved: float
    trip_count: float

    def __add__(self, other: "WorkEstimate") -> "WorkEstimate":
        return WorkEstimate(
            flops=self.flops + other.flops,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            trip_count=max(self.trip_count, other.trip_count),
        )

    @staticmethod
    def zero() -> "WorkEstimate":
        return WorkEstimate(flops=0.0, bytes_moved=0.0, trip_count=1.0)


ELEMENT_BYTES = 4  # the framework computes in float32, as the paper's models did


def num_elements(shape: Iterable[int]) -> int:
    """Number of elements in a tensor of the given shape (1 for scalars)."""
    return int(prod(shape, start=1))


def elementwise_work(shape: Iterable[int], n_inputs: int = 2,
                     flops_per_element: float = 1.0) -> WorkEstimate:
    """Work for an elementwise op over ``shape`` with ``n_inputs`` operands."""
    n = num_elements(shape)
    return WorkEstimate(
        flops=flops_per_element * n,
        bytes_moved=ELEMENT_BYTES * n * (n_inputs + 1),
        trip_count=float(n),
    )


def matmul_work(m: int, k: int, n: int) -> WorkEstimate:
    """Work for an ``(m, k) @ (k, n)`` dense matrix multiplication."""
    return WorkEstimate(
        flops=2.0 * m * k * n,
        bytes_moved=ELEMENT_BYTES * (m * k + k * n + m * n),
        trip_count=float(m * n),
    )


def conv2d_work(batch: int, out_h: int, out_w: int, out_c: int,
                filter_h: int, filter_w: int, in_c: int) -> WorkEstimate:
    """Work for a 2-D convolution producing ``batch x out_h x out_w x out_c``."""
    outputs = batch * out_h * out_w * out_c
    flops_per_output = 2.0 * filter_h * filter_w * in_c
    in_bytes = ELEMENT_BYTES * batch * out_h * out_w * filter_h * filter_w * in_c
    filter_bytes = ELEMENT_BYTES * filter_h * filter_w * in_c * out_c
    out_bytes = ELEMENT_BYTES * outputs
    return WorkEstimate(
        flops=flops_per_output * outputs,
        bytes_moved=float(in_bytes + filter_bytes + out_bytes),
        trip_count=float(outputs),
    )


def reduction_work(in_shape: Iterable[int], out_shape: Iterable[int]) -> WorkEstimate:
    """Work for a reduction from ``in_shape`` down to ``out_shape``.

    The trip count is the number of independent *outputs*: reducing a wide
    tensor to a scalar has trip count 1 regardless of input size, which is
    what makes loss-style reductions poor parallelism targets.
    """
    n_in = num_elements(in_shape)
    n_out = num_elements(out_shape)
    return WorkEstimate(
        flops=float(n_in),
        bytes_moved=ELEMENT_BYTES * float(n_in + n_out),
        trip_count=float(max(n_out, 1)),
    )


def data_movement_work(in_elements: int, out_elements: int | None = None) -> WorkEstimate:
    """Work for a copy/layout-change op: no FLOPs, pure memory traffic."""
    if out_elements is None:
        out_elements = in_elements
    return WorkEstimate(
        flops=0.0,
        bytes_moved=ELEMENT_BYTES * float(in_elements + out_elements),
        trip_count=float(max(out_elements, 1)),
    )
