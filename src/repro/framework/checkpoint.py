"""Variable checkpointing: save and restore session state.

The Fathom workloads are long-running training jobs; checkpointing lets
an experiment pause/resume and lets the examples ship trained weights.
Checkpoints are plain ``.npz`` archives keyed by variable operation name,
so they are portable across sessions over the same graph (and across
graphs that define identically-named, identically-shaped variables).
"""

from __future__ import annotations

import os
import tempfile
import zipfile

import numpy as np

from .errors import FrameworkError
from .graph import Graph
from .ops.state_ops import VariableOp
from .session import Session


class CheckpointError(FrameworkError):
    """Raised when a checkpoint cannot be applied to a graph/session."""


def _graph_variables(graph: Graph) -> dict[str, VariableOp]:
    return {op.name: op for op in graph.operations
            if isinstance(op, VariableOp)}


def save(session: Session, path: str | os.PathLike) -> list[str]:
    """Write every variable's current value to ``path`` (.npz).

    Variables that were never touched are saved at their initial values.
    Returns the saved variable names.

    The write is *atomic*: the archive is first written to a temporary
    file in the same directory and then moved into place with
    :func:`os.replace`, so a crash mid-save can never leave a truncated
    or corrupt checkpoint behind — the previous checkpoint (if any)
    survives untouched.
    """
    variables = _graph_variables(session.graph)
    arrays = {name: session.variable_value(op.output)
              for name, op in variables.items()}
    final = os.fspath(path)
    if not final.endswith(".npz"):  # np.savez's own suffix convention
        final += ".npz"
    directory = os.path.dirname(final) or "."
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(final) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return sorted(arrays)


def restore(session: Session, path: str | os.PathLike,
            strict: bool = True) -> list[str]:
    """Load variable values from ``path`` into ``session``.

    Args:
        strict: if True (default), every graph variable must be present
            in the checkpoint and vice versa; if False, restore the
            intersection.

    Returns the restored variable names.
    """
    variables = _graph_variables(session.graph)
    try:
        with np.load(path) as archive:
            stored = {name: archive[name] for name in archive.files}
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"cannot read checkpoint {os.fspath(path)!r}: {exc}") from exc
    missing = sorted(set(variables) - set(stored))
    unexpected = sorted(set(stored) - set(variables))
    if strict and (missing or unexpected):
        raise CheckpointError(
            f"checkpoint mismatch: missing={missing[:5]} "
            f"unexpected={unexpected[:5]}")
    restored = []
    for name in sorted(set(variables) & set(stored)):
        op = variables[name]
        value = stored[name]
        if value.shape != op.output.shape:
            raise CheckpointError(
                f"variable {name!r}: checkpoint shape {value.shape} != "
                f"graph shape {op.output.shape}")
        session.set_variable(op.output, value)
        restored.append(name)
    return restored
