"""Variable checkpointing: save and restore session state.

The Fathom workloads are long-running training jobs; checkpointing lets
an experiment pause/resume and lets the examples ship trained weights.
Checkpoints are plain ``.npz`` archives keyed by variable operation name,
so they are portable across sessions over the same graph (and across
graphs that define identically-named, identically-shaped variables).

Integrity: every save records a CRC32 checksum per variable payload
(under a reserved archive key); restore verifies them and raises
:class:`CheckpointCorruptError` naming the offending variable when a
payload was corrupted after save. Checkpoints written before checksums
existed still restore (no checksum table, nothing to verify).

The archive format is available in two transports: files
(:func:`save` / :func:`restore`, atomic temp-and-rename writes) and raw
bytes (:func:`save_bytes` / :func:`restore_bytes`) — the latter is what
:mod:`repro.storage` replicates, digests, and scrubs across blob stores.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import zipfile
import zlib

import numpy as np

from .errors import FrameworkError
from .graph import Graph
from .ops.state_ops import VariableOp
from .session import Session

#: reserved archive key holding the JSON {variable: crc32} map
_CHECKSUM_KEY = "__repro_crc32__"


class CheckpointError(FrameworkError):
    """Raised when a checkpoint cannot be applied to a graph/session."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint payload failed its integrity check.

    Raised (chained to the underlying decode error, when there is one)
    with the offending variable's name when a stored array cannot be
    decoded or its CRC32 checksum does not match the value recorded at
    save time — so a bad disk or a truncated copy surfaces as a
    diagnosable checkpoint problem instead of a numpy stack trace.

    Attributes:
        variable: name of the corrupt variable, when localized.
    """

    def __init__(self, message: str, variable: str | None = None):
        super().__init__(message)
        self.variable = variable


def _array_crc32(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def _graph_variables(graph: Graph) -> dict[str, VariableOp]:
    return {op.name: op for op in graph.operations
            if isinstance(op, VariableOp)}


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The bytes land in a temporary file in the target directory, are
    fsynced, and are moved into place in one step — so a crash mid-write
    can never leave a truncated or corrupt file behind, and the previous
    contents (if any) survive untouched. The temporary file is removed
    in a ``finally`` whenever the rename did not happen, whatever the
    interrupting exception was.
    """
    final = os.fspath(path)
    directory = os.path.dirname(final) or "."
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(final) + ".",
                               suffix=".tmp")
    committed = False
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        committed = True
    finally:
        if not committed:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def _archive_arrays(session: Session) -> dict[str, np.ndarray]:
    """Every variable's current value plus the CRC32 checksum payload."""
    variables = _graph_variables(session.graph)
    arrays = {name: session.variable_value(op.output)
              for name, op in variables.items()}
    # Per-variable CRC32 checksums, stored as a reserved JSON payload in
    # the archive and verified on restore (see CheckpointCorruptError).
    checksums = {name: _array_crc32(value)
                 for name, value in arrays.items()}
    arrays[_CHECKSUM_KEY] = np.frombuffer(
        json.dumps(checksums, sort_keys=True).encode("utf-8"),
        dtype=np.uint8).copy()
    return arrays


def save_bytes(session: Session) -> bytes:
    """Serialize every variable's current value to ``.npz`` bytes.

    Same archive format as :func:`save`, minus the filesystem: the
    returned bytes restore through :func:`restore_bytes` (or any
    file-based restore after being written out verbatim).
    """
    buffer = io.BytesIO()
    np.savez(buffer, **_archive_arrays(session))
    return buffer.getvalue()


def save(session: Session, path: str | os.PathLike) -> list[str]:
    """Write every variable's current value to ``path`` (.npz).

    Variables that were never touched are saved at their initial values.
    Returns the saved variable names.

    The write is *atomic* (see :func:`atomic_write_bytes`): a crash
    mid-save can never leave a truncated or corrupt checkpoint behind —
    the previous checkpoint (if any) survives untouched, and the
    temporary file is cleaned up.
    """
    arrays = _archive_arrays(session)
    final = os.fspath(path)
    if not final.endswith(".npz"):  # np.savez's own suffix convention
        final += ".npz"
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    atomic_write_bytes(final, buffer.getvalue())
    return sorted(name for name in arrays if name != _CHECKSUM_KEY)


def _read_archive(source, label: str) -> dict[str, np.ndarray]:
    """Decode an ``.npz`` archive (path or file-like) member by member.

    Localizes a single undecodable member to its variable name instead
    of surfacing the numpy decode error.
    """
    try:
        with np.load(source) as archive:
            names = list(archive.files)
            stored = {}
            for name in names:
                try:
                    stored[name] = archive[name]
                except (OSError, ValueError, zipfile.BadZipFile,
                        EOFError) as exc:
                    raise CheckpointCorruptError(
                        f"checkpoint {label!r}: variable "
                        f"{name!r} cannot be decoded: {exc}",
                        variable=name) from exc
    except CheckpointCorruptError:
        raise
    except (OSError, ValueError, zipfile.BadZipFile, EOFError) as exc:
        raise CheckpointError(
            f"cannot read checkpoint {label!r}: {exc}") from exc
    return stored


def _apply_stored(session: Session, stored: dict[str, np.ndarray],
                  label: str, strict: bool) -> list[str]:
    """Verify checksums and load ``stored`` arrays into ``session``."""
    variables = _graph_variables(session.graph)
    checksums = None
    blob = stored.pop(_CHECKSUM_KEY, None)
    if blob is not None:
        try:
            checksums = json.loads(bytes(blob).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointCorruptError(
                f"checkpoint {label!r}: checksum table is "
                f"corrupt: {exc}", variable=_CHECKSUM_KEY) from exc
    if checksums is not None:
        # Archive self-consistency: the checksum table and the payloads
        # must describe the same variable set. A divergence means the
        # archive was assembled or damaged outside save() — name the
        # offending variable rather than failing on a confusing
        # missing/unexpected set difference against the graph below.
        unbacked = sorted(set(checksums) - set(stored))
        if unbacked:
            raise CheckpointCorruptError(
                f"checkpoint {label!r}: checksum table lists variable "
                f"{unbacked[0]!r} but the archive holds no such payload",
                variable=unbacked[0])
        unlisted = sorted(set(stored) - set(checksums))
        if unlisted:
            raise CheckpointCorruptError(
                f"checkpoint {label!r}: payload {unlisted[0]!r} is "
                f"missing from the checksum table",
                variable=unlisted[0])
    missing = sorted(set(variables) - set(stored))
    unexpected = sorted(set(stored) - set(variables))
    if strict and (missing or unexpected):
        raise CheckpointError(
            f"checkpoint mismatch: missing={missing[:5]} "
            f"unexpected={unexpected[:5]}")
    restored = []
    for name in sorted(set(variables) & set(stored)):
        op = variables[name]
        value = stored[name]
        if checksums is not None and name in checksums:
            actual = _array_crc32(value)
            if actual != checksums[name]:
                raise CheckpointCorruptError(
                    f"checkpoint {label!r}: variable {name!r} "
                    f"failed its CRC32 check (stored "
                    f"{checksums[name]:#010x}, computed {actual:#010x}); "
                    f"the payload was corrupted after save",
                    variable=name)
        if value.shape != op.output.shape:
            raise CheckpointError(
                f"variable {name!r}: checkpoint shape {value.shape} != "
                f"graph shape {op.output.shape}")
        session.set_variable(op.output, value)
        restored.append(name)
    return restored


def restore(session: Session, path: str | os.PathLike,
            strict: bool = True) -> list[str]:
    """Load variable values from ``path`` into ``session``.

    Args:
        strict: if True (default), every graph variable must be present
            in the checkpoint and vice versa; if False, restore the
            intersection.

    Returns the restored variable names.
    """
    label = os.fspath(path)
    stored = _read_archive(path, label)
    return _apply_stored(session, stored, label, strict)


def restore_bytes(session: Session, data: bytes, strict: bool = True,
                  source: str = "<bytes>") -> list[str]:
    """Load variable values from :func:`save_bytes` output.

    Args:
        source: label used in error messages (e.g. a blob key).

    Returns the restored variable names.
    """
    stored = _read_archive(io.BytesIO(data), source)
    return _apply_stored(session, stored, source, strict)
