"""Automatic LSTM fusion: a pattern-matching graph pass.

The fusion ablation (``benchmarks/bench_ablation_fusion.py``) shows that
replacing the composed ~16-primitive LSTM step with the fused
``LSTMBlockCell`` op removes most of a recurrent graph's dispatch cost.
This module does that substitution *automatically*: it pattern-matches
the exact operator tree :class:`repro.framework.rnn.LSTMCell` emits —

    gates = BiasAdd(MatMul(Concat([x, h]), kernel), bias)
    i, j, f, o = Slice(gates) x4
    new_c = c * sigmoid(f + forget_bias) + sigmoid(i) * tanh(j)
    new_h = tanh(new_c) * sigmoid(o)

— and transcribes each match into a single ``LSTMBlockCell`` node. A
match is only rewritten when every interior tensor is consumed inside
the pattern (so graphs that already had gradients taken, whose backward
ops read the gate activations, are left intact); fuse first, then call
``gradients`` — the fused op has its own fused backward.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graph import Graph, Operation, Tensor
from .ops.rnn_ops import LSTMBlockCellOp
from .ops.state_ops import Const
from .rewrite import RewriteResult, RewriteStats, _remap_attrs


@dataclass
class _LSTMMatch:
    """One recognized composed-LSTM step."""

    x: Tensor
    c: Tensor
    h: Tensor
    kernel: Tensor
    bias: Tensor
    forget_bias: float
    new_c: Tensor
    new_h: Tensor
    interior: set[int]  # ids of ops to be replaced
    anchor: Operation   # the new_c Add; the fused op is emitted here
    #: interior tensors that outside consumers *may* read without
    #: blocking fusion, because each is exactly recomputable from the
    #: fused op's outputs: the four activated gates ("i", "j", "f",
    #: "o") are H-wide column slices of the cached gates output,
    #: "tanh_c" is Tanh of the new_c output, and "joined" is
    #: Concat(x, h) over the match's own inputs. A training graph's
    #: backward pass reads precisely these six, which is why fusion
    #: historically never fired once gradients were taken.
    recoverable: dict = field(default_factory=dict)


def _op(tensor: Tensor) -> Operation:
    return tensor.op


def _is_type(tensor: Tensor, type_name: str) -> bool:
    return tensor.op.type_name == type_name


def _match_gate_slice(tensor: Tensor, hidden: int, index: int,
                      gates: Tensor) -> bool:
    """Is ``tensor`` the index-th H-wide axis-1 slice of ``gates``?"""
    if not _is_type(tensor, "Slice"):
        return False
    op = tensor.op
    if op.inputs[0] is not gates:
        return False
    begin, size = op.attrs["begin"], op.attrs["size"]
    return (begin[0] == 0 and begin[1] == index * hidden
            and size[1] == hidden)


def _match_cell(new_h_op: Operation) -> _LSTMMatch | None:
    """Try to recognize one LSTM step anchored at its new_h multiply."""
    if new_h_op.type_name != "Mul":
        return None
    operands = list(new_h_op.inputs)
    tanh_side = next((t for t in operands if _is_type(t, "Tanh")), None)
    sigmoid_o = next((t for t in operands if _is_type(t, "Sigmoid")), None)
    if tanh_side is None or sigmoid_o is None:
        return None
    new_c = _op(tanh_side).inputs[0]
    if not _is_type(new_c, "Add"):
        return None
    add_op = new_c.op
    muls = list(add_op.inputs)
    if not all(_is_type(t, "Mul") for t in muls):
        return None

    # One multiply is c * sigmoid(f + bias); the other sigmoid(i)*tanh(j).
    def decompose_forget(mul_tensor):
        a, b = mul_tensor.op.inputs
        for cell_t, gate_t in ((a, b), (b, a)):
            if not _is_type(gate_t, "Sigmoid"):
                continue
            pre = _op(gate_t).inputs[0]
            if not _is_type(pre, "Add"):
                continue
            left, right = pre.op.inputs
            for slice_t, const_t in ((left, right), (right, left)):
                if isinstance(const_t.op, Const) and \
                        _is_type(slice_t, "Slice"):
                    value = const_t.op.attrs["value"]
                    if value.ndim == 0:
                        return cell_t, slice_t, float(value), gate_t, \
                            {id(gate_t.op), id(pre.op), id(const_t.op)}
        return None

    def decompose_input(mul_tensor):
        a, b = mul_tensor.op.inputs
        for sig_t, tanh_t in ((a, b), (b, a)):
            if _is_type(sig_t, "Sigmoid") and _is_type(tanh_t, "Tanh"):
                i_slice = _op(sig_t).inputs[0]
                j_slice = _op(tanh_t).inputs[0]
                if _is_type(i_slice, "Slice") and _is_type(j_slice,
                                                           "Slice"):
                    return i_slice, j_slice, sig_t, tanh_t, \
                        {id(sig_t.op), id(tanh_t.op)}
        return None

    for forget_mul, input_mul in ((muls[0], muls[1]), (muls[1], muls[0])):
        forget = decompose_forget(forget_mul)
        gate_pair = decompose_input(input_mul)
        if forget is None or gate_pair is None:
            continue
        cell_t, f_slice, forget_bias, f_sigmoid, forget_ops = forget
        i_slice, j_slice, i_sigmoid, j_tanh, input_ops = gate_pair
        o_slice = _op(sigmoid_o).inputs[0]
        if not _is_type(o_slice, "Slice"):
            continue

        gates = f_slice.op.inputs[0]
        hidden = cell_t.shape[1]
        if gates.shape[1] != 4 * hidden:
            continue
        if not (_match_gate_slice(i_slice, hidden, 0, gates)
                and _match_gate_slice(j_slice, hidden, 1, gates)
                and _match_gate_slice(f_slice, hidden, 2, gates)
                and _match_gate_slice(o_slice, hidden, 3, gates)):
            continue
        if not _is_type(gates, "BiasAdd"):
            continue
        matmul_t, bias_t = gates.op.inputs
        if not _is_type(matmul_t, "MatMul"):
            continue
        matmul_op = matmul_t.op
        if matmul_op.attrs["transpose_a"] or matmul_op.attrs["transpose_b"]:
            continue
        joined_t, kernel_t = matmul_op.inputs
        if not _is_type(joined_t, "Concat") or \
                joined_t.op.attrs["axis"] != 1:
            continue
        concat_inputs = joined_t.op.inputs
        if len(concat_inputs) != 2:
            continue
        x_t, h_t = concat_inputs

        interior = {id(new_h_op), id(add_op), id(forget_mul.op),
                    id(input_mul.op), id(tanh_side.op), id(sigmoid_o.op),
                    id(i_slice.op), id(j_slice.op), id(f_slice.op),
                    id(o_slice.op), id(gates.op), id(matmul_op),
                    id(joined_t.op)}
        interior |= forget_ops | input_ops
        recoverable = {"i": i_sigmoid, "j": j_tanh, "f": f_sigmoid,
                       "o": sigmoid_o, "tanh_c": tanh_side,
                       "joined": joined_t}
        return _LSTMMatch(x=x_t, c=cell_t, h=h_t, kernel=kernel_t,
                          bias=bias_t, forget_bias=forget_bias,
                          new_c=new_c, new_h=new_h_op.outputs[0],
                          interior=interior, anchor=add_op,
                          recoverable=recoverable)
    return None


def _externally_clean(match: _LSTMMatch, graph: Graph,
                      fetch_names: set[str],
                      subgraph_ids: set[int],
                      allow_recoverable: bool = False) -> bool:
    """Every interior tensor (except new_c/new_h) stays inside the match.

    Only consumers inside the transcribed subgraph count: ops outside the
    fetch subgraph (e.g. a training graph's backward pass when fusing the
    inference fetches) are not transcribed, so they cannot dangle.

    With ``allow_recoverable``, consumers of the six recoverable
    interior tensors (see :class:`_LSTMMatch`) are tolerated — the
    caller promises to re-materialize those values from the fused op's
    outputs. A *fetched* interior tensor always vetoes the match, even a
    recoverable one: fetches are the user-visible contract, and the
    structural tier must observe the identical tensor object.
    """
    boundary = {match.new_c.name, match.new_h.name}
    recoverable_names = ({t.name for t in match.recoverable.values()}
                         if allow_recoverable else set())
    for op in graph.operations:
        if id(op) not in match.interior:
            continue
        for tensor in op.outputs:
            if tensor.name in boundary:
                continue
            if tensor.name in fetch_names:
                return False
            if tensor.name in recoverable_names:
                continue
            for consumer in graph.consumers(tensor):
                if id(consumer) in subgraph_ids and \
                        id(consumer) not in match.interior:
                    return False
    return True


def find_lstm_matches(graph: Graph, fetches: list[Tensor],
                      allow_recoverable: bool = False) -> list[_LSTMMatch]:
    """Recognize every fusible composed-LSTM step in a fetch subgraph.

    Returns structurally valid, externally clean, mutually disjoint
    matches in topological (construction) order. Shared by
    :func:`fuse_lstm_cells` and the plan compiler's fusion pass, which
    additionally revalidates cleanliness against its own rewritten view
    of the subgraph. ``allow_recoverable`` relaxes cleanliness to admit
    matches whose gate activations escape into a backward pass (the
    caller must then emit recovery ops for the escaping values).
    """
    ops = graph.subgraph(fetches)
    subgraph_ids = {id(op) for op in ops}
    fetch_names = {t.name for t in fetches}
    matches: list[_LSTMMatch] = []
    claimed: set[int] = set()
    for op in ops:
        match = _match_cell(op)
        if match is None:
            continue
        if match.interior & claimed:
            continue
        if not _externally_clean(match, graph, fetch_names, subgraph_ids,
                                 allow_recoverable):
            continue
        matches.append(match)
        claimed |= match.interior
    return matches


def fuse_lstm_cells(graph: Graph, fetches: list[Tensor]) -> RewriteResult:
    """Transcribe ``fetches``' subgraph, fusing every recognizable
    composed LSTM step into a single ``LSTMBlockCell`` op."""
    ops = graph.subgraph(fetches)
    stats = RewriteStats(ops_in=len(ops))

    matches = find_lstm_matches(graph, fetches)
    claimed: set[int] = set()
    for match in matches:
        claimed |= match.interior
    anchor_to_match = {id(m.anchor): m for m in matches}

    new_graph = Graph()
    tensor_map: dict[str, Tensor] = {}
    op_map: dict[int, Operation] = {}
    with new_graph.as_default():
        for op in ops:
            if id(op) in claimed:
                match = anchor_to_match.get(id(op))
                if match is None:
                    continue  # interior op; outputs never needed outside
                block = LSTMBlockCellOp(
                    [tensor_map[match.x.name], tensor_map[match.c.name],
                     tensor_map[match.h.name],
                     tensor_map[match.kernel.name],
                     tensor_map[match.bias.name]],
                    attrs={"forget_bias": match.forget_bias},
                    name=f"{op.name}/fused")
                tensor_map[match.new_c.name] = block.outputs[0]
                tensor_map[match.new_h.name] = block.outputs[1]
                continue
            new_inputs = [tensor_map[t.name] for t in op.inputs]
            new_op = type(op)(new_inputs,
                              attrs=_remap_attrs(op.attrs, op_map),
                              name=op.name)
            op_map[id(op)] = new_op
            for old, created in zip(op.outputs, new_op.outputs):
                tensor_map[old.name] = created

    stats.ops_out = len(new_graph)
    stats.subexpressions_merged = 0
    result = RewriteResult(graph=new_graph, stats=stats,
                           _tensor_map=tensor_map)
    result.fused_cells = len(matches)
    return result
