"""The session: a deterministic topological executor with tracing hooks.

A :class:`Session` owns all runtime state for a graph — variable values
and the random stream — and executes the pruned subgraph needed by each
``run`` call in construction (= topological) order. Each operation's
execution is individually timed, and an optional tracer receives one
record per op per step; the profiling stack in :mod:`repro.profiling` is
built entirely on this hook, just as the paper's tools were built on
TensorFlow's runtime tracing support.

Intermediate tensors are reference-counted and freed as soon as their
last consumer has run, which keeps peak memory manageable for the deep
convolutional workloads.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Any, Mapping, Protocol, Sequence

import numpy as np

from .errors import ExecutionError, FeedError
from .graph import Graph, Operation, Tensor, get_default_graph
from .ops.state_ops import Placeholder, VariableOp


class Tracer(Protocol):
    """Anything with a ``record`` method can observe op executions."""

    def record(self, op: Operation, seconds: float) -> None:  # pragma: no cover
        ...

    def finish_step(self, total_seconds: float,
                    peak_live_bytes: int = 0) -> None:  # pragma: no cover
        ...


class FaultInjector(Protocol):
    """Hook points :class:`Session.run` offers to a chaos-fault injector.

    See :mod:`repro.framework.faults` for the concrete implementation;
    the protocol keeps the executor decoupled from the fault model.
    """

    def on_feed(self, op: Operation,
                value: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...

    def before_op(self, op: Operation) -> None:  # pragma: no cover
        ...

    def after_op(self, op: Operation,
                 outputs: Sequence[np.ndarray]):  # pragma: no cover
        ...

    def end_step(self) -> None:  # pragma: no cover
        ...


@dataclass(frozen=True)
class SessionSnapshot:
    """A deep copy of a session's mutable run state.

    Captures variable values *and* the random-stream state, so restoring
    a snapshot and re-running a step reproduces it bit-for-bit — the
    property the resilient runner's rollback-and-retry relies on.
    """

    variables: dict[int, np.ndarray]
    variable_ops: dict[int, VariableOp]
    rng_state: dict


class RunContext:
    """Per-session state handed to every op's ``compute``."""

    def __init__(self, rng: np.random.Generator,
                 variables: dict[int, np.ndarray],
                 variable_ops: dict[int, VariableOp]):
        self.rng = rng
        self._variables = variables
        self._variable_ops = variable_ops

    def read_variable(self, op: VariableOp) -> np.ndarray:
        key = id(op)
        if key not in self._variables:
            self._variables[key] = op.initial_value.copy()
            self._variable_ops[key] = op
        return self._variables[key]

    def write_variable(self, op: VariableOp, value: np.ndarray) -> None:
        self._variables[id(op)] = np.asarray(value, dtype=op.output.dtype)
        self._variable_ops[id(op)] = op


class Session:
    """Executes a graph with its own variables and random stream."""

    def __init__(self, graph: Graph | None = None, seed: int = 0):
        self.graph = graph if graph is not None else get_default_graph()
        self._variables: dict[int, np.ndarray] = {}
        self._variable_ops: dict[int, VariableOp] = {}
        self.rng = np.random.default_rng(seed)
        self._ctx = RunContext(self.rng, self._variables, self._variable_ops)
        # Execution plans cached per fetch set; declared-shape validation
        # runs only on each op's first execution in this session.
        self._plans: dict[tuple[str, ...], list[Operation]] = {}
        self._validated: set[int] = set()
        #: peak bytes of live intermediate tensors in the last run
        self.last_peak_live_bytes = 0
        #: optional chaos-fault injector consulted around every op
        #: execution (see :mod:`repro.framework.faults`)
        self.fault_injector: FaultInjector | None = None

    # -- variable access ------------------------------------------------------

    def variable_value(self, tensor: Tensor) -> np.ndarray:
        """Current value of a variable tensor (initializing it if needed)."""
        if not isinstance(tensor.op, VariableOp):
            raise FeedError(f"{tensor.name!r} is not a variable")
        return self._ctx.read_variable(tensor.op)

    def set_variable(self, tensor: Tensor, value: np.ndarray) -> None:
        if not isinstance(tensor.op, VariableOp):
            raise FeedError(f"{tensor.name!r} is not a variable")
        value = np.asarray(value, dtype=tensor.dtype)
        if value.shape != tensor.shape:
            raise FeedError(
                f"variable {tensor.name!r} has shape {tensor.shape}, "
                f"got {value.shape}")
        self._ctx.write_variable(tensor.op, value)

    # -- state snapshots ---------------------------------------------------------

    def state_snapshot(self) -> SessionSnapshot:
        """Capture all mutable run state (variables + RNG) for rollback."""
        return SessionSnapshot(
            variables={key: value.copy()
                       for key, value in self._variables.items()},
            variable_ops=dict(self._variable_ops),
            rng_state=copy.deepcopy(self.rng.bit_generator.state))

    def restore_snapshot(self, snapshot: SessionSnapshot) -> None:
        """Restore state captured by :meth:`state_snapshot`.

        The variable store is mutated in place (it is shared with the
        run context), so restoring never invalidates cached plans.
        """
        self._variables.clear()
        self._variables.update({key: value.copy()
                                for key, value in snapshot.variables.items()})
        self._variable_ops.clear()
        self._variable_ops.update(snapshot.variable_ops)
        self.rng.bit_generator.state = copy.deepcopy(snapshot.rng_state)

    # -- execution --------------------------------------------------------------

    def run(self, fetches, feed_dict: Mapping[Tensor, Any] | None = None,
            tracer: Tracer | None = None, check_numerics: bool = False):
        """Execute the graph and return the value(s) of ``fetches``.

        Args:
            fetches: a Tensor or a list/tuple of Tensors.
            feed_dict: maps Placeholder tensors to numpy values.
            tracer: optional observer receiving one record per executed op.
            check_numerics: if True, raise :class:`ExecutionError` naming
                the first operation that produces a NaN or Inf — the
                debugging aid for diverging training runs.
        """
        single = isinstance(fetches, Tensor)
        fetch_list: list[Tensor] = [fetches] if single else list(fetches)
        feeds = self._validate_feeds(feed_dict or {})

        plan_key = tuple(t.name for t in fetch_list)
        ops = self._plans.get(plan_key)
        if ops is None:
            ops = self.graph.subgraph(fetch_list)
            self._plans[plan_key] = ops
        self._check_feeds_cover(ops, feeds)

        # Reference counts so intermediates are freed after their last use.
        refcount: dict[str, int] = {}
        for op in ops:
            for tensor in op.inputs:
                refcount[tensor.name] = refcount.get(tensor.name, 0) + 1
        for tensor in fetch_list:
            refcount[tensor.name] = refcount.get(tensor.name, 0) + 1

        now = time.perf_counter  # local binding: called twice per op
        validated = self._validated
        ctx = self._ctx
        injector = self.fault_injector
        values: dict[str, np.ndarray] = {}
        live_bytes = 0
        peak_bytes = 0
        step_start = now()
        try:
            for op in ops:
                if type(op) is Placeholder:
                    fed = feeds[id(op)]
                    if injector is not None:
                        fed = injector.on_feed(op, fed)
                    values[op.outputs[0].name] = fed
                    live_bytes += fed.nbytes
                    continue
                args = tuple(values[t.name] for t in op.inputs)
                op_start = now()
                try:
                    if injector is not None:
                        injector.before_op(op)
                    outputs = op.compute(args, ctx)
                    if injector is not None:
                        outputs = injector.after_op(op, outputs)
                except Exception as exc:
                    if isinstance(exc, ExecutionError):
                        raise
                    raise ExecutionError(
                        op.name, str(exc),
                        input_shapes=[t.shape for t in op.inputs]) from exc
                elapsed = now() - op_start
                if tracer is not None:
                    tracer.record(op, elapsed)
                if check_numerics:
                    for tensor, value in zip(op.outputs, outputs):
                        value = np.asarray(value)
                        if (np.issubdtype(value.dtype, np.floating)
                                and not np.isfinite(value).all()):
                            bad = ("NaN" if np.isnan(value).any() else "Inf")
                            raise ExecutionError(
                                op.name,
                                f"produced {bad} in {tensor.name} "
                                f"(check_numerics)")
                if id(op) in validated:
                    for tensor, value in zip(op.outputs, outputs):
                        values[tensor.name] = value
                        live_bytes += value.nbytes
                else:
                    # First execution: check declared shapes and normalize
                    # any non-ndarray outputs. Kernels return ndarrays of
                    # the declared shape thereafter, so the steady-state
                    # loop skips the checks.
                    validated.add(id(op))
                    for tensor, value in zip(op.outputs, outputs):
                        value = np.asarray(value)
                        if value.shape != tensor.shape:
                            raise ExecutionError(
                                op.name,
                                f"produced shape {value.shape}, declared "
                                f"{tensor.shape} for {tensor.name}")
                        values[tensor.name] = value
                        live_bytes += value.nbytes
                if live_bytes > peak_bytes:
                    peak_bytes = live_bytes
                for tensor in op.inputs:
                    name = tensor.name
                    refcount[name] -= 1
                    if refcount[name] == 0:
                        live_bytes -= values[name].nbytes
                        del values[name]
        finally:
            # Aborted runs still advance the injector's step counter, so
            # a retry of the same training step is a *new* injection step.
            if injector is not None:
                injector.end_step()
        self.last_peak_live_bytes = peak_bytes
        if tracer is not None:
            tracer.finish_step(now() - step_start, peak_bytes)

        results = [values[t.name] for t in fetch_list]
        return results[0] if single else results

    # -- helpers ----------------------------------------------------------------

    def _validate_feeds(self, feed_dict: Mapping[Tensor, Any]) -> dict[int, np.ndarray]:
        feeds: dict[int, np.ndarray] = {}
        for tensor, raw in feed_dict.items():
            if not isinstance(tensor, Tensor) or not isinstance(
                    tensor.op, Placeholder):
                raise FeedError(
                    f"only placeholders can be fed, got "
                    f"{getattr(tensor, 'name', tensor)!r}")
            value = np.asarray(raw, dtype=tensor.dtype)
            if value.shape != tensor.shape:
                raise FeedError(
                    f"feed for {tensor.name!r} has shape {value.shape}, "
                    f"placeholder expects {tensor.shape}")
            feeds[id(tensor.op)] = value
        return feeds

    def _check_feeds_cover(self, ops: Sequence[Operation],
                           feeds: dict[int, np.ndarray]) -> None:
        for op in ops:
            if isinstance(op, Placeholder) and id(op) not in feeds:
                raise FeedError(
                    f"placeholder {op.name!r} is required but was not fed")
