"""The session: compiled-plan execution with tracing hooks.

A :class:`Session` owns all runtime state for a graph — variable values
and the random stream — and executes each ``run`` call through a
compiled :class:`~repro.framework.compiler.ExecutionPlan`. The first run
of a fetch set pays a compilation: the fetch subgraph is lowered through
the optimization pipeline into a flat schedule whose operands are
integer slots, with feed coverage, input lookups, and free-after lists
all resolved at compile time. Subsequent runs of the same fetch set
reuse the cached plan (plans are invalidated when the graph gains
operations), so the steady-state interpreter loop does no per-run graph
analysis at all.

Each operation's execution can be individually timed: an optional tracer
receives one record per op per step, and the profiling stack in
:mod:`repro.profiling` is built entirely on this hook, just as the
paper's tools were built on TensorFlow's runtime tracing support.
Intermediate tensors are freed as soon as their statically computed last
consumer has run, which keeps peak memory manageable for the deep
convolutional workloads; the measured peak is validated against the
plan's memory planner by the tier-1 tests.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Mapping, Protocol, Sequence

import numpy as np

from .errors import ExecutionError, FeedError, GuardrailViolation
from .graph import Graph, Operation, Tensor, get_default_graph
from .memory import K_CONST, K_PLACEHOLDER, K_REGION
from .ops.state_ops import Placeholder, VariableOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .compiler import ExecutionPlan, PassQuarantine


@dataclass(frozen=True)
class GuardrailPolicy:
    """Op-level numerical screening for every executed plan step.

    Replaces the loss-only NaN guard with a per-op screen: after each
    step's outputs materialize, any floating-point output containing
    NaN/Inf (or exceeding ``overflow_limit`` in magnitude, when set)
    triggers the configured response:

    * ``"raise"`` — raise :class:`~repro.framework.errors.ExecutionError`
      naming the first offending op (what ``check_numerics=True`` always
      did; that flag is now sugar for this policy).
    * ``"zero"`` — replace the offending values with 0, record a
      ``DegradationEvent`` (kind ``"guardrail"``), and keep running.
    * ``"deoptimize"`` — raise a
      :class:`~repro.framework.errors.GuardrailViolation` carrying a
      de-optimization hint; under a :class:`HealingPolicy` the step is
      rolled back and recompiled at a safer tier instead of aborting.
    """

    on_violation: str = "raise"
    overflow_limit: float | None = None
    #: internal: preserve the historical "(check_numerics)" message
    legacy_check_numerics: bool = False

    _POLICIES = ("raise", "zero", "deoptimize")

    def __post_init__(self):
        if self.on_violation not in self._POLICIES:
            raise ValueError(
                f"guardrail policy must be one of {self._POLICIES}, "
                f"got {self.on_violation!r}")

    @classmethod
    def coerce(cls, value) -> "GuardrailPolicy | None":
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(on_violation=value)
        raise TypeError(
            f"guardrails must be a GuardrailPolicy, a policy name, or "
            f"None; got {type(value).__name__}")


@dataclass(frozen=True)
class DegradationEvent:
    """One self-healing action: degradation, quarantine, or recovery.

    The healing counterpart of
    :class:`~repro.framework.resilience.FailureEvent`. Kinds:

    * ``fault`` — a plan step failed under healing (op + tier recorded);
    * ``blame`` — the failure was localized to a source-graph op
      (through synthesized-step provenance when applicable);
    * ``tier_drop`` — execution demoted to a safer tier (``tier`` is
      the tier now in effect);
    * ``quarantine`` — a compiler pass was quarantined (``pass_name``);
    * ``reescalate`` — clean steps earned a climb back up a tier;
    * ``quarantine_clear`` — a quarantined pass was explicitly cleared;
    * ``guardrail`` — a numerical guardrail zeroed non-finite values;
    * ``op_zeroed`` — safe mode replaced a failing op's outputs with
      zeros to keep the step alive.

    Events flow through the same tracer hook as failure events and are
    persisted into serialized traces by :mod:`repro.profiling.serialize`.
    """

    step: int
    kind: str
    op_name: str | None = None
    tier: str | None = None
    pass_name: str | None = None
    attempt: int = 0
    seconds_lost: float = 0.0
    detail: str = ""

    def signature(self) -> tuple:
        """Timing-free identity, for determinism comparisons."""
        return (self.step, self.kind, self.op_name, self.tier,
                self.pass_name, self.attempt)


@dataclass(frozen=True)
class HealingConfig:
    """Knobs for :class:`HealingPolicy`.

    Args:
        demote_after: consecutive failures blamed on the same op before
            execution drops one tier.
        quarantine_after: failures blamed (via provenance) on the same
            synthesized pass before that pass is sticky-quarantined.
        reescalate_after: consecutive clean steps at a degraded tier
            before execution climbs one tier back up.
    """

    demote_after: int = 2
    quarantine_after: int = 2
    reescalate_after: int = 3

    @classmethod
    def coerce(cls, value) -> "HealingConfig | None":
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"healing must be a HealingConfig, a bool, or None; "
            f"got {type(value).__name__}")


class HealingPolicy:
    """Tiered de-optimization driven by blame localization.

    Owns the session's degradation ladder::

        full (or whatever the base options are)
          -> structural        (every optimizing pass soft-quarantined)
            -> safe mode       (op-at-a-time: per-op exception capture
                                + forced numeric screening)

    On repeated failure at the same blamed op the policy demotes one
    tier (recording the disabled passes in the session's
    :class:`~repro.framework.compiler.PassQuarantine`); when provenance
    pinpoints the synthesizing pass (a folded constant, a fused LSTM
    cell) that pass is *sticky*-quarantined instead, so the offending
    rewrite stays off for this graph until explicitly cleared. After
    ``reescalate_after`` consecutive clean steps the policy climbs one
    tier back up (sticky quarantines survive re-escalation). Every
    action is emitted as a :class:`DegradationEvent`.

    The :class:`~repro.framework.resilience.ResilientRunner` consults
    this policy from its retry loop when
    ``ResilienceConfig(healing=...)`` is set.
    """

    def __init__(self, session: "Session",
                 config: HealingConfig | None = None,
                 sink=None):
        self.session = session
        self.config = config or HealingConfig()
        self._sink = sink
        #: every degradation/recovery action taken, in order
        self.events: list[DegradationEvent] = []
        self._failures: dict[str, int] = {}
        self._clean_steps = 0

    # -- events ------------------------------------------------------------

    def _emit(self, event: DegradationEvent) -> None:
        self.events.append(event)
        if self._sink is not None:
            self._sink(event)

    @property
    def current_tier(self) -> str:
        return self.session.execution_tier

    # -- failure handling --------------------------------------------------

    def on_failure(self, exc: Exception, step: int) -> bool:
        """Record a failed step; maybe demote/quarantine. True if acted."""
        self._clean_steps = 0
        op_name = getattr(exc, "op_name", None)
        blamed = getattr(exc, "blamed_op", None) or op_name or "<unknown>"
        origin = getattr(exc, "origin_pass", None)
        provenance = tuple(getattr(exc, "provenance", ()) or ())
        count = self._failures.get(blamed, 0) + 1
        self._failures[blamed] = count
        tier = self.current_tier
        message = str(exc).splitlines()[0] if str(exc) else ""
        self._emit(DegradationEvent(
            step=step, kind="fault", op_name=op_name, tier=tier,
            attempt=count, detail=message))
        self._emit(DegradationEvent(
            step=step, kind="blame", op_name=blamed, tier=tier,
            pass_name=origin, attempt=count,
            detail=("via " + " <- ".join(provenance) if provenance
                    else "direct")))
        config = self.config
        if (origin is not None
                and not self.session.quarantine.is_quarantined(origin)
                and count >= config.quarantine_after):
            self.session.quarantine.quarantine(
                origin, op_name=blamed,
                reason=f"blamed for {count} failures at step {step}",
                sticky=True)
            self._emit(DegradationEvent(
                step=step, kind="quarantine", op_name=blamed,
                tier=self.current_tier, pass_name=origin,
                detail="sticky: skipped until explicitly cleared"))
            return True
        if getattr(exc, "deoptimize_hint", False) \
                or count >= config.demote_after:
            return self.demote(step, blamed)
        return False

    def demote(self, step: int, blamed: str) -> bool:
        """Drop one tier; records soft quarantines for disabled passes."""
        from .compiler import PASS_FLAGS, PlanOptions
        session = self.session
        if session.safe_mode:
            return False  # already at the lowest tier
        effective = session.effective_options()
        if effective != PlanOptions.structural():
            enabled = [name for name, flag in PASS_FLAGS.items()
                       if getattr(effective, flag)]
            if effective.backend != "interp":
                # The structural tier is the *interpreted* structural
                # tier: a demotion turns generated kernels off along
                # with the optimizing passes, and re-escalation lifts
                # the soft quarantine to restore them together.
                enabled.append("codegen")
            self._emit(DegradationEvent(
                step=step, kind="tier_drop", op_name=blamed,
                tier="structural",
                detail=f"demoted from {effective.describe()!r} after "
                       f"repeated failures at {blamed!r}"))
            for pass_name in enabled:
                session.quarantine.quarantine(
                    pass_name, op_name=blamed,
                    reason=f"tier drop at step {step}", sticky=False)
                self._emit(DegradationEvent(
                    step=step, kind="quarantine", op_name=blamed,
                    tier="structural", pass_name=pass_name,
                    detail="soft: lifted on re-escalation"))
            return True
        session.safe_mode = True
        self._emit(DegradationEvent(
            step=step, kind="tier_drop", op_name=blamed, tier="safe",
            detail="op-at-a-time safe mode: per-op exception capture "
                   "and numeric screening"))
        return True

    # -- recovery ----------------------------------------------------------

    def on_success(self, step: int) -> bool:
        """Record a clean step; maybe re-escalate. True if escalated."""
        self._clean_steps += 1
        if self._clean_steps < self.config.reescalate_after:
            return False
        session = self.session
        if session.safe_mode:
            session.safe_mode = False
            self._clean_steps = 0
            self._emit(DegradationEvent(
                step=step, kind="reescalate", tier=self.current_tier,
                detail=f"left safe mode after "
                       f"{self.config.reescalate_after} clean steps"))
            return True
        if session.quarantine.has_soft():
            lifted = session.quarantine.lift_soft()
            self._clean_steps = 0
            self._emit(DegradationEvent(
                step=step, kind="reescalate", tier=self.current_tier,
                detail="lifted soft quarantine: " + ", ".join(lifted)))
            return True
        return False

    def clear_quarantine(self, pass_name: str | None = None,
                         step: int = -1) -> list[str]:
        """Explicitly clear sticky quarantines (emits events)."""
        cleared = self.session.quarantine.clear(pass_name)
        for name in cleared:
            self._emit(DegradationEvent(
                step=step, kind="quarantine_clear", pass_name=name,
                tier=self.current_tier))
        return cleared


class Tracer(Protocol):
    """Anything with a ``record`` method can observe op executions."""

    def record(self, op: Operation, seconds: float) -> None:  # pragma: no cover
        ...

    def finish_step(self, total_seconds: float,
                    peak_live_bytes: int = 0) -> None:  # pragma: no cover
        ...


class FaultInjector(Protocol):
    """Hook points :class:`Session.run` offers to a chaos-fault injector.

    See :mod:`repro.framework.faults` for the concrete implementation;
    the protocol keeps the executor decoupled from the fault model.
    """

    def on_feed(self, op: Operation,
                value: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...

    def before_op(self, op: Operation) -> None:  # pragma: no cover
        ...

    def after_op(self, op: Operation,
                 outputs: Sequence[np.ndarray]):  # pragma: no cover
        ...

    def end_step(self) -> None:  # pragma: no cover
        ...


@dataclass(frozen=True)
class SessionSnapshot:
    """A deep copy of a session's mutable run state.

    Captures variable values *and* the random-stream state, so restoring
    a snapshot and re-running a step reproduces it bit-for-bit — the
    property the resilient runner's rollback-and-retry relies on.
    """

    variables: dict[int, np.ndarray]
    variable_ops: dict[int, VariableOp]
    rng_state: dict


class RunContext:
    """Per-session state handed to every op's ``compute``."""

    def __init__(self, rng: np.random.Generator,
                 variables: dict[int, np.ndarray],
                 variable_ops: dict[int, VariableOp]):
        self.rng = rng
        self._variables = variables
        self._variable_ops = variable_ops

    def read_variable(self, op: VariableOp) -> np.ndarray:
        key = id(op)
        if key not in self._variables:
            self._variables[key] = op.initial_value.copy()
            self._variable_ops[key] = op
        return self._variables[key]

    def write_variable(self, op: VariableOp, value: np.ndarray) -> None:
        self._variables[id(op)] = np.asarray(value, dtype=op.output.dtype)
        self._variable_ops[id(op)] = op


class Session:
    """Executes a graph with its own variables and random stream."""

    def __init__(self, graph: Graph | None = None, seed: int = 0,
                 optimize=None, guardrails=None, backend: str | None = None):
        from .compiler import PassQuarantine, PlanOptions
        self.graph = graph if graph is not None else get_default_graph()
        #: optimization level plans are compiled at. None/'structural'
        #: keeps the classic interpreter's observable behaviour exactly;
        #: 'full' (or a PlanOptions) enables the optimizing passes. The
        #: ``backend`` argument overrides the execution backend axis
        #: ('interp' or 'codegen') without touching the pass flags.
        self.options = PlanOptions.coerce(optimize)
        if backend is not None:
            self.options = replace(self.options, backend=backend)
        #: pass-health registry; quarantined passes are skipped when
        #: compiling plans for this session (see compiler.PassQuarantine)
        self.quarantine: "PassQuarantine" = PassQuarantine()
        #: op-at-a-time safe mode: plans drop to the structural tier,
        #: every op runs under exception capture (failing ops yield
        #: zeros instead of aborting the step), and numeric screening
        #: is forced on with the zero-and-record policy
        self.safe_mode = False
        #: session-wide default :class:`GuardrailPolicy` (``run`` can
        #: override per call); None disables screening
        self.guardrails: GuardrailPolicy | None = \
            GuardrailPolicy.coerce(guardrails)
        #: degradation events emitted by this session's executor
        #: (guardrail zeroings, safe-mode op captures), newest last
        self.degradation_log: list[DegradationEvent] = []
        #: index of the next ``run`` call (aborted runs count)
        self.run_count = 0
        self._variables: dict[int, np.ndarray] = {}
        self._variable_ops: dict[int, VariableOp] = {}
        self.rng = np.random.default_rng(seed)
        self._ctx = RunContext(self.rng, self._variables, self._variable_ops)
        # Compiled plans cached per fetch set. A cached plan is reused
        # only while it still matches the graph version and the exact
        # fetch tensors (see ExecutionPlan.matches) — fetch *names* are
        # just the lookup key and are never trusted on their own.
        self._plans: dict[tuple[str, ...], "ExecutionPlan"] = {}
        #: number of plan compilations / cache reuses this session did
        self.plan_compiles = 0
        self.plan_cache_hits = 0
        #: compile summaries (one dict per compilation, newest last)
        self.compile_log: list[dict] = []
        #: peak bytes of live intermediate tensors in the last run
        self.last_peak_live_bytes = 0
        #: optional chaos-fault injector consulted around every op
        #: execution (see :mod:`repro.framework.faults`)
        self.fault_injector: FaultInjector | None = None

    # -- variable access ------------------------------------------------------

    def variable_value(self, tensor: Tensor) -> np.ndarray:
        """Current value of a variable tensor (initializing it if needed)."""
        if not isinstance(tensor.op, VariableOp):
            raise FeedError(f"{tensor.name!r} is not a variable")
        return self._ctx.read_variable(tensor.op)

    def set_variable(self, tensor: Tensor, value: np.ndarray) -> None:
        if not isinstance(tensor.op, VariableOp):
            raise FeedError(f"{tensor.name!r} is not a variable")
        value = np.asarray(value, dtype=tensor.dtype)
        if value.shape != tensor.shape:
            raise FeedError(
                f"variable {tensor.name!r} has shape {tensor.shape}, "
                f"got {value.shape}")
        self._ctx.write_variable(tensor.op, value)

    # -- state snapshots ---------------------------------------------------------

    def state_snapshot(self) -> SessionSnapshot:
        """Capture all mutable run state (variables + RNG) for rollback."""
        return SessionSnapshot(
            variables={key: value.copy()
                       for key, value in self._variables.items()},
            variable_ops=dict(self._variable_ops),
            rng_state=copy.deepcopy(self.rng.bit_generator.state))

    def restore_snapshot(self, snapshot: SessionSnapshot) -> None:
        """Restore state captured by :meth:`state_snapshot`.

        The variable store is mutated in place (it is shared with the
        run context), so restoring never invalidates cached plans.
        """
        self._variables.clear()
        self._variables.update({key: value.copy()
                                for key, value in snapshot.variables.items()})
        self._variable_ops.clear()
        self._variable_ops.update(snapshot.variable_ops)
        self.rng.bit_generator.state = copy.deepcopy(snapshot.rng_state)

    def fork(self, seed: int = 0) -> "Session":
        """A new session over the same graph with this session's state.

        The fork receives a copy of the current variable values, the
        parent's optimization options, and the parent's degradation
        state (safe mode and quarantined passes), but a fresh random
        stream seeded with ``seed`` and its own plan cache. This is the
        replica-pool primitive in :mod:`repro.serving`: each replica
        serves the same weights from an isolated session, so one
        replica's faults or tier drops never leak into another.
        """
        fork = Session(self.graph, seed=seed, optimize=self.options,
                       guardrails=self.guardrails)
        fork.safe_mode = self.safe_mode
        fork.quarantine = copy.deepcopy(self.quarantine)
        snapshot = self.state_snapshot()
        fork._variables.update({key: value.copy()
                                for key, value in snapshot.variables.items()})
        fork._variable_ops.update(snapshot.variable_ops)
        return fork

    # -- compilation -------------------------------------------------------------

    def effective_options(self):
        """The :class:`PlanOptions` plans are *actually* compiled at.

        The base level, degraded by the current tier: safe mode forces
        the structural tier, and every pass quarantined in
        :attr:`quarantine` is switched off. Because the plan cache is
        keyed by this value, tier changes and quarantine updates
        transparently trigger recompilation.
        """
        from .compiler import PlanOptions
        if self.safe_mode:
            return PlanOptions.structural()
        return self.quarantine.filter(self.options)

    @property
    def execution_tier(self) -> str:
        """Human-readable current tier: 'safe', or the effective level."""
        return "safe" if self.safe_mode else self.effective_options().describe()

    def compile(self, fetches, tracer: Tracer | None = None) -> "ExecutionPlan":
        """Compile (or fetch the cached plan for) a fetch set.

        ``run`` calls this implicitly; it is public so tools can inspect
        a plan — pass records, memory plan, schedule — without running.
        """
        fetch_list = [fetches] if isinstance(fetches, Tensor) else list(fetches)
        return self._plan_for(fetch_list, tracer)

    def _plan_for(self, fetch_list: list[Tensor],
                  tracer: Tracer | None) -> "ExecutionPlan":
        options = self.effective_options()
        key = (options.describe(),) + tuple(t.name for t in fetch_list)
        plan = self._plans.get(key)
        if plan is not None and plan.matches(self.graph, fetch_list):
            self.plan_cache_hits += 1
            return plan
        from .compiler import compile_plan
        plan = compile_plan(self.graph, fetch_list, options)
        self._plans[key] = plan
        self.plan_compiles += 1
        summary = plan.summary()
        self.compile_log.append(summary)
        if tracer is not None:
            record_compile = getattr(tracer, "record_compile", None)
            if record_compile is not None:
                record_compile(summary)
        return plan

    # -- execution --------------------------------------------------------------

    def run(self, fetches, feed_dict: Mapping[Tensor, Any] | None = None,
            tracer: Tracer | None = None, check_numerics: bool = False,
            guardrails: "GuardrailPolicy | str | None" = None):
        """Execute the graph and return the value(s) of ``fetches``.

        Args:
            fetches: a Tensor or a list/tuple of Tensors.
            feed_dict: maps Placeholder tensors to numpy values.
            tracer: optional observer receiving one record per executed op.
            check_numerics: if True, raise :class:`ExecutionError` naming
                the first operation that produces a NaN or Inf — the
                debugging aid for diverging training runs. Equivalent to
                ``guardrails="raise"``.
            guardrails: a :class:`GuardrailPolicy` (or policy name:
                ``"raise"``, ``"zero"``, ``"deoptimize"``) screening
                every op's outputs for NaN/Inf/overflow. Defaults to the
                session's :attr:`guardrails`. In :attr:`safe_mode` the
                zero-and-record policy is always in force.
        """
        single = isinstance(fetches, Tensor)
        fetch_list: list[Tensor] = [fetches] if single else list(fetches)
        feeds = self._validate_feeds(feed_dict or {})
        plan = self._plan_for(fetch_list, tracer)
        for op in plan.placeholders:
            if id(op) not in feeds:
                raise FeedError(
                    f"placeholder {op.name!r} is required but was not fed")

        guard = GuardrailPolicy.coerce(guardrails)
        if guard is None and check_numerics:
            guard = GuardrailPolicy(on_violation="raise",
                                    legacy_check_numerics=True)
        if guard is None:
            guard = self.guardrails
        safe = self.safe_mode
        if safe and (guard is None or guard.on_violation != "zero"):
            guard = GuardrailPolicy(
                on_violation="zero",
                overflow_limit=(guard.overflow_limit
                                if guard is not None else None))
        run_index = self.run_count
        self.run_count += 1

        now = time.perf_counter  # local binding: called twice per op
        ctx = self._ctx
        injector = self.fault_injector
        values: list = [None] * plan.num_slots
        live_bytes = 0
        peak_bytes = 0
        if plan.program is None:
            schedule: Sequence = plan.steps
        else:
            # Codegen backend: dispatch whole regions, except those that
            # have de-optimized back to their member steps after a
            # kernel failure (the healing path — see _region_failed).
            schedule = []
            for entry in plan.program:
                if entry.kind == K_REGION and entry.deoptimized:
                    schedule.extend(entry.steps)
                else:
                    schedule.append(entry)
        step_start = now() if tracer is not None else 0.0
        try:
            for step in schedule:
                op = step.op
                kind = step.kind
                if kind == K_PLACEHOLDER:
                    fed = feeds[id(op)]
                    if injector is not None:
                        fed = injector.on_feed(op, fed)
                    values[step.output_slots[0]] = fed
                    live_bytes += fed.nbytes
                    continue
                if kind == K_REGION:
                    op_start = now() if tracer is not None else 0.0
                    try:
                        step.fn(values, ctx, injector)
                    except Exception as exc:
                        self._region_failed(step, exc, run_index, tracer)
                    if tracer is not None:
                        tracer.record(step.op, now() - op_start)
                    if not step.validated:
                        for slot, tensor, member in step.outputs:
                            value = np.asarray(values[slot])
                            if value.shape != tensor.shape:
                                raise ExecutionError(
                                    member.op.name,
                                    f"produced shape {value.shape}, "
                                    f"declared {tensor.shape} for "
                                    f"{tensor.name}")
                            values[slot] = value
                        step.validated = True
                    if guard is not None:
                        self._screen_region(step, values, guard,
                                            tracer, run_index)
                    for slot in step.output_slots:
                        live_bytes += values[slot].nbytes
                    if live_bytes > peak_bytes:
                        peak_bytes = live_bytes
                    for slot in step.free_slots:
                        live_bytes -= values[slot].nbytes
                        values[slot] = None
                    continue
                op_start = now() if tracer is not None else 0.0
                try:
                    if injector is not None:
                        injector.before_op(op)
                    if kind == K_CONST:
                        outputs = (step.const_value,)
                    else:
                        args = tuple(values[slot]
                                     for slot in step.input_slots)
                        outputs = op.compute(args, ctx)
                    if injector is not None:
                        outputs = injector.after_op(op, outputs)
                except Exception as exc:
                    if safe:
                        # Op-at-a-time safe mode: keep the step alive by
                        # substituting zeros for the failing op's
                        # declared outputs, and record the capture.
                        outputs = tuple(np.zeros(t.shape, dtype=t.dtype)
                                        for t in op.outputs)
                        self._degrade(DegradationEvent(
                            step=run_index, kind="op_zeroed",
                            op_name=op.name, tier="safe",
                            detail=f"{type(exc).__name__}: "
                                   + str(exc).splitlines()[0]), tracer)
                    elif isinstance(exc, ExecutionError):
                        if step.provenance:
                            exc.attach_provenance(step.provenance,
                                                  step.origin_pass)
                        raise
                    else:
                        raise ExecutionError(
                            op.name, str(exc),
                            input_shapes=[t.shape for t in op.inputs],
                            provenance=step.provenance,
                            origin_pass=step.origin_pass) from exc
                if tracer is not None:
                    tracer.record(op, now() - op_start)
                if guard is not None:
                    outputs = self._screen_outputs(step, outputs, guard,
                                                   tracer, run_index)
                if step.validated:
                    # Steady state: kernels return ndarrays of the
                    # declared shapes, so skip the asarray normalization
                    # copy and the shape comparison entirely.
                    for slot, value in zip(step.output_slots, outputs):
                        values[slot] = value
                        live_bytes += value.nbytes
                else:
                    # First execution of this step: normalize any
                    # non-ndarray outputs and check declared shapes.
                    for slot, tensor, value in zip(step.output_slots,
                                                   op.outputs, outputs):
                        value = np.asarray(value)
                        if value.shape != tensor.shape:
                            raise ExecutionError(
                                op.name,
                                f"produced shape {value.shape}, declared "
                                f"{tensor.shape} for {tensor.name}")
                        values[slot] = value
                        live_bytes += value.nbytes
                    step.validated = True
                if live_bytes > peak_bytes:
                    peak_bytes = live_bytes
                for slot in step.free_slots:
                    live_bytes -= values[slot].nbytes
                    values[slot] = None
        finally:
            # Aborted runs still advance the injector's step counter, so
            # a retry of the same training step is a *new* injection step.
            if injector is not None:
                injector.end_step()
        self.last_peak_live_bytes = peak_bytes
        if tracer is not None:
            tracer.finish_step(now() - step_start, peak_bytes)

        results = [values[slot] for slot in plan.fetch_slots]
        return results[0] if single else results

    # -- helpers ----------------------------------------------------------------

    def _degrade(self, event: DegradationEvent, tracer) -> None:
        """Record a degradation event in the session log and the tracer."""
        self.degradation_log.append(event)
        if tracer is not None:
            record_event = getattr(tracer, "record_event", None)
            if record_event is not None:
                record_event(event)

    def _region_failed(self, region, exc: Exception, run_index: int,
                       tracer) -> None:
        """Blame and de-optimize one failed codegen region; always raises.

        The exception's traceback is walked against the region's
        provenance map to find the member :class:`CompiledStep` whose
        generated line raised; the error that propagates names that op
        (not the region), carries its provenance chain, and defaults its
        ``origin_pass`` to ``"codegen"`` so the healing ladder's
        quarantine machinery can switch the backend off. The region
        itself is marked ``deoptimized``: subsequent runs of this plan
        interpret its member steps op-by-op while every other region
        keeps its kernel.
        """
        from .codegen import blame_step
        blamed = blame_step(region, exc)
        step = blamed if blamed is not None else region.steps[0]
        op = step.op
        region.deoptimized = True
        self._degrade(DegradationEvent(
            step=run_index, kind="region_deopt", op_name=op.name,
            tier=self.execution_tier, pass_name="codegen",
            detail=f"{region.label} ({len(region.steps)} steps) falls "
                   f"back to op-by-op interpretation after "
                   f"{type(exc).__name__}: "
                   + (str(exc).splitlines()[0] if str(exc) else "")),
            tracer)
        if isinstance(exc, ExecutionError):
            exc.attach_provenance(step.provenance,
                                  step.origin_pass or "codegen")
            if exc.origin_pass is None:
                exc.origin_pass = "codegen"
            raise exc
        raise ExecutionError(
            op.name, str(exc),
            input_shapes=[t.shape for t in op.inputs],
            provenance=step.provenance,
            origin_pass=step.origin_pass or "codegen") from exc

    def _screen_region(self, region, values: list, guard: GuardrailPolicy,
                       tracer, run_index: int) -> None:
        """Guardrail-screen the values a region materialized.

        Mirrors :meth:`_screen_outputs` over the region's provenance-
        tagged outputs, patching ``values`` in place under the ``"zero"``
        policy. Ops collapsed into a consumer's expression never
        materialize, so only region outputs are screened — the same
        visibility contract the memory accounting has.
        """
        for slot, tensor, member in region.outputs:
            value = values[slot]
            if not np.issubdtype(value.dtype, np.floating):
                continue
            bad = ~np.isfinite(value)
            if guard.overflow_limit is not None:
                bad |= np.abs(value) > guard.overflow_limit
            if not bad.any():
                continue
            op = member.op
            if guard.on_violation == "zero":
                patched = value.copy()
                patched[bad] = 0
                values[slot] = patched
                self._degrade(DegradationEvent(
                    step=run_index, kind="guardrail", op_name=op.name,
                    tier=self.execution_tier,
                    detail=f"zeroed {int(bad.sum())} flagged value(s) "
                           f"in {tensor.name}"), tracer)
                continue
            label = ("NaN" if np.isnan(value).any()
                     else "Inf" if np.isinf(value).any() else "overflow")
            if guard.on_violation == "deoptimize":
                error: ExecutionError = GuardrailViolation(
                    op.name,
                    f"produced {label} in {tensor.name} "
                    f"(guardrail: deoptimize)",
                    deoptimize_hint=True)
            else:
                suffix = ("check_numerics" if guard.legacy_check_numerics
                          else "guardrail")
                error = ExecutionError(
                    op.name,
                    f"produced {label} in {tensor.name} ({suffix})")
            error.attach_provenance(member.provenance,
                                    member.origin_pass or "codegen")
            raise error

    def _screen_outputs(self, step, outputs, guard: GuardrailPolicy,
                        tracer, run_index: int):
        """Apply the numerical guardrail to one step's outputs.

        Returns the (possibly patched) outputs under the ``"zero"``
        policy; raises under ``"raise"``/``"deoptimize"``. Screening
        runs *after* the tracer records the op, so profiles still count
        the offending execution — matching the historical
        ``check_numerics`` ordering.
        """
        op = step.op
        screened = None
        for index, (tensor, value) in enumerate(zip(op.outputs, outputs)):
            value = np.asarray(value)
            if not np.issubdtype(value.dtype, np.floating):
                continue
            bad = ~np.isfinite(value)
            if guard.overflow_limit is not None:
                bad |= np.abs(value) > guard.overflow_limit
            if not bad.any():
                continue
            if guard.on_violation == "zero":
                if screened is None:
                    screened = [np.asarray(v) for v in outputs]
                patched = value.copy()
                patched[bad] = 0
                screened[index] = patched
                self._degrade(DegradationEvent(
                    step=run_index, kind="guardrail", op_name=op.name,
                    tier=self.execution_tier,
                    detail=f"zeroed {int(bad.sum())} flagged value(s) "
                           f"in {tensor.name}"), tracer)
                continue
            label = ("NaN" if np.isnan(value).any()
                     else "Inf" if np.isinf(value).any() else "overflow")
            if guard.on_violation == "deoptimize":
                error: ExecutionError = GuardrailViolation(
                    op.name,
                    f"produced {label} in {tensor.name} "
                    f"(guardrail: deoptimize)",
                    deoptimize_hint=True)
            else:
                suffix = ("check_numerics" if guard.legacy_check_numerics
                          else "guardrail")
                error = ExecutionError(
                    op.name,
                    f"produced {label} in {tensor.name} ({suffix})")
            error.attach_provenance(step.provenance, step.origin_pass)
            raise error
        return outputs if screened is None else tuple(screened)

    def _validate_feeds(self, feed_dict: Mapping[Tensor, Any]) -> dict[int, np.ndarray]:
        feeds: dict[int, np.ndarray] = {}
        for tensor, raw in feed_dict.items():
            if not isinstance(tensor, Tensor) or not isinstance(
                    tensor.op, Placeholder):
                raise FeedError(
                    f"only placeholders can be fed, got "
                    f"{getattr(tensor, 'name', tensor)!r}")
            value = np.asarray(raw, dtype=tensor.dtype)
            if value.shape != tensor.shape:
                raise FeedError(
                    f"feed for {tensor.name!r} has shape {value.shape}, "
                    f"placeholder expects {tensor.shape}")
            feeds[id(tensor.op)] = value
        return feeds
