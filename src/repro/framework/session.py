"""The session: compiled-plan execution with tracing hooks.

A :class:`Session` owns all runtime state for a graph — variable values
and the random stream — and executes each ``run`` call through a
compiled :class:`~repro.framework.compiler.ExecutionPlan`. The first run
of a fetch set pays a compilation: the fetch subgraph is lowered through
the optimization pipeline into a flat schedule whose operands are
integer slots, with feed coverage, input lookups, and free-after lists
all resolved at compile time. Subsequent runs of the same fetch set
reuse the cached plan (plans are invalidated when the graph gains
operations), so the steady-state interpreter loop does no per-run graph
analysis at all.

Each operation's execution can be individually timed: an optional tracer
receives one record per op per step, and the profiling stack in
:mod:`repro.profiling` is built entirely on this hook, just as the
paper's tools were built on TensorFlow's runtime tracing support.
Intermediate tensors are freed as soon as their statically computed last
consumer has run, which keeps peak memory manageable for the deep
convolutional workloads; the measured peak is validated against the
plan's memory planner by the tier-1 tests.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Protocol, Sequence

import numpy as np

from .errors import ExecutionError, FeedError
from .graph import Graph, Operation, Tensor, get_default_graph
from .memory import K_CONST, K_PLACEHOLDER
from .ops.state_ops import Placeholder, VariableOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .compiler import ExecutionPlan


class Tracer(Protocol):
    """Anything with a ``record`` method can observe op executions."""

    def record(self, op: Operation, seconds: float) -> None:  # pragma: no cover
        ...

    def finish_step(self, total_seconds: float,
                    peak_live_bytes: int = 0) -> None:  # pragma: no cover
        ...


class FaultInjector(Protocol):
    """Hook points :class:`Session.run` offers to a chaos-fault injector.

    See :mod:`repro.framework.faults` for the concrete implementation;
    the protocol keeps the executor decoupled from the fault model.
    """

    def on_feed(self, op: Operation,
                value: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...

    def before_op(self, op: Operation) -> None:  # pragma: no cover
        ...

    def after_op(self, op: Operation,
                 outputs: Sequence[np.ndarray]):  # pragma: no cover
        ...

    def end_step(self) -> None:  # pragma: no cover
        ...


@dataclass(frozen=True)
class SessionSnapshot:
    """A deep copy of a session's mutable run state.

    Captures variable values *and* the random-stream state, so restoring
    a snapshot and re-running a step reproduces it bit-for-bit — the
    property the resilient runner's rollback-and-retry relies on.
    """

    variables: dict[int, np.ndarray]
    variable_ops: dict[int, VariableOp]
    rng_state: dict


class RunContext:
    """Per-session state handed to every op's ``compute``."""

    def __init__(self, rng: np.random.Generator,
                 variables: dict[int, np.ndarray],
                 variable_ops: dict[int, VariableOp]):
        self.rng = rng
        self._variables = variables
        self._variable_ops = variable_ops

    def read_variable(self, op: VariableOp) -> np.ndarray:
        key = id(op)
        if key not in self._variables:
            self._variables[key] = op.initial_value.copy()
            self._variable_ops[key] = op
        return self._variables[key]

    def write_variable(self, op: VariableOp, value: np.ndarray) -> None:
        self._variables[id(op)] = np.asarray(value, dtype=op.output.dtype)
        self._variable_ops[id(op)] = op


class Session:
    """Executes a graph with its own variables and random stream."""

    def __init__(self, graph: Graph | None = None, seed: int = 0,
                 optimize=None):
        from .compiler import PlanOptions
        self.graph = graph if graph is not None else get_default_graph()
        #: optimization level plans are compiled at. None/'structural'
        #: keeps the classic interpreter's observable behaviour exactly;
        #: 'full' (or a PlanOptions) enables the optimizing passes.
        self.options = PlanOptions.coerce(optimize)
        self._variables: dict[int, np.ndarray] = {}
        self._variable_ops: dict[int, VariableOp] = {}
        self.rng = np.random.default_rng(seed)
        self._ctx = RunContext(self.rng, self._variables, self._variable_ops)
        # Compiled plans cached per fetch set. A cached plan is reused
        # only while it still matches the graph version and the exact
        # fetch tensors (see ExecutionPlan.matches) — fetch *names* are
        # just the lookup key and are never trusted on their own.
        self._plans: dict[tuple[str, ...], "ExecutionPlan"] = {}
        #: number of plan compilations / cache reuses this session did
        self.plan_compiles = 0
        self.plan_cache_hits = 0
        #: compile summaries (one dict per compilation, newest last)
        self.compile_log: list[dict] = []
        #: peak bytes of live intermediate tensors in the last run
        self.last_peak_live_bytes = 0
        #: optional chaos-fault injector consulted around every op
        #: execution (see :mod:`repro.framework.faults`)
        self.fault_injector: FaultInjector | None = None

    # -- variable access ------------------------------------------------------

    def variable_value(self, tensor: Tensor) -> np.ndarray:
        """Current value of a variable tensor (initializing it if needed)."""
        if not isinstance(tensor.op, VariableOp):
            raise FeedError(f"{tensor.name!r} is not a variable")
        return self._ctx.read_variable(tensor.op)

    def set_variable(self, tensor: Tensor, value: np.ndarray) -> None:
        if not isinstance(tensor.op, VariableOp):
            raise FeedError(f"{tensor.name!r} is not a variable")
        value = np.asarray(value, dtype=tensor.dtype)
        if value.shape != tensor.shape:
            raise FeedError(
                f"variable {tensor.name!r} has shape {tensor.shape}, "
                f"got {value.shape}")
        self._ctx.write_variable(tensor.op, value)

    # -- state snapshots ---------------------------------------------------------

    def state_snapshot(self) -> SessionSnapshot:
        """Capture all mutable run state (variables + RNG) for rollback."""
        return SessionSnapshot(
            variables={key: value.copy()
                       for key, value in self._variables.items()},
            variable_ops=dict(self._variable_ops),
            rng_state=copy.deepcopy(self.rng.bit_generator.state))

    def restore_snapshot(self, snapshot: SessionSnapshot) -> None:
        """Restore state captured by :meth:`state_snapshot`.

        The variable store is mutated in place (it is shared with the
        run context), so restoring never invalidates cached plans.
        """
        self._variables.clear()
        self._variables.update({key: value.copy()
                                for key, value in snapshot.variables.items()})
        self._variable_ops.clear()
        self._variable_ops.update(snapshot.variable_ops)
        self.rng.bit_generator.state = copy.deepcopy(snapshot.rng_state)

    # -- compilation -------------------------------------------------------------

    def compile(self, fetches, tracer: Tracer | None = None) -> "ExecutionPlan":
        """Compile (or fetch the cached plan for) a fetch set.

        ``run`` calls this implicitly; it is public so tools can inspect
        a plan — pass records, memory plan, schedule — without running.
        """
        fetch_list = [fetches] if isinstance(fetches, Tensor) else list(fetches)
        return self._plan_for(fetch_list, tracer)

    def _plan_for(self, fetch_list: list[Tensor],
                  tracer: Tracer | None) -> "ExecutionPlan":
        key = tuple(t.name for t in fetch_list)
        plan = self._plans.get(key)
        if plan is not None and plan.matches(self.graph, fetch_list):
            self.plan_cache_hits += 1
            return plan
        from .compiler import compile_plan
        plan = compile_plan(self.graph, fetch_list, self.options)
        self._plans[key] = plan
        self.plan_compiles += 1
        summary = plan.summary()
        self.compile_log.append(summary)
        if tracer is not None:
            record_compile = getattr(tracer, "record_compile", None)
            if record_compile is not None:
                record_compile(summary)
        return plan

    # -- execution --------------------------------------------------------------

    def run(self, fetches, feed_dict: Mapping[Tensor, Any] | None = None,
            tracer: Tracer | None = None, check_numerics: bool = False):
        """Execute the graph and return the value(s) of ``fetches``.

        Args:
            fetches: a Tensor or a list/tuple of Tensors.
            feed_dict: maps Placeholder tensors to numpy values.
            tracer: optional observer receiving one record per executed op.
            check_numerics: if True, raise :class:`ExecutionError` naming
                the first operation that produces a NaN or Inf — the
                debugging aid for diverging training runs.
        """
        single = isinstance(fetches, Tensor)
        fetch_list: list[Tensor] = [fetches] if single else list(fetches)
        feeds = self._validate_feeds(feed_dict or {})
        plan = self._plan_for(fetch_list, tracer)
        for op in plan.placeholders:
            if id(op) not in feeds:
                raise FeedError(
                    f"placeholder {op.name!r} is required but was not fed")

        now = time.perf_counter  # local binding: called twice per op
        ctx = self._ctx
        injector = self.fault_injector
        values: list = [None] * plan.num_slots
        live_bytes = 0
        peak_bytes = 0
        step_start = now() if tracer is not None else 0.0
        try:
            for step in plan.steps:
                op = step.op
                kind = step.kind
                if kind == K_PLACEHOLDER:
                    fed = feeds[id(op)]
                    if injector is not None:
                        fed = injector.on_feed(op, fed)
                    values[step.output_slots[0]] = fed
                    live_bytes += fed.nbytes
                    continue
                op_start = now() if tracer is not None else 0.0
                try:
                    if injector is not None:
                        injector.before_op(op)
                    if kind == K_CONST:
                        outputs = (step.const_value,)
                    else:
                        args = tuple(values[slot]
                                     for slot in step.input_slots)
                        outputs = op.compute(args, ctx)
                    if injector is not None:
                        outputs = injector.after_op(op, outputs)
                except Exception as exc:
                    if isinstance(exc, ExecutionError):
                        raise
                    raise ExecutionError(
                        op.name, str(exc),
                        input_shapes=[t.shape for t in op.inputs]) from exc
                if tracer is not None:
                    tracer.record(op, now() - op_start)
                if check_numerics:
                    for tensor, value in zip(op.outputs, outputs):
                        value = np.asarray(value)
                        if (np.issubdtype(value.dtype, np.floating)
                                and not np.isfinite(value).all()):
                            bad = ("NaN" if np.isnan(value).any() else "Inf")
                            raise ExecutionError(
                                op.name,
                                f"produced {bad} in {tensor.name} "
                                f"(check_numerics)")
                if step.validated:
                    # Steady state: kernels return ndarrays of the
                    # declared shapes, so skip the asarray normalization
                    # copy and the shape comparison entirely.
                    for slot, value in zip(step.output_slots, outputs):
                        values[slot] = value
                        live_bytes += value.nbytes
                else:
                    # First execution of this step: normalize any
                    # non-ndarray outputs and check declared shapes.
                    for slot, tensor, value in zip(step.output_slots,
                                                   op.outputs, outputs):
                        value = np.asarray(value)
                        if value.shape != tensor.shape:
                            raise ExecutionError(
                                op.name,
                                f"produced shape {value.shape}, declared "
                                f"{tensor.shape} for {tensor.name}")
                        values[slot] = value
                        live_bytes += value.nbytes
                    step.validated = True
                if live_bytes > peak_bytes:
                    peak_bytes = live_bytes
                for slot in step.free_slots:
                    live_bytes -= values[slot].nbytes
                    values[slot] = None
        finally:
            # Aborted runs still advance the injector's step counter, so
            # a retry of the same training step is a *new* injection step.
            if injector is not None:
                injector.end_step()
        self.last_peak_live_bytes = peak_bytes
        if tracer is not None:
            tracer.finish_step(now() - step_start, peak_bytes)

        results = [values[slot] for slot in plan.fetch_slots]
        return results[0] if single else results

    # -- helpers ----------------------------------------------------------------

    def _validate_feeds(self, feed_dict: Mapping[Tensor, Any]) -> dict[int, np.ndarray]:
        feeds: dict[int, np.ndarray] = {}
        for tensor, raw in feed_dict.items():
            if not isinstance(tensor, Tensor) or not isinstance(
                    tensor.op, Placeholder):
                raise FeedError(
                    f"only placeholders can be fed, got "
                    f"{getattr(tensor, 'name', tensor)!r}")
            value = np.asarray(raw, dtype=tensor.dtype)
            if value.shape != tensor.shape:
                raise FeedError(
                    f"feed for {tensor.name!r} has shape {value.shape}, "
                    f"placeholder expects {tensor.shape}")
            feeds[id(tensor.op)] = value
        return feeds
