"""Analytic device models: modeled op execution time on CPUs and GPUs.

The paper measures on a 4 GHz Skylake i7-6700k (with an Eigen thread pool
it can resize, Section V-E) and an NVidia GTX 960 (Fig. 5). Neither
backend is controllable from pure Python, so this module substitutes a
calibrated analytic model that converts each operation's
:class:`~repro.framework.cost_model.WorkEstimate` into time:

``time = dispatch_overhead + max(compute_time, memory_time)``

with compute and memory rates scaled by how much of the device's
parallelism the op can actually use. The key mechanism — the one the
paper's Figs. 5 and 6 turn on — is that an op can use at most
``trip_count / grain`` threads (Eigen refuses to split work finer than a
grain) and a GPU only approaches peak throughput when the trip count
covers its many thousands of lanes. Large convolutions and matmuls
therefore scale; skinny-tensor ops, reductions-to-scalar, and sequential
dynamic programming (CTC) do not.

Default constants approximate the paper's hardware (per-core ~26 GFLOP/s
at 4 GHz with AVX2 FMA; ~2.3 TFLOP/s and 112 GB/s for the GTX 960).
Absolute numbers are not the point; relative behaviour is.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cost_model import WorkEstimate


@dataclass(frozen=True)
class CPUDeviceModel:
    """A multicore CPU with an Eigen-style intra-op thread pool."""

    threads: int = 1
    per_core_flops: float = 26e9
    memory_bandwidth: float = 25e9
    # Per-op scheduling/dispatch cost of the framework's executor. The
    # paper's TensorFlow v0.8 spent on the order of 10us per op on small
    # kernels, which is why unrolled recurrent models (seq2seq) and
    # skinny-tensor models (memnet) show heavy elementwise/data-movement
    # time in its measured profiles.
    dispatch_overhead: float = 10e-6
    grain: float = 2048.0  # minimum parallel iterations worth one thread

    @property
    def name(self) -> str:
        return f"cpu{self.threads}"

    def effective_threads(self, work: WorkEstimate) -> float:
        usable = max(1.0, work.trip_count / self.grain)
        return min(float(self.threads), usable)

    def op_time(self, work: WorkEstimate) -> float:
        eff = self.effective_threads(work)
        compute = work.flops / (self.per_core_flops * eff)
        # Memory bandwidth is shared across cores; extra threads help
        # memory-bound ops sublinearly.
        memory = work.bytes_moved / (self.memory_bandwidth * eff ** 0.5)
        return self.dispatch_overhead + max(compute, memory)


@dataclass(frozen=True)
class GPUDeviceModel:
    """A discrete GPU with per-kernel launch cost and wide parallelism."""

    peak_flops: float = 2.3e12
    memory_bandwidth: float = 112e9
    launch_overhead: float = 5e-6
    saturation_trips: float = 16384.0  # trip count for ~50% utilization

    @property
    def name(self) -> str:
        return "gpu"

    def utilization(self, work: WorkEstimate) -> float:
        return work.trip_count / (work.trip_count + self.saturation_trips)

    def op_time(self, work: WorkEstimate) -> float:
        util = max(self.utilization(work), 1.0 / self.saturation_trips)
        compute = work.flops / (self.peak_flops * util)
        memory = work.bytes_moved / (self.memory_bandwidth * max(util, 0.05))
        return self.launch_overhead + max(compute, memory)


DeviceModel = CPUDeviceModel | GPUDeviceModel

# The configurations the paper reports against.
PAPER_CPU = CPUDeviceModel(threads=1)
PAPER_CPU_PARALLEL = CPUDeviceModel(threads=8)
PAPER_GPU = GPUDeviceModel()


def cpu(threads: int = 1) -> CPUDeviceModel:
    """A CPU model with ``threads`` intra-op worker threads."""
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    return CPUDeviceModel(threads=threads)


def gpu() -> GPUDeviceModel:
    return GPUDeviceModel()
