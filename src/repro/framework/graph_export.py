"""Dataflow-graph inspection: networkx export, statistics, DOT rendering.

The paper emphasizes that a standard interface makes "simply inspecting
the model's dataflow graph" straightforward. This module provides the
inspection tools: convert a graph (or the pruned subgraph behind a fetch)
to a ``networkx.DiGraph``, compute structural statistics architects care
about (critical-path length, width, op-type histograms, arithmetic
intensity), and emit Graphviz DOT for visualization.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import networkx as nx

from .cost_model import WorkEstimate
from .graph import Graph, Operation, Tensor


def to_networkx(graph: Graph,
                fetches: list[Tensor] | None = None) -> nx.DiGraph:
    """Convert a graph (optionally pruned to ``fetches``) to networkx.

    Node keys are operation names; node attributes carry ``op_type``,
    ``op_class``, and output shapes; edge attributes carry the tensor
    name and element count.
    """
    ops = graph.subgraph(fetches) if fetches is not None else graph.operations
    included = {op.name for op in ops}
    result = nx.DiGraph()
    for op in ops:
        result.add_node(op.name, op_type=op.type_name,
                        op_class=op.op_class.name,
                        output_shapes=[t.shape for t in op.outputs])
    for op in ops:
        for tensor in op.inputs:
            if tensor.op.name in included:
                result.add_edge(tensor.op.name, op.name,
                                tensor=tensor.name, elements=tensor.size)
    return result


@dataclass(frozen=True)
class GraphStats:
    """Structural statistics of a dataflow graph."""

    num_ops: int
    num_edges: int
    critical_path_length: int
    max_width: int
    op_type_histogram: dict[str, int]
    total_work: WorkEstimate

    @property
    def average_parallelism(self) -> float:
        """Ops divided by critical path: the DAG's inherent parallelism."""
        if self.critical_path_length == 0:
            return 0.0
        return self.num_ops / self.critical_path_length


def graph_stats(graph: Graph,
                fetches: list[Tensor] | None = None) -> GraphStats:
    """Compute structural statistics for a graph or fetch subgraph."""
    ops = graph.subgraph(fetches) if fetches is not None else graph.operations
    included = {op.name for op in ops}
    # Longest path via DP over the construction (topological) order.
    depth: dict[str, int] = {}
    num_edges = 0
    for op in ops:
        parents = [t.op.name for t in op.inputs if t.op.name in included]
        num_edges += len(parents)
        depth[op.name] = 1 + max((depth[p] for p in parents), default=0)
    critical = max(depth.values(), default=0)
    width = Counter(depth.values())
    total = WorkEstimate.zero()
    for op in ops:
        total = total + op.work()
    return GraphStats(
        num_ops=len(ops),
        num_edges=num_edges,
        critical_path_length=critical,
        max_width=max(width.values(), default=0),
        op_type_histogram=dict(Counter(op.type_name for op in ops)),
        total_work=total)


def static_peak_bytes(graph: Graph,
                      fetches: list[Tensor] | None = None,
                      options=None) -> int:
    """Peak live intermediate bytes, computed statically.

    Compiles the fetch set (at the given optimization ``options``; the
    default ``None`` is the structural level, where every subgraph op
    executes) and returns the memory planner's peak, which replays the
    executor's exact policy — tensors materialize when their op runs and
    die after their statically computed last consumer; fetched tensors
    live to the end. By construction this matches
    ``Session.last_peak_live_bytes`` for a session compiled at the same
    options, which the test suite asserts; use it to size memory before
    committing to a configuration.

    With ``fetches=None`` the whole graph is planned: every tensor no
    operation consumes is pinned as a fetch, so unconsumed outputs stay
    live to the end, as they would if fetched.
    """
    from .compiler import compile_plan

    if fetches is None:
        fetches = [tensor for op in graph.operations
                   for tensor in op.outputs if not graph.consumers(tensor)]
    plan = compile_plan(graph, fetches, options)
    return plan.memory.planned_peak_bytes


_CLASS_COLORS = {
    "MATRIX": "lightblue",
    "CONVOLUTION": "lightsalmon",
    "ELEMENTWISE": "lightyellow",
    "REDUCTION_EXPANSION": "lightgreen",
    "RANDOM_SAMPLING": "plum",
    "OPTIMIZATION": "lightpink",
    "DATA_MOVEMENT": "lightgray",
    "STATE": "white",
    "CONTROL": "white",
}


def to_dot(graph: Graph, fetches: list[Tensor] | None = None,
           max_ops: int = 500) -> str:
    """Render (a prefix of) the graph as Graphviz DOT.

    Large graphs are truncated at ``max_ops`` nodes to stay renderable;
    a comment records the truncation.
    """
    ops = graph.subgraph(fetches) if fetches is not None else graph.operations
    truncated = len(ops) > max_ops
    ops = ops[:max_ops]
    included = {op.name for op in ops}
    lines = ["digraph dataflow {", "  rankdir=TB;",
             "  node [style=filled, shape=box, fontsize=10];"]
    if truncated:
        lines.append(f"  // truncated to first {max_ops} operations")
    for op in ops:
        color = _CLASS_COLORS.get(op.op_class.name, "white")
        label = f"{op.name}\\n{op.type_name}"
        lines.append(f'  "{op.name}" [label="{label}", fillcolor={color}];')
    for op in ops:
        for tensor in op.inputs:
            if tensor.op.name in included:
                lines.append(f'  "{tensor.op.name}" -> "{op.name}" '
                             f'[label="{"x".join(map(str, tensor.shape))}"'
                             ", fontsize=8];")
    lines.append("}")
    return "\n".join(lines)
