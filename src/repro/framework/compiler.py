"""The plan compiler: fetch sets become compiled ``ExecutionPlan``\\ s.

Section III-C of the paper observes that every major framework converged
on "an application-level, compiler-esque optimizer" between graph
construction and execution. This module is that component, unified with
execution: :func:`compile_plan` lowers a ``(graph, fetches)`` pair
through a pass pipeline —

    prune -> identity elimination -> constant folding -> CSE
          -> LSTM fusion -> dead-code elimination -> memory planning
          -> scheduling

— into an :class:`ExecutionPlan`: a flat list of :class:`CompiledStep`
entries whose operands are precomputed integer *slots* instead of
name-keyed dictionaries, plus a free-after list per step. Everything the
old interpreter re-derived per run (refcounts, feed coverage, input
lookups) is resolved here, once.

Two properties the pipeline is built around:

* **Original operations execute.** Optimizations rewire the *schedule*
  (slot aliasing, synthesized constants, fused nodes) but surviving
  steps reference the original graph's operations. Variable state is
  keyed by operation identity, fault injectors match on op names, and
  tracers attribute time to ops — all of which keep working unchanged.
  Synthesized ops (folded constants, fused LSTM cells) live in a private
  scratch graph owned by the plan.
* **Bit-for-bit numerics.** Passes never change the value any fetched
  or surviving tensor sees: stateful/random/optimizer ops are never
  folded, merged, or eliminated (preserving RNG draw order), folding
  runs the op's own kernel, and fusion only fires when the fused kernel
  is a drop-in for the composed subtree.

Plans record the graph version they were compiled against; the session
recompiles when the graph has since gained operations (the stale-plan
hazard the old name-keyed cache had).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from .errors import GraphError
from .graph import Graph, Operation, Tensor
from .memory import K_COMPUTE, K_CONST, K_PLACEHOLDER, MemoryPlan, plan_memory
from .ops.state_ops import Const, Identity, Placeholder
from .rewrite import (_FOLD_SIZE_LIMIT, RewriteStats, _FoldContext, _attr_key,
                      _is_pure)


@dataclass(frozen=True)
class PlanOptions:
    """Which optimization passes a plan compilation runs.

    ``structural()`` (every pass off) preserves the classic
    interpreter's observable behaviour exactly — every subgraph op
    executes, is traced, and is charged to the memory accounting — while
    still gaining slot-indexed dispatch and compile-time feed checking.
    ``full()`` enables the whole pipeline. Plain sessions default to
    structural; the workload models opt into full.

    ``backend`` selects how the scheduled plan executes: ``"interp"``
    dispatches one step at a time in the session's interpreter loop;
    ``"codegen"`` additionally partitions the schedule into regions of
    pure compute steps and ``exec``-compiles one generated numpy kernel
    per region (see :mod:`repro.framework.codegen`). The backend is part
    of the plan-cache key and is orthogonal to the pass flags.
    """

    eliminate_identities: bool = True
    fold_constants: bool = True
    merge_subexpressions: bool = True
    fuse_lstm: bool = True
    backend: str = "interp"

    _BACKENDS = ("interp", "codegen")

    def __post_init__(self):
        if self.backend not in self._BACKENDS:
            raise ValueError(
                f"unknown plan backend {self.backend!r}; expected one of "
                f"{self._BACKENDS}")

    @classmethod
    def structural(cls) -> "PlanOptions":
        return cls(eliminate_identities=False, fold_constants=False,
                   merge_subexpressions=False, fuse_lstm=False)

    @classmethod
    def full(cls) -> "PlanOptions":
        return cls()

    @classmethod
    def coerce(cls, value) -> "PlanOptions":
        """Accept an options object, a level name, or None (structural).

        Level strings may carry a ``+codegen`` suffix (and the bare
        string ``"codegen"`` means ``full`` with the codegen backend).
        """
        if value is None:
            return cls.structural()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            level = value.lower()
            backend = "interp"
            if level == "codegen":
                return cls(backend="codegen")
            if level.endswith("+codegen"):
                level = level[:-len("+codegen")]
                backend = "codegen"
            if level in ("structural", "none"):
                return replace(cls.structural(), backend=backend)
            if level in ("full", "all"):
                return replace(cls.full(), backend=backend)
            raise ValueError(
                f"unknown optimization level {value!r}; "
                "expected 'structural'/'none' or 'full'/'all' "
                "(optionally with a '+codegen' suffix), or 'codegen'")
        raise TypeError(
            f"optimize must be a PlanOptions, a level name, or None; "
            f"got {type(value).__name__}")

    def describe(self) -> str:
        flags = replace(self, backend="interp")
        if flags == PlanOptions.full():
            base = "full"
        elif flags == PlanOptions.structural():
            base = "structural"
        else:
            enabled = [name for name, on in (
                ("identity", self.eliminate_identities),
                ("fold", self.fold_constants),
                ("cse", self.merge_subexpressions),
                ("fuse", self.fuse_lstm)) if on]
            base = "+".join(enabled) if enabled else "structural"
        return base if self.backend == "interp" else base + "+codegen"


#: optimization-pass names (as used by quarantine and pass records)
#: mapped to the PlanOptions flag that enables each pass
PASS_FLAGS = {
    "identity": "eliminate_identities",
    "fold": "fold_constants",
    "cse": "merge_subexpressions",
    "fuse": "fuse_lstm",
}


@dataclass(frozen=True)
class QuarantineEntry:
    """One quarantined compiler pass in a :class:`PassQuarantine`.

    ``sticky`` entries persist until explicitly cleared — they record a
    rewrite that has been *blamed* for a failure (via step provenance)
    and must not run again for this graph. Non-sticky ("soft") entries
    implement temporary tier demotion and are lifted wholesale when the
    healing policy re-escalates after enough clean steps.
    """

    pass_name: str
    reason: str = ""
    op_name: str | None = None
    sticky: bool = True

    def as_dict(self) -> dict:
        return {"pass": self.pass_name, "reason": self.reason,
                "op": self.op_name, "sticky": self.sticky}


class PassQuarantine:
    """Pass-health registry: which rewrites are disabled for a graph.

    Owned by a :class:`~repro.framework.session.Session` (one registry
    per session, hence per graph). The session filters its base
    :class:`PlanOptions` through :meth:`filter` before every plan
    lookup, so quarantining or clearing a pass transparently invalidates
    cached plans — the next ``run`` recompiles without the offending
    rewrite. ``version`` increments on every mutation, for observers.
    """

    def __init__(self):
        self._entries: dict[str, QuarantineEntry] = {}
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> tuple[QuarantineEntry, ...]:
        return tuple(self._entries.values())

    def is_quarantined(self, pass_name: str) -> bool:
        return pass_name in self._entries

    def has_soft(self) -> bool:
        return any(not e.sticky for e in self._entries.values())

    def quarantine(self, pass_name: str, *, reason: str = "",
                   op_name: str | None = None,
                   sticky: bool = True) -> QuarantineEntry:
        """Disable ``pass_name`` for this session until cleared/lifted."""
        if pass_name not in PASS_FLAGS and pass_name != "codegen":
            raise ValueError(
                f"unknown compiler pass {pass_name!r}; expected one of "
                f"{sorted(PASS_FLAGS) + ['codegen']}")
        entry = QuarantineEntry(pass_name, reason=reason, op_name=op_name,
                                sticky=sticky)
        self._entries[pass_name] = entry
        self.version += 1
        return entry

    def clear(self, pass_name: str | None = None) -> list[str]:
        """Explicitly clear one pass (or all); returns what was cleared."""
        names = ([pass_name] if pass_name is not None
                 else list(self._entries))
        cleared = [name for name in names if self._entries.pop(name, None)]
        if cleared:
            self.version += 1
        return cleared

    def lift_soft(self) -> list[str]:
        """Remove non-sticky entries (re-escalation); sticky ones stay."""
        lifted = [name for name, entry in self._entries.items()
                  if not entry.sticky]
        for name in lifted:
            del self._entries[name]
        if lifted:
            self.version += 1
        return lifted

    def filter(self, options: "PlanOptions") -> "PlanOptions":
        """``options`` with every quarantined pass forced off.

        Quarantining the pseudo-pass ``"codegen"`` forces the plan
        backend back to the interpreter; the pass flags are untouched.
        """
        if not self._entries:
            return options
        disabled = {PASS_FLAGS[name]: False for name in self._entries
                    if name in PASS_FLAGS}
        if "codegen" in self._entries:
            disabled["backend"] = "interp"
        return replace(options, **disabled)

    def as_dict(self) -> dict:
        return {"version": self.version,
                "entries": [e.as_dict() for e in self.entries]}


@dataclass(frozen=True)
class PassRecord:
    """Observability record for one compiler pass."""

    name: str
    ops_before: int
    ops_after: int
    detail: str = ""
    planned_peak_bytes: int = 0

    @property
    def removed(self) -> int:
        return self.ops_before - self.ops_after

    def as_dict(self) -> dict:
        return {"name": self.name, "ops_before": self.ops_before,
                "ops_after": self.ops_after, "detail": self.detail,
                "planned_peak_bytes": self.planned_peak_bytes}


class CompiledStep:
    """One schedulable unit of an execution plan.

    Slots index into the executor's flat value table. ``free_slots``
    lists the slots whose last use is this step (or that this step
    produces and nothing consumes); the executor drops them immediately
    after the step, which is what keeps peak memory bounded.
    ``validated`` flips to True after the first successful run checks
    the op's declared output shapes, so steady-state dispatch skips both
    the shape check and the ``np.asarray`` normalization copy.
    """

    __slots__ = ("op", "kind", "input_slots", "output_slots", "free_slots",
                 "const_value", "validated", "provenance", "origin_pass")

    def __init__(self, op: Operation, kind: int,
                 input_slots: tuple[int, ...], output_slots: tuple[int, ...],
                 const_value: np.ndarray | None = None,
                 provenance: tuple[str, ...] = (),
                 origin_pass: str | None = None):
        self.op = op
        self.kind = kind
        self.input_slots = input_slots
        self.output_slots = output_slots
        self.free_slots: tuple[int, ...] = ()
        self.const_value = const_value
        self.validated = False
        #: for synthesized ops, the source-graph op names this step
        #: replaced (originating op first) and the pass that made it —
        #: the blame links ExecutionError carries out of the executor
        self.provenance = provenance
        self.origin_pass = origin_pass

    def __repr__(self) -> str:
        return (f"<CompiledStep {self.op.name!r} in={self.input_slots} "
                f"out={self.output_slots} free={self.free_slots}>")


class ExecutionPlan:
    """A compiled, directly executable schedule for one fetch set."""

    def __init__(self, *, graph: Graph, graph_version: int,
                 fetches: tuple[Tensor, ...], options: PlanOptions,
                 steps: list[CompiledStep], num_slots: int,
                 fetch_slots: tuple[int, ...],
                 placeholders: tuple[Operation, ...],
                 memory: MemoryPlan, pass_records: list[PassRecord],
                 stats: RewriteStats, fused_cells: int,
                 compile_seconds: float, plan_graph: Graph):
        self.graph = graph
        self.graph_version = graph_version
        self.fetches = fetches
        self.options = options
        self.steps = steps
        self.num_slots = num_slots
        self.fetch_slots = fetch_slots
        #: placeholder ops that must be fed for this plan to run
        self.placeholders = placeholders
        self.memory = memory
        self.pass_records = pass_records
        self.stats = stats
        self.fused_cells = fused_cells
        self.compile_seconds = compile_seconds
        # Keeps synthesized ops (folded Consts, fused cells) alive and
        # out of the user's graph.
        self.plan_graph = plan_graph
        #: codegen-backend schedule: a mixed list of CompiledStep and
        #: CompiledRegion entries covering exactly the steps above, or
        #: None for interpreter plans (see repro.framework.codegen)
        self.program = None

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def regions(self) -> tuple:
        """The plan's CompiledRegions (empty for interpreter plans)."""
        if self.program is None:
            return ()
        from .memory import K_REGION
        return tuple(entry for entry in self.program
                     if entry.kind == K_REGION)

    def kernel_sources(self) -> list[tuple[str, str]]:
        """``(label, generated_source)`` for every compiled region."""
        return [(region.label, region.source) for region in self.regions]

    @property
    def planned_peak_bytes(self) -> int:
        return self.memory.planned_peak_bytes

    def matches(self, graph: Graph, fetch_list: list[Tensor]) -> bool:
        """Is this plan still valid for ``fetch_list`` on ``graph``?

        Requires the same graph object at the same version and the same
        fetch *tensors* by identity — names alone are not enough, since
        an unrelated graph can mint colliding names.
        """
        return (graph is self.graph
                and graph.version == self.graph_version
                and len(fetch_list) == len(self.fetches)
                and all(a is b for a, b in zip(fetch_list, self.fetches)))

    def summary(self) -> dict:
        """JSON-serializable description, recorded into traces."""
        return {
            "fetches": [t.name for t in self.fetches],
            "options": self.options.describe(),
            "ops_in": self.stats.ops_in,
            "ops_out": self.stats.ops_out,
            "num_steps": self.num_steps,
            "num_slots": self.num_slots,
            "fused_cells": self.fused_cells,
            "compile_seconds": self.compile_seconds,
            "passes": [record.as_dict() for record in self.pass_records],
            "memory": self.memory.as_dict(),
        }

    def report(self) -> str:
        """Human-readable pass-by-pass table (``repro compile --report``)."""
        lines = [f"plan: [{', '.join(t.name for t in self.fetches)}]  "
                 f"options={self.options.describe()}",
                 f"  {'pass':<10s} {'ops':>14s}  {'planned peak':>12s}  detail"]
        for record in self.pass_records:
            ops = f"{record.ops_before} -> {record.ops_after}"
            lines.append(
                f"  {record.name:<10s} {ops:>14s}  "
                f"{_format_bytes(record.planned_peak_bytes):>12s}  "
                f"{record.detail}")
        m = self.memory
        lines.append(
            f"  {'memory':<10s} planned peak "
            f"{_format_bytes(m.planned_peak_bytes)}; arena "
            f"{_format_bytes(m.arena_peak_bytes)} in {m.num_buffers} "
            f"buffers (hit rate {m.hit_rate:.1%}, saves "
            f"{_format_bytes(m.reuse_saving_bytes)}/step)")
        if self.program is not None:
            regions = self.regions
            covered = sum(len(region.steps) for region in regions)
            collapsed = sum(region.collapsed for region in regions)
            lines.append(
                f"  {'codegen':<10s} {len(regions)} regions covering "
                f"{covered}/{self.num_steps} steps; {collapsed} ops "
                f"collapsed into larger expressions")
        lines.append(
            f"  {'compile':<10s} {self.compile_seconds * 1e3:.2f} ms; "
            f"{self.num_steps} steps over {self.num_slots} slots; "
            f"{self.fused_cells} LSTM cells fused")
        return "\n".join(lines)


def _format_bytes(count: int) -> str:
    if count >= 1 << 20:
        return f"{count / (1 << 20):.2f} MB"
    if count >= 1 << 10:
        return f"{count / (1 << 10):.1f} KB"
    return f"{count} B"


class _Values:
    """The compile-time value table: one entry per tensor value.

    Passes retire values by *aliasing* them to an equivalent earlier
    value (identity elimination, CSE); ``resolve`` follows alias chains
    to the canonical id.
    """

    def __init__(self):
        self.shape: list[tuple[int, ...]] = []
        self.dtype: list[np.dtype] = []
        self.nbytes: list[int] = []
        self.const: list[np.ndarray | None] = []
        self.alias: dict[int, int] = {}

    def new(self, tensor: Tensor) -> int:
        vid = len(self.shape)
        self.shape.append(tensor.shape)
        self.dtype.append(tensor.dtype)
        self.nbytes.append(tensor.size * tensor.dtype.itemsize)
        self.const.append(None)
        return vid

    def resolve(self, vid: int) -> int:
        alias = self.alias
        while vid in alias:
            vid = alias[vid]
        return vid

    def redirect(self, vid: int, target: int) -> None:
        if vid != target:
            self.alias[vid] = target

    def spec(self, vid: int) -> tuple:
        return (self.shape[vid], self.dtype[vid].name, self.nbytes[vid])


class _Node:
    """A mutable scheduling node used while passes run."""

    __slots__ = ("op", "kind", "in_vids", "out_vids", "const_value",
                 "provenance", "origin_pass")

    def __init__(self, op: Operation, kind: int, in_vids: list[int],
                 out_vids: list[int],
                 const_value: np.ndarray | None = None,
                 provenance: tuple[str, ...] = (),
                 origin_pass: str | None = None):
        self.op = op
        self.kind = kind
        self.in_vids = in_vids
        self.out_vids = out_vids
        self.const_value = const_value
        self.provenance = provenance
        self.origin_pass = origin_pass


def compile_plan(graph: Graph, fetches, options=None) -> ExecutionPlan:
    """Compile ``fetches`` over ``graph`` into an :class:`ExecutionPlan`."""
    options = PlanOptions.coerce(options)
    start = time.perf_counter()
    fetch_list = list(fetches)
    for tensor in fetch_list:
        if not isinstance(tensor, Tensor):
            raise GraphError(
                f"fetches must be Tensors, got {type(tensor).__name__}")
    graph_version = graph.version
    sub_ops = graph.subgraph(fetch_list)
    sub_ids = {id(op) for op in sub_ops}
    for tensor in fetch_list:
        if id(tensor.op) not in sub_ids:
            raise GraphError(
                f"fetch {tensor.name!r} is not an operation of the "
                "compiled graph (was it built in a different graph?)")

    values = _Values()
    vid_of: dict[str, int] = {}
    nodes: list[_Node] = []
    for op in sub_ops:
        in_vids = [values.resolve(vid_of[t.name]) for t in op.inputs]
        out_vids = []
        for tensor in op.outputs:
            vid = values.new(tensor)
            vid_of[tensor.name] = vid
            out_vids.append(vid)
        if isinstance(op, Placeholder):
            kind, const_value = K_PLACEHOLDER, None
        elif isinstance(op, Const):
            kind = K_CONST
            const_value = np.asarray(op.attrs["value"])
            values.const[out_vids[0]] = const_value
        else:
            kind, const_value = K_COMPUTE, None
        nodes.append(_Node(op, kind, in_vids, out_vids, const_value))

    def fetch_vids() -> list[int]:
        return [values.resolve(vid_of[t.name]) for t in fetch_list]

    records: list[PassRecord] = []

    def record(name: str, before: int, detail: str) -> None:
        records.append(PassRecord(
            name, before, len(nodes), detail,
            _simulate_peak(nodes, values, fetch_vids())))

    stats = RewriteStats(ops_in=len(sub_ops))
    record("prune", len(graph),
           f"{len(graph) - len(nodes)} ops outside the fetch subgraph")

    plan_graph = Graph()
    if options.eliminate_identities:
        before = len(nodes)
        nodes = _pass_identity(nodes, values)
        stats.identities_removed = before - len(nodes)
        record("identity", before,
               f"{stats.identities_removed} Identity ops bypassed")
    if options.fold_constants:
        before = len(nodes)
        nodes, folded = _pass_fold(nodes, values, plan_graph)
        stats.constants_folded = folded
        record("fold", before, f"{folded} pure ops folded to constants")
    if options.merge_subexpressions:
        before = len(nodes)
        nodes, merged = _pass_cse(nodes, values)
        stats.subexpressions_merged = merged
        record("cse", before, f"{merged} duplicate pure ops merged")
    fused_cells = 0
    if options.fuse_lstm:
        before = len(nodes)
        nodes, fused_cells = _pass_fuse(
            graph, fetch_list, sub_ops, nodes, values, vid_of, plan_graph)
        record("fuse", before, f"{fused_cells} LSTM cells fused")
    if (options.eliminate_identities or options.fold_constants
            or options.merge_subexpressions or options.fuse_lstm):
        # Clean up nodes the passes above orphaned. Structural plans
        # skip this: nothing in a pruned subgraph is dead, and the
        # invariant "every subgraph op is a step" must hold exactly.
        before = len(nodes)
        nodes = _pass_dce(nodes, values, fetch_vids())
        record("dce", before, f"{before - len(nodes)} dead ops removed")

    # -- schedule: compact slot assignment + free-after lists ---------------
    for node in nodes:
        node.in_vids = [values.resolve(vid) for vid in node.in_vids]
    final_fetch_vids = fetch_vids()

    slot_of: dict[int, int] = {}
    slot_specs: list[tuple] = []
    steps: list[CompiledStep] = []
    placeholders: list[Operation] = []
    for node in nodes:
        input_slots = tuple(slot_of[vid] for vid in node.in_vids)
        output_slots = []
        for vid in node.out_vids:
            slot = len(slot_specs)
            slot_of[vid] = slot
            slot_specs.append(values.spec(vid))
            output_slots.append(slot)
        steps.append(CompiledStep(node.op, node.kind, input_slots,
                                  tuple(output_slots), node.const_value,
                                  provenance=node.provenance,
                                  origin_pass=node.origin_pass))
        if node.kind == K_PLACEHOLDER:
            placeholders.append(node.op)

    fetch_slots = tuple(slot_of[vid] for vid in final_fetch_vids)
    pinned = set(fetch_slots)
    last_use: dict[int, int] = {}
    producer: dict[int, int] = {}
    for index, step in enumerate(steps):
        for slot in step.input_slots:
            last_use[slot] = index
        for slot in step.output_slots:
            producer[slot] = index
    free_lists: list[list[int]] = [[] for _ in steps]
    for slot in range(len(slot_specs)):
        if slot in pinned:
            continue
        index = last_use.get(slot)
        if index is None:
            # Produced but never consumed (e.g. an unused output of a
            # multi-output op): free it right after it materializes.
            index = producer[slot]
            if steps[index].kind == K_PLACEHOLDER:
                continue
        free_lists[index].append(slot)
    for step, frees in zip(steps, free_lists):
        step.free_slots = tuple(frees)

    memory = plan_memory(steps, slot_specs)
    stats.ops_out = len(steps)
    records.append(PassRecord(
        "schedule", len(nodes), len(steps),
        f"{len(slot_specs)} slots, {len(pinned)} pinned",
        memory.planned_peak_bytes))

    plan = ExecutionPlan(
        graph=graph, graph_version=graph_version,
        fetches=tuple(fetch_list), options=options, steps=steps,
        num_slots=len(slot_specs), fetch_slots=fetch_slots,
        placeholders=tuple(placeholders), memory=memory,
        pass_records=records, stats=stats, fused_cells=fused_cells,
        compile_seconds=time.perf_counter() - start, plan_graph=plan_graph)
    if options.backend == "codegen":
        from .codegen import build_program
        plan.program = build_program(steps, pinned, plan_graph)
        regions = plan.regions
        covered = sum(len(region.steps) for region in regions)
        collapsed = sum(region.collapsed for region in regions)
        records.append(PassRecord(
            "codegen", len(steps), len(plan.program),
            f"{len(regions)} regions over {covered} steps, "
            f"{collapsed} ops collapsed", memory.planned_peak_bytes))
        plan.compile_seconds = time.perf_counter() - start
    return plan


# -- passes -----------------------------------------------------------------


def _pass_identity(nodes: list[_Node], values: _Values) -> list[_Node]:
    """Bypass Identity nodes by aliasing their output to their input."""
    kept = []
    for node in nodes:
        node.in_vids = [values.resolve(vid) for vid in node.in_vids]
        if isinstance(node.op, Identity):
            values.redirect(node.out_vids[0], node.in_vids[0])
            continue
        kept.append(node)
    return kept


def _pass_fold(nodes: list[_Node], values: _Values,
               plan_graph: Graph) -> tuple[list[_Node], int]:
    """Evaluate pure ops with all-constant inputs at compile time.

    Folded results become synthesized ``Const`` steps in the plan's
    scratch graph, scheduled at the original op's position so accounting
    and injector/tracer hooks still see one step per surviving value.
    Folding is skipped when the kernel fails, produces non-finite values
    (so ``check_numerics`` still names the original op at run time), or
    disagrees with the declared output spec.
    """
    fold_ctx = _FoldContext()
    kept = []
    folded = 0
    # Provenance chains for folded values: a fold over already-folded
    # inputs inherits their source-op chain, so blame localization can
    # walk a cascade of folds back to every original op it absorbed.
    prov_of: dict[int, tuple[str, ...]] = {}
    for node in nodes:
        node.in_vids = [values.resolve(vid) for vid in node.in_vids]
        op = node.op
        foldable = (
            node.kind == K_COMPUTE and _is_pure(op) and node.in_vids
            and all(values.const[vid] is not None for vid in node.in_vids)
            and sum(t.size for t in op.outputs) <= _FOLD_SIZE_LIMIT)
        if foldable:
            arrays = tuple(values.const[vid] for vid in node.in_vids)
            try:
                outputs = [np.asarray(value)
                           for value in op.compute(arrays, fold_ctx)]
            except Exception:
                outputs = None
            if outputs is not None and all(
                    value.shape == tensor.shape
                    and value.dtype == tensor.dtype
                    and (not np.issubdtype(value.dtype, np.floating)
                         or bool(np.isfinite(value).all()))
                    for value, tensor in zip(outputs, op.outputs)):
                chain = [op.name]
                for vid in node.in_vids:
                    chain.extend(name for name in prov_of.get(vid, ())
                                 if name not in chain)
                provenance = tuple(chain)
                for vid, value in zip(node.out_vids, outputs):
                    const_op = Const(attrs={"value": value},
                                     name=f"{op.name}/folded",
                                     graph=plan_graph)
                    values.const[vid] = value
                    prov_of[vid] = provenance
                    kept.append(_Node(const_op, K_CONST, [], [vid], value,
                                      provenance=provenance,
                                      origin_pass="fold"))
                folded += 1
                continue
        kept.append(node)
    return kept, folded


def _pass_cse(nodes: list[_Node],
              values: _Values) -> tuple[list[_Node], int]:
    """Merge structurally identical pure nodes (including constants)."""
    index: dict[object, _Node] = {}
    kept = []
    merged = 0
    for node in nodes:
        node.in_vids = [values.resolve(vid) for vid in node.in_vids]
        op = node.op
        mergeable = (node.kind == K_CONST
                     or (node.kind == K_COMPUTE and _is_pure(op)))
        if mergeable:
            attrs = tuple(sorted(
                (name, _attr_key(value)) for name, value in op.attrs.items()))
            key = (op.type_name, attrs, tuple(node.in_vids))
            existing = index.get(key)
            if existing is not None:
                for mine, theirs in zip(node.out_vids, existing.out_vids):
                    values.redirect(mine, theirs)
                merged += 1
                continue
            index[key] = node
        kept.append(node)
    return kept, merged


def _pass_fuse(graph: Graph, fetch_list: list[Tensor],
               sub_ops: list[Operation], nodes: list[_Node],
               values: _Values, vid_of: dict[str, int],
               plan_graph: Graph) -> tuple[list[_Node], int]:
    """Replace recognized composed-LSTM subtrees with fused block steps.

    The structural matcher runs on the original graph; this pass then
    revalidates each match against the *current* (post-fold/CSE) node
    list: every non-constant interior op must still be live, and no
    interior value may escape to a surviving outside consumer or a
    fetch. Shared constants (e.g. a CSE-merged forget-bias scalar) are
    tolerated — they are simply left in place for DCE to judge.

    Escapes of the six *recoverable* interior tensors (the activated
    gates, tanh(new_c), and the joined concat — exactly what a training
    graph's backward pass reads) do not veto fusion: the pass emits a
    recovery node per escaping value — a Slice of the fused op's cached
    gates output, a Tanh of its new_c, or a Concat of the match's own
    x/h inputs — claiming the escaped vid, so outside consumers see
    bit-identical values. This is what lets fusion fire on training
    graphs, where it historically never did (fused_cells was 0 on every
    recorded benchmark).
    """
    from .fuse import find_lstm_matches
    from .ops.array_ops import Concat, Slice
    from .ops.math_ops import Tanh
    from .ops.rnn_ops import LSTMBlockCellOp

    matches = find_lstm_matches(graph, fetch_list, allow_recoverable=True)
    if not matches:
        return nodes, 0
    for node in nodes:
        node.in_vids = [values.resolve(vid) for vid in node.in_vids]
    op_by_id = {id(op): op for op in sub_ops}
    node_by_op = {id(node.op): node for node in nodes}
    fetch_vid_set = {values.resolve(vid_of[t.name]) for t in fetch_list}
    position = {id(node): index for index, node in enumerate(nodes)}
    consumers: dict[int, list[_Node]] = {}
    for node in nodes:
        for vid in node.in_vids:
            consumers.setdefault(vid, []).append(node)

    fused = 0
    dropped: set[int] = set()
    replacement: dict[int, list[_Node]] = {}
    for match in matches:
        removal: list[_Node] = []
        intact = True
        for op_id in match.interior:
            interior_op = op_by_id[op_id]
            node = node_by_op.get(op_id)
            if isinstance(interior_op, Const):
                # A (possibly shared) scalar like the forget bias: never
                # removed here; DCE collects it if fusion orphans it.
                continue
            if node is None:
                intact = False  # merged/folded away; pattern no longer ours
                break
            removal.append(node)
        if not intact:
            continue
        removal_ids = {id(node) for node in removal}
        anchor_node = node_by_op[id(match.anchor)]
        anchor_pos = position[id(anchor_node)]
        boundary = {values.resolve(vid_of[match.new_c.name]),
                    values.resolve(vid_of[match.new_h.name])}
        recoverable_vids: dict[int, str] = {}
        for role, tensor in match.recoverable.items():
            recoverable_vids.setdefault(
                values.resolve(vid_of[tensor.name]), role)
        # Escaped interior vids (role by vid) needing a recovery node.
        escapes: dict[int, str] = {}
        clean = True
        for node in removal:
            for vid in node.out_vids:
                if vid in boundary:
                    continue
                if vid in fetch_vid_set:
                    clean = False
                    break
                outside = [consumer for consumer in consumers.get(vid, ())
                           if id(consumer) not in removal_ids]
                if not outside:
                    continue
                role = recoverable_vids.get(vid)
                # Recovery nodes are emitted right after the fused op
                # (at the anchor's position), so every outside consumer
                # must be scheduled later — true by construction for
                # backward passes, but guarded for exotic graphs.
                if role is None or any(
                        position[id(consumer)] < anchor_pos
                        for consumer in outside):
                    clean = False
                    break
                escapes[vid] = role
            if not clean:
                break
        if not clean:
            continue

        in_tensors = (match.x, match.c, match.h, match.kernel, match.bias)
        in_vids = [values.resolve(vid_of[t.name]) for t in in_tensors]
        proxies = []
        for tensor, label in zip(in_tensors,
                                 ("x", "c", "h", "kernel", "bias")):
            proxies.append(Placeholder(
                attrs={"shape": tensor.shape, "dtype": tensor.dtype},
                name=f"{match.anchor.name}/fused_{label}",
                graph=plan_graph))
        block = LSTMBlockCellOp(
            [proxy.outputs[0] for proxy in proxies],
            attrs={"forget_bias": match.forget_bias},
            name=f"{match.anchor.name}/fused", graph=plan_graph)
        new_c_vid = values.resolve(vid_of[match.new_c.name])
        new_h_vid = values.resolve(vid_of[match.new_h.name])
        gates_vid = values.new(block.outputs[2])
        provenance = (match.anchor.name,) + tuple(
            node.op.name for node in removal
            if node.op is not match.anchor)
        fused_node = _Node(block, K_COMPUTE, in_vids,
                           [new_c_vid, new_h_vid, gates_vid],
                           provenance=provenance, origin_pass="fuse")

        # Recovery nodes for recoverable interior values the backward
        # pass (or any outside consumer) still reads: each claims the
        # escaped vid, recomputing the identical value from the fused
        # op's outputs. Emitted immediately after the fused node.
        emitted = [fused_node]
        hidden = match.c.shape[1]
        batch = match.c.shape[0]
        gate_column = {"i": 0, "j": 1, "f": 2, "o": 3}
        for vid, role in sorted(escapes.items()):
            escaped = match.recoverable[role]
            base = f"{match.anchor.name}/recovered_{role}"
            if role in gate_column:
                proxy = Placeholder(
                    attrs={"shape": block.outputs[2].shape,
                           "dtype": escaped.dtype},
                    name=f"{base}_gates", graph=plan_graph)
                recovery_op = Slice(
                    [proxy.outputs[0]],
                    attrs={"begin": (0, gate_column[role] * hidden),
                           "size": (batch, hidden)},
                    name=base, graph=plan_graph)
                recovery_in = [gates_vid]
            elif role == "tanh_c":
                proxy = Placeholder(
                    attrs={"shape": match.new_c.shape,
                           "dtype": escaped.dtype},
                    name=f"{base}_new_c", graph=plan_graph)
                recovery_op = Tanh([proxy.outputs[0]], name=base,
                                   graph=plan_graph)
                recovery_in = [new_c_vid]
            else:  # "joined": Concat(x, h) over the match's own inputs
                parts = []
                for tensor, tag in ((match.x, "x"), (match.h, "h")):
                    part = Placeholder(
                        attrs={"shape": tensor.shape,
                               "dtype": tensor.dtype},
                        name=f"{base}_{tag}", graph=plan_graph)
                    parts.append(part.outputs[0])
                recovery_op = Concat(parts, attrs={"axis": 1},
                                     name=base, graph=plan_graph)
                recovery_in = [values.resolve(vid_of[match.x.name]),
                               values.resolve(vid_of[match.h.name])]
            emitted.append(_Node(
                recovery_op, K_COMPUTE, recovery_in, [vid],
                provenance=(escaped.op.name, match.anchor.name),
                origin_pass="fuse"))
        replacement[id(anchor_node)] = emitted
        dropped.update(removal_ids - {id(anchor_node)})
        fused += 1

    if fused == 0:
        return nodes, 0
    out = []
    for node in nodes:
        node_id = id(node)
        if node_id in replacement:
            out.extend(replacement[node_id])
        elif node_id not in dropped:
            out.append(node)
    return out, fused


def _pass_dce(nodes: list[_Node], values: _Values,
              fetch_vids: list[int]) -> list[_Node]:
    """Drop pure nodes whose outputs nothing consumes.

    Placeholders are always kept (feed-coverage semantics must not
    depend on optimization level) and impure nodes are always kept
    (state mutation and RNG draw order are part of the program).
    """
    needed = set(fetch_vids)
    kept: list[_Node] = []
    for node in reversed(nodes):
        node.in_vids = [values.resolve(vid) for vid in node.in_vids]
        keep = (node.kind == K_PLACEHOLDER
                or (node.kind == K_COMPUTE and not _is_pure(node.op))
                or any(vid in needed for vid in node.out_vids))
        if keep:
            needed.update(node.in_vids)
            kept.append(node)
    kept.reverse()
    return kept


def _simulate_peak(nodes: list[_Node], values: _Values,
                   fetch_vids: list[int]) -> int:
    """Planned peak live bytes for the current node list.

    Mirrors the executor's accounting exactly: outputs materialize at
    their node, the peak is sampled after every non-placeholder node,
    and values die after their last consumer (fetches are pinned).
    """
    last_use: dict[int, int] = {}
    resolved_inputs: list[list[int]] = []
    for index, node in enumerate(nodes):
        in_vids = [values.resolve(vid) for vid in node.in_vids]
        resolved_inputs.append(in_vids)
        for vid in in_vids:
            last_use[vid] = index
    pinned = set(fetch_vids)
    frees: list[list[int]] = [[] for _ in nodes]
    for index, node in enumerate(nodes):
        for vid in node.out_vids:
            if vid in pinned:
                continue
            last = last_use.get(vid)
            if last is None:
                if node.kind != K_PLACEHOLDER:
                    frees[index].append(vid)
            else:
                frees[last].append(vid)
    live = peak = 0
    nbytes = values.nbytes
    for index, node in enumerate(nodes):
        for vid in node.out_vids:
            live += nbytes[vid]
        if node.kind != K_PLACEHOLDER and live > peak:
            peak = live
        for vid in frees[index]:
            live -= nbytes[vid]
    return peak
