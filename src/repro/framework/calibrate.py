"""Calibrate the CPU device model against the host machine.

The default :class:`~repro.framework.device_model.CPUDeviceModel`
constants approximate the paper's Skylake testbed. For analyses that
should reflect *this* machine instead, this module measures the three
constants empirically — dense FLOP rate (a blocked matmul), memory
bandwidth (large-array copies), and executor dispatch overhead (a chain
of trivial ops) — and returns a calibrated model.

Calibration is measurement, so results vary run to run; analyses that
must be deterministic (the figure benchmarks) keep the fixed defaults.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .device_model import CPUDeviceModel
from .graph import Graph
from .ops import state_ops
from .ops.math_ops import multiply
from .session import Session


@dataclass(frozen=True)
class CalibrationResult:
    """Measured machine constants with the derived device model."""

    flops_per_second: float
    bytes_per_second: float
    dispatch_overhead: float
    model: CPUDeviceModel

    def render(self) -> str:
        return (f"calibrated CPU: {self.flops_per_second / 1e9:.1f} GFLOP/s, "
                f"{self.bytes_per_second / 1e9:.1f} GB/s, "
                f"{self.dispatch_overhead * 1e6:.1f} us/op dispatch")


def measure_flops_rate(size: int = 384, repeats: int = 5) -> float:
    """Dense-matmul FLOP/s of the BLAS this process actually uses."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((size, size)).astype(np.float32)
    b = rng.standard_normal((size, size)).astype(np.float32)
    a @ b  # warm the BLAS threads/caches
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - start)
    return 2.0 * size ** 3 / best


def measure_bandwidth(megabytes: int = 32, repeats: int = 5) -> float:
    """Effective large-copy bandwidth in bytes/second."""
    source = np.ones(megabytes * (1 << 20) // 4, dtype=np.float32)
    destination = np.empty_like(source)
    np.copyto(destination, source)  # warm
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        np.copyto(destination, source)
        best = min(best, time.perf_counter() - start)
    return 2.0 * source.nbytes / best  # read + write


def measure_dispatch_overhead(chain_length: int = 300,
                              repeats: int = 5) -> float:
    """Seconds of executor overhead per op, from a chain of tiny ops."""
    graph = Graph()
    with graph.as_default():
        out = state_ops.constant(np.ones(2, dtype=np.float32))
        for _ in range(chain_length):
            out = multiply(out, np.float32(1.0))
    session = Session(graph, seed=0)
    session.run(out)  # warm plan cache and validation
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        session.run(out)
        best = min(best, time.perf_counter() - start)
    return best / chain_length


def calibrate_cpu(threads: int = 1) -> CalibrationResult:
    """Measure this machine and build a matching CPU device model."""
    flops = measure_flops_rate()
    bandwidth = measure_bandwidth()
    dispatch = measure_dispatch_overhead()
    model = CPUDeviceModel(threads=threads, per_core_flops=flops,
                           memory_bandwidth=bandwidth,
                           dispatch_overhead=dispatch)
    return CalibrationResult(flops_per_second=flops,
                             bytes_per_second=bandwidth,
                             dispatch_overhead=dispatch, model=model)
