"""Reverse-mode symbolic differentiation.

``gradients(ys, xs)`` extends the graph with a backward subgraph built out
of ordinary operations — ``Conv2DBackpropFilter``, ``MatMul`` with
transposes, ``ReluGrad``, ``AddN`` accumulators, and so on. This mirrors
TensorFlow's design and matters for fidelity: the paper's profiles
(Figs. 3 and 6) are dominated by exactly these generated backward
operations during training.
"""

from __future__ import annotations

import numpy as np

from .errors import DifferentiationError
from .graph import Operation, Tensor
from .ops import math_ops, state_ops


def _ones_like(tensor: Tensor) -> Tensor:
    return state_ops.constant(np.ones(tensor.shape, dtype=tensor.dtype))


def _forward_reachable(xs: list[Tensor]) -> set[int]:
    """ids of operations whose outputs depend on any of ``xs``."""
    graph = xs[0].graph
    reachable: set[int] = {id(x.op) for x in xs}
    frontier = [x.op for x in xs]
    while frontier:
        op = frontier.pop()
        for output in op.outputs:
            for consumer in graph.consumers(output):
                if id(consumer) not in reachable:
                    reachable.add(id(consumer))
                    frontier.append(consumer)
    return reachable


def gradients(ys: Tensor | list[Tensor], xs: list[Tensor],
              grad_ys: list[Tensor] | None = None) -> list[Tensor | None]:
    """Symbolic gradients of ``sum(ys)`` with respect to each of ``xs``.

    Returns one tensor per x (``None`` where y does not depend on x).
    ``grad_ys`` optionally seeds the output gradients; by default each y is
    seeded with ones (so scalar losses get d(loss)/dx).
    """
    if isinstance(ys, Tensor):
        ys = [ys]
    if not xs:
        return []
    if grad_ys is None:
        grad_ys = [_ones_like(y) for y in ys]
    if len(grad_ys) != len(ys):
        raise DifferentiationError(
            f"got {len(grad_ys)} grad_ys for {len(ys)} ys")

    graph = ys[0].graph
    on_path = _forward_reachable(xs)
    backward_ops = [op for op in graph.subgraph(ys) if id(op) in on_path]

    # Partial gradients accumulated per tensor name.
    partials: dict[str, list[Tensor]] = {}
    for y, gy in zip(ys, grad_ys):
        if gy.shape != y.shape:
            raise DifferentiationError(
                f"grad_y shape {gy.shape} does not match y shape {y.shape}")
        partials.setdefault(y.name, []).append(gy)

    def accumulated(tensor: Tensor) -> Tensor | None:
        parts = partials.get(tensor.name)
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        total = math_ops.add_n(parts)
        partials[tensor.name] = [total]
        return total

    for op in reversed(backward_ops):
        out_grads = [accumulated(t) for t in op.outputs]
        if all(g is None for g in out_grads):
            continue
        in_grads = op.gradient(out_grads)
        if len(in_grads) != len(op.inputs):
            raise DifferentiationError(
                f"{op.type_name}.gradient returned {len(in_grads)} grads "
                f"for {len(op.inputs)} inputs")
        for tensor, grad in zip(op.inputs, in_grads):
            if grad is None or id(tensor.op) not in on_path:
                continue
            if grad.shape != tensor.shape:
                raise DifferentiationError(
                    f"gradient for {tensor.name} has shape {grad.shape}, "
                    f"expected {tensor.shape} (from {op.type_name})")
            partials.setdefault(tensor.name, []).append(grad)

    return [accumulated(x) for x in xs]
