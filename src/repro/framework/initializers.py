"""Weight initializers.

Plain functions from ``(rng, shape)`` to numpy arrays. Workloads own a
seeded ``numpy.random.Generator`` for construction-time initialization,
so the full (graph, parameters) pair is reproducible from a single seed —
the paper's "standard, verified, reference workloads" requirement.
"""

from __future__ import annotations

from math import prod, sqrt

import numpy as np


def zeros(rng: np.random.Generator, shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(rng: np.random.Generator, shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def constant_fill(value: float):
    def init(rng: np.random.Generator, shape) -> np.ndarray:
        return np.full(shape, value, dtype=np.float32)
    return init


def _fans(shape) -> tuple[int, int]:
    """(fan_in, fan_out) following the Keras convention for conv filters."""
    if len(shape) < 1:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = prod(shape[:-2], start=1)
    return shape[-2] * receptive, shape[-1] * receptive


def glorot_uniform(rng: np.random.Generator, shape) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initializer."""
    fan_in, fan_out = _fans(shape)
    limit = sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(rng: np.random.Generator, shape) -> np.ndarray:
    """He et al. (2015) initializer, as used by residual networks."""
    fan_in, _ = _fans(shape)
    raw = rng.standard_normal(shape, dtype=np.float32)
    return raw * np.float32(sqrt(2.0 / fan_in))


def truncated_normal(stddev: float = 0.01):
    """AlexNet/VGG-style small-stddev normal, truncated at two sigma."""
    def init(rng: np.random.Generator, shape) -> np.ndarray:
        raw = rng.standard_normal(shape, dtype=np.float32)
        while True:
            bad = np.abs(raw) > 2.0
            if not bad.any():
                break
            raw[bad] = rng.standard_normal(int(bad.sum()),
                                           dtype=np.float32)
        return raw * np.float32(stddev)
    return init


def uniform(limit: float):
    def init(rng: np.random.Generator, shape) -> np.ndarray:
        return rng.uniform(-limit, limit, size=shape).astype(np.float32)
    return init
