"""Injectable clocks: time is a dependency, not an ambient global.

Every robustness layer in this repo — the resilient training runner, the
serving engine, and the distributed cluster runtime — treats timing as
part of its *semantics*: watchdogs, backoff sleeps, deadlines, straggler
detection, and message timeouts all change behaviour. Chaos tests can
only be deterministic if all of that timing flows through an injectable
clock object rather than ad-hoc ``time.perf_counter()`` calls.

Two implementations share the ``now()``/``sleep()`` protocol:

* :class:`SystemClock` — the real thing (``time.monotonic`` +
  ``time.sleep``), used in production runs;
* :class:`VirtualClock` — a manually-advanced clock where ``sleep`` *is*
  the advancement, used by the chaos suites so injected stalls and
  backoff waits cost no wall time and every latency is an exact function
  of the fault schedule.

(The serving layer re-exports both for backward compatibility; the
cluster runtime builds its per-worker :class:`~repro.distributed.clock.
ClusterClock` on the same protocol.)
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """The injectable-time protocol shared by all robustness layers."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...

    def sleep(self, seconds: float) -> None:  # pragma: no cover - protocol
        ...


class VirtualClock:
    """A manually-advanced clock for deterministic robustness tests.

    ``sleep`` *is* the advancement: injected stalls, breaker waits,
    backoff delays, and load-generator pacing all move virtual time
    forward, and nothing else does — so latencies, watchdog verdicts,
    and deadline outcomes are exact functions of the fault schedule.
    """

    def __init__(self, start: float = 0.0):
        self.time = float(start)

    def now(self) -> float:
        return self.time

    def sleep(self, seconds: float) -> None:
        self.time += max(0.0, float(seconds))


class SystemClock:
    """The real thing: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)
