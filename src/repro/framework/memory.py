"""Static buffer-lifetime planning for compiled execution plans.

The compiler (:mod:`repro.framework.compiler`) produces a fixed schedule
of steps with precomputed slot lifetimes, which makes memory planning a
purely static problem: every intermediate tensor's birth (the step that
produces it) and death (the step after which it is freed) are known
before anything runs. This module solves the classic register-allocation
shaped problem over that schedule: assign each intermediate to a buffer
in a recycled arena keyed by ``(shape, dtype)``, so tensors with
disjoint lifetimes and identical layouts share storage.

Because numpy kernels own their output allocations, the executor does
not literally write into arena buffers; the plan quantifies what a
buffer-reusing allocator achieves on this schedule, and the executor's
live-byte accounting validates the planner's ``planned_peak_bytes``
against the measured peak (the exact-match invariant the memory-planner
tests assert). Since the schedule is deterministic, the arena hit/miss
counts computed here are exactly what a runtime arena would observe —
no runtime bookkeeping is needed to report them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

#: step kinds shared with the compiler (kept here so the compiler can
#: import them without a circular dependency)
K_COMPUTE = 0
K_PLACEHOLDER = 1
K_CONST = 2
#: a codegen-backend CompiledRegion (repro.framework.codegen), not a
#: single op; never appears in ExecutionPlan.steps, only in .program
K_REGION = 3


@dataclass(frozen=True)
class MemoryPlan:
    """The result of buffer-lifetime planning over one schedule.

    Attributes:
        planned_peak_bytes: peak live intermediate bytes under the
            executor's exact materialize/free policy. Matches
            ``Session.last_peak_live_bytes`` bit-for-bit when every
            kernel honours its declared dtype (a float64 leak shows up
            as a planned-vs-actual mismatch).
        arena_peak_bytes: total arena footprint if freed buffers were
            recycled by exact ``(shape, dtype)`` — the sum of all
            distinct buffers the arena ever allocates.
        naive_total_bytes: bytes a no-reuse allocator would request for
            compute-op outputs over one step (every output fresh).
        arena_hits: allocations served by recycling a freed buffer.
        arena_misses: allocations that forced a new arena buffer.
        num_buffers: distinct buffers backing all compute outputs.
        slot_buffers: per-slot arena buffer index (-1 for slots that the
            arena does not manage: fed placeholders and plan constants).
    """

    planned_peak_bytes: int
    arena_peak_bytes: int
    naive_total_bytes: int
    arena_hits: int
    arena_misses: int
    num_buffers: int
    slot_buffers: tuple[int, ...]

    @property
    def hit_rate(self) -> float:
        """Fraction of compute-output allocations served from the arena."""
        total = self.arena_hits + self.arena_misses
        if total == 0:
            return 0.0
        return self.arena_hits / total

    @property
    def reuse_saving_bytes(self) -> int:
        """Bytes the arena avoids allocating versus a no-reuse allocator."""
        return self.naive_total_bytes - self.arena_peak_bytes

    def as_dict(self) -> dict:
        return {
            "planned_peak_bytes": self.planned_peak_bytes,
            "arena_peak_bytes": self.arena_peak_bytes,
            "naive_total_bytes": self.naive_total_bytes,
            "arena_hits": self.arena_hits,
            "arena_misses": self.arena_misses,
            "num_buffers": self.num_buffers,
            "hit_rate": self.hit_rate,
        }


def plan_memory(steps: Sequence, slot_specs: Sequence[tuple]) -> MemoryPlan:
    """Plan buffer reuse for a compiled schedule.

    Args:
        steps: objects with ``kind``, ``output_slots`` and ``free_slots``
            (the compiler's ``CompiledStep``), in execution order.
        slot_specs: per-slot ``(shape, dtype_name, nbytes)`` tuples.

    The live-byte simulation replays the executor's policy exactly:
    outputs materialize when their step runs, the peak is sampled after
    every non-placeholder step's outputs land, and freed slots leave the
    live set immediately. The arena simulation additionally recycles
    freed compute buffers: an exact ``(shape, dtype)`` match is
    preferred, and failing that the smallest freed same-dtype buffer
    with enough capacity is reshaped into service (best fit). The
    fallback is what keeps hit rates up on small graphs with diverse
    shapes — alexnet's plan recycles conv scratch into FC scratch
    instead of allocating both.
    """
    live = 0
    peak = 0
    naive_total = 0
    hits = 0
    misses = 0
    buffer_bytes: list[int] = []
    slot_buffers = [-1] * len(slot_specs)
    pool: dict[tuple, list[int]] = {}
    #: freed buffers per dtype name -> {buffer index: capacity bytes},
    #: for the best-fit fallback when no exact shape match is free
    free_caps: dict[str, dict[int, int]] = {}
    #: the pool key each freed buffer currently sits under
    freed_under: dict[int, tuple] = {}

    def _claim(buffer: int, dtype_name: str) -> None:
        pool[freed_under.pop(buffer)].remove(buffer)
        free_caps[dtype_name].pop(buffer)

    for step in steps:
        kind = step.kind
        for slot in step.output_slots:
            shape, dtype_name, nbytes = slot_specs[slot]
            live += nbytes
            if kind != K_COMPUTE:
                continue
            naive_total += nbytes
            key = (shape, dtype_name)
            free = pool.get(key)
            if free:
                buffer = free[-1]
                _claim(buffer, dtype_name)
                slot_buffers[slot] = buffer
                hits += 1
                continue
            candidates = free_caps.get(dtype_name)
            fitting = ([(cap, buffer)
                        for buffer, cap in candidates.items()
                        if cap >= nbytes] if candidates else [])
            if fitting:
                _, buffer = min(fitting)
                _claim(buffer, dtype_name)
                slot_buffers[slot] = buffer
                hits += 1
                continue
            slot_buffers[slot] = len(buffer_bytes)
            buffer_bytes.append(nbytes)
            misses += 1
        if kind != K_PLACEHOLDER and live > peak:
            peak = live
        for slot in step.free_slots:
            shape, dtype_name, nbytes = slot_specs[slot]
            live -= nbytes
            buffer = slot_buffers[slot]
            if buffer >= 0:
                pool.setdefault((shape, dtype_name), []).append(buffer)
                free_caps.setdefault(dtype_name, {})[buffer] = \
                    buffer_bytes[buffer]
                freed_under[buffer] = (shape, dtype_name)

    return MemoryPlan(
        planned_peak_bytes=peak,
        arena_peak_bytes=sum(buffer_bytes),
        naive_total_bytes=naive_total,
        arena_hits=hits,
        arena_misses=misses,
        num_buffers=len(buffer_bytes),
        slot_buffers=tuple(slot_buffers))
