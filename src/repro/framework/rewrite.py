"""Compiler-style graph optimization passes.

Section III-C lists the traits the popular frameworks converged on; one
is that "most use an application-level, compiler-esque optimizer". This
module is that component for our framework: it transcribes a fetch
subgraph into a fresh graph while applying classic dataflow passes —

* **identity elimination** — `Identity` nodes are bypassed;
* **constant folding** — pure ops whose inputs are all constants are
  evaluated at rewrite time and replaced by `Const` nodes;
* **common-subexpression elimination** — structurally identical pure
  ops with identical inputs are merged (including duplicate constants,
  e.g. the zero-state tensors every unrolled RNN step materializes).

Stateful, random, and placeholder operations are never folded or
merged. Operation attributes that reference other operations (the
optimizer's variable/slot handles) are remapped into the new graph, so
training graphs rewrite correctly too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graph import Graph, OpClass, Operation, Tensor
from .ops.state_ops import Const, Identity, Placeholder, VariableOp
from .session import RunContext

#: op classes whose nodes must survive rewriting untouched
_IMPURE_CLASSES = frozenset({OpClass.STATE, OpClass.OPTIMIZATION,
                             OpClass.RANDOM_SAMPLING, OpClass.CONTROL})

#: do not materialize folded constants above this many elements
_FOLD_SIZE_LIMIT = 1 << 20


@dataclass
class RewriteStats:
    """What the passes did."""

    ops_in: int = 0
    ops_out: int = 0
    identities_removed: int = 0
    constants_folded: int = 0
    subexpressions_merged: int = 0

    @property
    def removed(self) -> int:
        return self.ops_in - self.ops_out


@dataclass
class RewriteResult:
    """A rewritten graph plus the machinery to keep using it."""

    graph: Graph
    stats: RewriteStats
    _tensor_map: dict[str, Tensor] = field(default_factory=dict)

    def map_tensor(self, tensor: Tensor) -> Tensor:
        """The rewritten graph's tensor corresponding to ``tensor``."""
        return self._tensor_map[tensor.name]

    def map_feed(self, feed_dict) -> dict:
        """Translate a feed dict keyed by original placeholders.

        Placeholders that were pruned out of the rewritten subgraph are
        silently dropped (they are unused by the fetches anyway).
        """
        return {self._tensor_map[t.name]: value
                for t, value in feed_dict.items()
                if t.name in self._tensor_map}


def _is_pure(op: Operation) -> bool:
    return (op.op_class not in _IMPURE_CLASSES
            and not isinstance(op, (Placeholder, VariableOp)))


def _attr_key(value) -> object:
    """Hashable projection of one attribute value for CSE keys."""
    if isinstance(value, np.ndarray):
        return (value.shape, str(value.dtype), value.tobytes())
    if isinstance(value, np.dtype):
        return str(value)
    if isinstance(value, (list, tuple)):
        return tuple(_attr_key(v) for v in value)
    if isinstance(value, Operation):
        # Keyed by name + type, not id(): an id can be recycled by the
        # allocator after a previous rewrite's operations are collected,
        # which would silently merge unrelated ops across rewrites.
        # Names are unique within a graph, so this key is stable.
        return ("op", value.name, value.type_name)
    return value


def _cse_key(op: Operation, new_inputs: list[Tensor]):
    attrs = tuple(sorted((k, _attr_key(v)) for k, v in op.attrs.items()))
    return (op.type_name, attrs, tuple(t.name for t in new_inputs))


def _remap_attrs(attrs: dict, op_map: dict[int, Operation]) -> dict:
    remapped = {}
    for key, value in attrs.items():
        if isinstance(value, Operation):
            remapped[key] = op_map.get(id(value), value)
        else:
            remapped[key] = value
    return remapped


class _FoldContext(RunContext):
    """RunContext for constant folding: no state, no randomness allowed."""

    def __init__(self):
        super().__init__(rng=None, variables={}, variable_ops={})


def rewrite_graph(graph: Graph, fetches: list[Tensor],
                  fold_constants: bool = True,
                  eliminate_identities: bool = True,
                  merge_subexpressions: bool = True) -> RewriteResult:
    """Transcribe ``fetches``' subgraph into a new optimized graph."""
    ops = graph.subgraph(fetches)
    stats = RewriteStats(ops_in=len(ops))
    new_graph = Graph()
    tensor_map: dict[str, Tensor] = {}
    op_map: dict[int, Operation] = {}
    cse_index: dict[object, Operation] = {}
    fold_ctx = _FoldContext()

    with new_graph.as_default():
        for op in ops:
            new_inputs = [tensor_map[t.name] for t in op.inputs]

            if eliminate_identities and isinstance(op, Identity):
                tensor_map[op.outputs[0].name] = new_inputs[0]
                stats.identities_removed += 1
                continue

            foldable = (
                fold_constants and _is_pure(op) and new_inputs
                and all(isinstance(t.op, Const) for t in new_inputs)
                and sum(t.size for t in op.outputs) <= _FOLD_SIZE_LIMIT)
            if foldable:
                arrays = tuple(t.op.attrs["value"] for t in new_inputs)
                outputs = op.compute(arrays, fold_ctx)
                for tensor, value in zip(op.outputs, outputs):
                    const = Const(attrs={"value": np.asarray(value)},
                                  name=f"{op.name}/folded")
                    tensor_map[tensor.name] = const.output
                stats.constants_folded += 1
                continue

            if merge_subexpressions and (_is_pure(op)
                                         or isinstance(op, Const)):
                key = _cse_key(op, new_inputs)
                existing = cse_index.get(key)
                if existing is not None:
                    for old, reused in zip(op.outputs, existing.outputs):
                        tensor_map[old.name] = reused
                    op_map[id(op)] = existing
                    stats.subexpressions_merged += 1
                    continue
            else:
                key = None

            new_op = type(op)(new_inputs,
                              attrs=_remap_attrs(op.attrs, op_map),
                              name=op.name)
            op_map[id(op)] = new_op
            for old, created in zip(op.outputs, new_op.outputs):
                tensor_map[old.name] = created
            if key is not None:
                cse_index[key] = new_op

    stats.ops_out = len(new_graph)
    return RewriteResult(graph=new_graph, stats=stats,
                         _tensor_map=tensor_map)
