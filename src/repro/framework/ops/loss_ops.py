"""Connectionist temporal classification (CTC) loss.

Deep Speech's defining computational feature (after its stack of dense
layers) is the CTC loss of Graves et al. (2006), which learns from
*unsegmented* label sequences by marginalizing over all monotonic
alignments between the input frames and the label string. The paper's
Fig. 3 shows CTC-related reductions as the only non-MatMul time in the
speech workload.

This module implements the full log-space forward-backward algorithm as a
single fused operation, mirroring TensorFlow's ``CTCLoss`` kernel: the op
emits both the per-example loss and the gradient with respect to the
logits, so the backward pass is a cheap elementwise product.
"""

from __future__ import annotations

import numpy as np

from ..cost_model import WorkEstimate
from ..errors import ShapeError
from ..graph import Operation, OpClass, Tensor
from .state_ops import as_tensor

NEG_INF = -1e30  # effective log(0) that survives float32 arithmetic


def _extend_labels(labels: np.ndarray, blank: int) -> np.ndarray:
    """Interleave blanks: ``[a, b]`` becomes ``[-, a, -, b, -]``."""
    extended = np.full(2 * len(labels) + 1, blank, dtype=np.int64)
    extended[1::2] = labels
    return extended


def ctc_forward_backward(log_probs: np.ndarray, labels: np.ndarray,
                         blank: int) -> tuple[float, np.ndarray]:
    """Loss and logit-gradient for one example.

    Args:
        log_probs: ``(time, classes)`` log-softmax outputs.
        labels: 1-D int array of target class indices (no blanks).
        blank: index of the blank class.

    Returns:
        ``(loss, grad)`` where ``grad`` has the shape of ``log_probs`` and
        is the derivative of the loss with respect to the *logits*.
    """
    time_steps, num_classes = log_probs.shape
    extended = _extend_labels(labels, blank)
    num_states = len(extended)
    if time_steps < len(labels):
        raise ShapeError(
            f"CTC needs at least as many frames ({time_steps}) as labels "
            f"({len(labels)})")

    # Which states allow the diagonal skip transition s-2 -> s.
    can_skip = np.zeros(num_states, dtype=bool)
    if num_states > 2:
        can_skip[2:] = (extended[2:] != blank) & (extended[2:] != extended[:-2])

    alpha = np.full((time_steps, num_states), NEG_INF)
    alpha[0, 0] = log_probs[0, extended[0]]
    if num_states > 1:
        alpha[0, 1] = log_probs[0, extended[1]]
    for t in range(1, time_steps):
        stay = alpha[t - 1]
        step = np.full(num_states, NEG_INF)
        step[1:] = alpha[t - 1, :-1]
        merged = np.logaddexp(stay, step)
        skip = np.full(num_states, NEG_INF)
        skip[2:] = np.where(can_skip[2:], alpha[t - 1, :-2], NEG_INF)
        merged = np.logaddexp(merged, skip)
        alpha[t] = merged + log_probs[t, extended]

    if num_states > 1:
        log_total = np.logaddexp(alpha[-1, -1], alpha[-1, -2])
    else:
        log_total = alpha[-1, -1]

    beta = np.full((time_steps, num_states), NEG_INF)
    beta[-1, -1] = 0.0
    if num_states > 1:
        beta[-1, -2] = 0.0
    for t in range(time_steps - 2, -1, -1):
        emitted = beta[t + 1] + log_probs[t + 1, extended]
        stay = emitted
        step = np.full(num_states, NEG_INF)
        step[:-1] = emitted[1:]
        merged = np.logaddexp(stay, step)
        skip = np.full(num_states, NEG_INF)
        skip[:-2] = np.where(can_skip[2:], emitted[2:], NEG_INF)
        merged = np.logaddexp(merged, skip)
        beta[t] = merged

    # Posterior over states, folded back onto classes.
    gamma = alpha + beta - log_total
    label_posterior = np.zeros((time_steps, num_classes))
    for state, cls in enumerate(extended):
        label_posterior[:, cls] += np.exp(
            np.clip(gamma[:, state], NEG_INF, 0.0))
    grad = np.exp(log_probs) - label_posterior
    return float(-log_total), grad.astype(np.float32)


class CTCLoss(Operation):
    """Batched CTC loss over ``(time, batch, classes)`` logits.

    Inputs: logits, dense int labels ``(batch, max_label_len)``, label
    lengths ``(batch,)``, and input lengths ``(batch,)``. Outputs: per-
    example loss ``(batch,)`` and the gradient tensor used by autodiff
    (index 1), following TensorFlow's fused-kernel design.
    """

    type_name = "CTCLoss"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        logits, labels, label_lengths, input_lengths = self.inputs
        if logits.ndim != 3:
            raise ShapeError(f"CTC logits must be (time, batch, classes), "
                             f"got {logits.shape}")
        if labels.ndim != 2 or labels.shape[0] != logits.shape[1]:
            raise ShapeError(
                f"CTC labels {labels.shape} must be (batch, max_len) with "
                f"batch {logits.shape[1]}")
        for lengths in (label_lengths, input_lengths):
            if lengths.shape != (logits.shape[1],):
                raise ShapeError("CTC length vectors must be shape (batch,)")
        return [((logits.shape[1],), np.dtype(np.float32)),
                (logits.shape, np.dtype(np.float32))]

    def compute(self, inputs, ctx):
        logits, labels, label_lengths, input_lengths = inputs
        time_steps, batch, num_classes = logits.shape
        blank = self.attrs["blank"]
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_probs = shifted - np.log(
            np.exp(shifted).sum(axis=-1, keepdims=True))
        losses = np.zeros(batch, dtype=np.float32)
        grads = np.zeros_like(logits, dtype=np.float32)
        for b in range(batch):
            t_len = int(input_lengths[b])
            l_len = int(label_lengths[b])
            seq = labels[b, :l_len].astype(np.int64)
            loss, grad = ctc_forward_backward(log_probs[:t_len, b], seq, blank)
            losses[b] = loss
            grads[:t_len, b] = grad
        return (losses, grads)

    def gradient(self, grads):
        from . import array_ops, math_ops
        # Loss gradient per example, broadcast over (time, classes), times
        # the precomputed logit gradient.
        g = grads[0]
        if g is None:
            return [None, None, None, None]
        g = array_ops.reshape(g, (1, self.inputs[0].shape[1], 1))
        return [math_ops.multiply(g, self.outputs[1]), None, None, None]

    def _estimate_work(self):
        time_steps, batch, num_classes = self.inputs[0].shape
        max_label = self.inputs[1].shape[1]
        states = 2 * max_label + 1
        # Two dynamic-programming sweeps over (time, states) per example;
        # sequential in time, so parallelism is only across the batch.
        # Each cell merges up to three predecessors in log space
        # (logaddexp ~ exp + log1p + compares, ~20 flops per merge).
        flops = 2.0 * time_steps * states * 60.0 * batch
        flops += 8.0 * time_steps * batch * num_classes  # softmax + fold
        return WorkEstimate(flops=flops,
                            bytes_moved=16.0 * self.inputs[0].size,
                            trip_count=float(batch))


def ctc_loss(logits, labels, label_lengths, input_lengths,
             blank: int | None = None, name=None) -> Tensor:
    """CTC loss: see :class:`CTCLoss`. ``blank`` defaults to the last class."""
    logits = as_tensor(logits)
    if blank is None:
        blank = logits.shape[-1] - 1
    op = CTCLoss([logits,
                  as_tensor(labels, dtype=np.int32),
                  as_tensor(label_lengths, dtype=np.int32),
                  as_tensor(input_lengths, dtype=np.int32)],
                 attrs={"blank": blank}, name=name)
    return op.outputs[0]


def ctc_greedy_decode(log_probs: np.ndarray, blank: int) -> list[list[int]]:
    """Best-path decoding: argmax per frame, collapse repeats, drop blanks.

    Args:
        log_probs: ``(time, batch, classes)`` frame scores.
        blank: blank class index.
    """
    best = log_probs.argmax(axis=-1)
    decoded = []
    for b in range(best.shape[1]):
        sequence, previous = [], -1
        for cls in best[:, b]:
            if cls != previous and cls != blank:
                sequence.append(int(cls))
            previous = cls
        decoded.append(sequence)
    return decoded
