"""Fused LSTM block operations.

The paper's closing analysis tells architects that fine-grained
recurrent graphs are dominated by many small operations (Figs. 3/6b) —
precisely the situation kernel *fusion* addresses, and TensorFlow later
shipped as ``LSTMBlockCell``. This module provides that fused kernel for
our framework: one operation computes an entire LSTM step (gate matmul +
all gate arithmetic), with a matching fused backward operation, so the
composed-vs-fused trade-off can be measured
(``benchmarks/bench_ablation_fusion.py``).

The fused cell is numerically identical to the composed
:class:`repro.framework.rnn.LSTMCell` (asserted in tests): same gate
order (i, j, f, o), same forget-gate bias.
"""

from __future__ import annotations

import numpy as np

from ..cost_model import WorkEstimate, matmul_work
from ..errors import ShapeError
from ..graph import Operation, OpClass, Tensor
from .state_ops import as_tensor, constant


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


class LSTMBlockCellOp(Operation):
    """One fused LSTM step.

    Inputs: ``x (B, I)``, ``c (B, H)``, ``h (B, H)``,
    ``kernel (I+H, 4H)``, ``bias (4H,)``. Outputs: ``new_c``, ``new_h``,
    and the activated gates ``(B, 4H)`` cached for the backward kernel.
    """

    type_name = "LSTMBlockCell"
    op_class = OpClass.MATRIX

    def _output_specs(self):
        x, c, h, kernel, bias = self.inputs
        batch, input_size = x.shape
        hidden = c.shape[1]
        if h.shape != (batch, hidden):
            raise ShapeError(f"h shape {h.shape} != c shape {c.shape}")
        if kernel.shape != (input_size + hidden, 4 * hidden):
            raise ShapeError(
                f"kernel shape {kernel.shape} incompatible with "
                f"input {input_size} + hidden {hidden}")
        if bias.shape != (4 * hidden,):
            raise ShapeError(f"bias shape {bias.shape} != (4H,)")
        return [((batch, hidden), x.dtype), ((batch, hidden), x.dtype),
                ((batch, 4 * hidden), x.dtype)]

    def compute(self, inputs, ctx):
        x, c, h, kernel, bias = inputs
        hidden = c.shape[1]
        forget_bias = self.attrs["forget_bias"]
        z = np.concatenate([x, h], axis=1) @ kernel + bias
        i_gate = _sigmoid(z[:, :hidden])
        j_new = np.tanh(z[:, hidden:2 * hidden])
        f_gate = _sigmoid(z[:, 2 * hidden:3 * hidden] + forget_bias)
        o_gate = _sigmoid(z[:, 3 * hidden:])
        new_c = c * f_gate + i_gate * j_new
        new_h = np.tanh(new_c) * o_gate
        gates = np.concatenate([i_gate, j_new, f_gate, o_gate], axis=1)
        return (new_c.astype(x.dtype), new_h.astype(x.dtype),
                gates.astype(x.dtype))

    def gradient(self, grads):
        grad_c, grad_h, _ = grads
        x, c, h, kernel, bias = self.inputs
        zeros_like_state = constant(
            np.zeros(c.shape, dtype=np.float32))
        grad_inputs = [grad_c if grad_c is not None else zeros_like_state,
                       grad_h if grad_h is not None else zeros_like_state,
                       x, c, h, kernel, self.outputs[2], self.outputs[0]]
        grad_op = LSTMBlockGradOp(grad_inputs, attrs=dict(self.attrs))
        return list(grad_op.outputs)  # dx, dc, dh, dkernel, dbias

    def _estimate_work(self):
        x, c = self.inputs[0], self.inputs[1]
        batch, input_size = x.shape
        hidden = c.shape[1]
        gate_matmul = matmul_work(batch, input_size + hidden, 4 * hidden)
        elementwise = WorkEstimate(flops=30.0 * batch * hidden,
                                   bytes_moved=10.0 * 4 * batch * hidden,
                                   trip_count=float(batch * hidden))
        return gate_matmul + elementwise


class LSTMBlockGradOp(Operation):
    """Fused backward for :class:`LSTMBlockCellOp`.

    Inputs: grad_new_c, grad_new_h, x, c, h, kernel, gates, new_c.
    Outputs: dx, dc, dh, dkernel, dbias.
    """

    type_name = "LSTMBlockGrad"
    op_class = OpClass.MATRIX

    def _output_specs(self):
        _, _, x, c, h, kernel, _, _ = self.inputs
        return [(x.shape, x.dtype), (c.shape, c.dtype), (h.shape, h.dtype),
                (kernel.shape, kernel.dtype),
                ((kernel.shape[1],), kernel.dtype)]

    def compute(self, inputs, ctx):
        grad_new_c, grad_new_h, x, c, h, kernel, gates, new_c = inputs
        hidden = c.shape[1]
        i_gate = gates[:, :hidden]
        j_new = gates[:, hidden:2 * hidden]
        f_gate = gates[:, 2 * hidden:3 * hidden]
        o_gate = gates[:, 3 * hidden:]
        tanh_new_c = np.tanh(new_c)

        d_o = grad_new_h * tanh_new_c
        d_new_c = (grad_new_h * o_gate * (1.0 - tanh_new_c ** 2)
                   + grad_new_c)
        d_f = d_new_c * c
        d_c_prev = d_new_c * f_gate
        d_i = d_new_c * j_new
        d_j = d_new_c * i_gate

        dz_i = d_i * i_gate * (1.0 - i_gate)
        dz_j = d_j * (1.0 - j_new ** 2)
        dz_f = d_f * f_gate * (1.0 - f_gate)
        dz_o = d_o * o_gate * (1.0 - o_gate)
        dz = np.concatenate([dz_i, dz_j, dz_f, dz_o], axis=1)

        d_joined = dz @ kernel.T
        input_size = x.shape[1]
        dx = d_joined[:, :input_size]
        dh = d_joined[:, input_size:]
        joined = np.concatenate([x, h], axis=1)
        d_kernel = joined.T @ dz
        d_bias = dz.sum(axis=0)
        dtype = x.dtype
        return (np.ascontiguousarray(dx, dtype=dtype),
                d_c_prev.astype(dtype),
                np.ascontiguousarray(dh, dtype=dtype),
                d_kernel.astype(dtype), d_bias.astype(dtype))

    def _estimate_work(self):
        x, c = self.inputs[2], self.inputs[3]
        batch, input_size = x.shape
        hidden = c.shape[1]
        # Two gate-sized matmuls (d_joined and d_kernel) plus elementwise.
        backward = matmul_work(batch, 4 * hidden, input_size + hidden)
        weight_grad = matmul_work(input_size + hidden, batch, 4 * hidden)
        elementwise = WorkEstimate(flops=50.0 * batch * hidden,
                                   bytes_moved=14.0 * 4 * batch * hidden,
                                   trip_count=float(batch * hidden))
        return backward + weight_grad + elementwise


def lstm_block_cell(x, c, h, kernel, bias, forget_bias: float = 1.0,
                    name=None) -> tuple[Tensor, Tensor]:
    """Fused LSTM step; returns ``(new_c, new_h)``."""
    op = LSTMBlockCellOp(
        [as_tensor(x), as_tensor(c), as_tensor(h), as_tensor(kernel),
         as_tensor(bias)],
        attrs={"forget_bias": float(forget_bias)}, name=name)
    return op.outputs[0], op.outputs[1]
