"""Neural-network operations: convolution, pooling, softmax, normalization.

Convolution is implemented the way production backends implement it
(cuDNN's default algorithm and Eigen's CPU path are both implicit GEMM):
an im2col patch extraction followed by a dense matrix multiply. The two
backward kernels are distinct operation types — ``Conv2DBackpropFilter``
and ``Conv2DBackpropInput`` — exactly as in TensorFlow, because the
paper's Fig. 6a shows them as separately-scaling profile entries. All
spatial tensors use NHWC layout.
"""

from __future__ import annotations

import numpy as np

from ..cost_model import (WorkEstimate, conv2d_work, data_movement_work,
                          elementwise_work, num_elements, reduction_work)
from ..errors import ShapeError
from ..graph import Operation, OpClass, Tensor
from .state_ops import as_tensor


def conv_output_dim(in_dim: int, filter_dim: int, stride: int,
                    padding: str) -> tuple[int, int, int]:
    """Output extent and (before, after) padding for one spatial axis."""
    if padding == "VALID":
        if in_dim < filter_dim:
            raise ShapeError(
                f"VALID conv: input dim {in_dim} < filter dim {filter_dim}")
        out = (in_dim - filter_dim) // stride + 1
        return out, 0, 0
    if padding == "SAME":
        out = -(-in_dim // stride)  # ceil division
        total = max((out - 1) * stride + filter_dim - in_dim, 0)
        before = total // 2
        return out, before, total - before
    raise ShapeError(f"unknown padding {padding!r} (use 'SAME' or 'VALID')")


def _conv_geometry(x: Tensor, filter_shape, strides, padding):
    batch, in_h, in_w, in_c = x.shape
    f_h, f_w, f_in_c, out_c = filter_shape
    if f_in_c != in_c:
        raise ShapeError(
            f"conv filter expects {f_in_c} input channels, image has {in_c}")
    s_h, s_w = strides
    out_h, pad_t, pad_b = conv_output_dim(in_h, f_h, s_h, padding)
    out_w, pad_l, pad_r = conv_output_dim(in_w, f_w, s_w, padding)
    return (batch, out_h, out_w, out_c), (pad_t, pad_b, pad_l, pad_r)


def _im2col(x: np.ndarray, f_h: int, f_w: int, s_h: int, s_w: int,
            pads: tuple[int, int, int, int]) -> np.ndarray:
    """Extract conv patches: returns ``(batch*out_h*out_w, f_h*f_w*in_c)``."""
    pad_t, pad_b, pad_l, pad_r = pads
    if any(pads):
        x = np.pad(x, ((0, 0), (pad_t, pad_b), (pad_l, pad_r), (0, 0)))
    windows = np.lib.stride_tricks.sliding_window_view(x, (f_h, f_w),
                                                       axis=(1, 2))
    # windows: (batch, H', W', in_c, f_h, f_w); subsample by stride, then
    # order patch dims as (f_h, f_w, in_c) to match the filter layout.
    windows = windows[:, ::s_h, ::s_w]
    windows = windows.transpose(0, 1, 2, 4, 5, 3)
    batch, out_h, out_w = windows.shape[:3]
    return np.ascontiguousarray(windows).reshape(
        batch * out_h * out_w, f_h * f_w * x.shape[3])


class Conv2D(Operation):
    """2-D convolution (NHWC input, HWIO filter) via im2col + GEMM."""

    type_name = "Conv2D"
    op_class = OpClass.CONVOLUTION

    def _output_specs(self):
        x, filt = self.inputs
        if x.ndim != 4 or filt.ndim != 4:
            raise ShapeError(
                f"Conv2D needs NHWC input and HWIO filter, got {x.shape} "
                f"and {filt.shape}")
        out_shape, pads = _conv_geometry(x, filt.shape,
                                         self.attrs["strides"],
                                         self.attrs["padding"])
        self.attrs["pads"] = pads
        return [(out_shape, x.dtype)]

    def compute(self, inputs, ctx):
        x, filt = inputs
        f_h, f_w, in_c, out_c = filt.shape
        s_h, s_w = self.attrs["strides"]
        cols = _im2col(x, f_h, f_w, s_h, s_w, self.attrs["pads"])
        out = cols @ filt.reshape(f_h * f_w * in_c, out_c)
        return (out.reshape(self.output.shape),)

    def gradient(self, grads):
        g = grads[0]
        x, filt = self.inputs
        common = {"strides": self.attrs["strides"],
                  "padding": self.attrs["padding"],
                  "pads": self.attrs["pads"]}
        dx = Conv2DBackpropInput(
            [g, filt], attrs=dict(common, input_shape=x.shape)).output
        dw = Conv2DBackpropFilter(
            [g, x], attrs=dict(common, filter_shape=filt.shape)).output
        return [dx, dw]

    def _estimate_work(self):
        batch, out_h, out_w, out_c = self.output.shape
        f_h, f_w, in_c, _ = self.inputs[1].shape
        return conv2d_work(batch, out_h, out_w, out_c, f_h, f_w, in_c)


class Conv2DBackpropInput(Operation):
    """Gradient of Conv2D with respect to its input (transposed conv)."""

    type_name = "Conv2DBackpropInput"
    op_class = OpClass.CONVOLUTION

    def _output_specs(self):
        return [(self.attrs["input_shape"], self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        grad, filt = inputs
        batch, in_h, in_w, in_c = self.attrs["input_shape"]
        f_h, f_w, _, out_c = filt.shape
        s_h, s_w = self.attrs["strides"]
        pad_t, pad_b, pad_l, pad_r = self.attrs["pads"]
        out_h, out_w = grad.shape[1], grad.shape[2]
        dpad = np.zeros((batch, in_h + pad_t + pad_b, in_w + pad_l + pad_r,
                         in_c), dtype=grad.dtype)
        for i in range(f_h):
            for j in range(f_w):
                # grad: (b, oh, ow, oc) x filter tap (ic, oc) -> (b, oh, ow, ic)
                contrib = np.tensordot(grad, filt[i, j], axes=([3], [1]))
                dpad[:, i:i + s_h * out_h:s_h,
                     j:j + s_w * out_w:s_w, :] += contrib
        return (np.ascontiguousarray(
            dpad[:, pad_t:pad_t + in_h, pad_l:pad_l + in_w, :]),)

    def _estimate_work(self):
        grad = self.inputs[0]
        batch, out_h, out_w, out_c = grad.shape
        f_h, f_w, in_c, _ = self.inputs[1].shape
        return conv2d_work(batch, out_h, out_w, out_c, f_h, f_w, in_c)


class Conv2DBackpropFilter(Operation):
    """Gradient of Conv2D with respect to its filter weights."""

    type_name = "Conv2DBackpropFilter"
    op_class = OpClass.CONVOLUTION

    def _output_specs(self):
        return [(self.attrs["filter_shape"], self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        grad, x = inputs
        f_h, f_w, in_c, out_c = self.attrs["filter_shape"]
        s_h, s_w = self.attrs["strides"]
        pad_t, pad_b, pad_l, pad_r = self.attrs["pads"]
        if pad_t or pad_b or pad_l or pad_r:
            x = np.pad(x, ((0, 0), (pad_t, pad_b), (pad_l, pad_r), (0, 0)))
        out_h, out_w = grad.shape[1], grad.shape[2]
        grad_mat = grad.reshape(-1, out_c)
        dfilt = np.empty((f_h, f_w, in_c, out_c), dtype=grad.dtype)
        for i in range(f_h):
            for j in range(f_w):
                patch = x[:, i:i + s_h * out_h:s_h, j:j + s_w * out_w:s_w, :]
                dfilt[i, j] = patch.reshape(-1, in_c).T @ grad_mat
        return (dfilt,)

    def _estimate_work(self):
        grad = self.inputs[0]
        batch, out_h, out_w, out_c = grad.shape
        f_h, f_w, in_c, _ = self.attrs["filter_shape"]
        return conv2d_work(batch, out_h, out_w, out_c, f_h, f_w, in_c)


def _pool_geometry(x: Tensor, ksize, strides, padding):
    batch, in_h, in_w, channels = x.shape
    k_h, k_w = ksize
    s_h, s_w = strides
    out_h, pad_t, pad_b = conv_output_dim(in_h, k_h, s_h, padding)
    out_w, pad_l, pad_r = conv_output_dim(in_w, k_w, s_w, padding)
    return (batch, out_h, out_w, channels), (pad_t, pad_b, pad_l, pad_r)


class MaxPool(Operation):
    type_name = "MaxPool"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        out_shape, pads = _pool_geometry(self.inputs[0], self.attrs["ksize"],
                                         self.attrs["strides"],
                                         self.attrs["padding"])
        self.attrs["pads"] = pads
        return [(out_shape, self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        x = inputs[0]
        k_h, k_w = self.attrs["ksize"]
        s_h, s_w = self.attrs["strides"]
        pad_t, pad_b, pad_l, pad_r = self.attrs["pads"]
        if pad_t or pad_b or pad_l or pad_r:
            x = np.pad(x, ((0, 0), (pad_t, pad_b), (pad_l, pad_r), (0, 0)),
                       constant_values=-np.inf)
        windows = np.lib.stride_tricks.sliding_window_view(
            x, (k_h, k_w), axis=(1, 2))[:, ::s_h, ::s_w]
        return (np.ascontiguousarray(windows.max(axis=(4, 5))),)

    def gradient(self, grads):
        return [MaxPoolGrad(
            [self.inputs[0], self.outputs[0], grads[0]],
            attrs={k: self.attrs[k]
                   for k in ("ksize", "strides", "padding", "pads")}).output]

    def _estimate_work(self):
        k_h, k_w = self.attrs["ksize"]
        n_out = self.output.size
        return WorkEstimate(flops=float(n_out * k_h * k_w),
                            bytes_moved=4.0 * (self.inputs[0].size + n_out),
                            trip_count=float(n_out))


class MaxPoolGrad(Operation):
    """Backward kernel for MaxPool: route gradient to the window maxima."""

    type_name = "MaxPoolGrad"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        return [(self.inputs[0].shape, self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        x, pooled, grad = inputs
        k_h, k_w = self.attrs["ksize"]
        s_h, s_w = self.attrs["strides"]
        pad_t, pad_b, pad_l, pad_r = self.attrs["pads"]
        padded_shape = (x.shape[0], x.shape[1] + pad_t + pad_b,
                        x.shape[2] + pad_l + pad_r, x.shape[3])
        if pad_t or pad_b or pad_l or pad_r:
            x_pad = np.full(padded_shape, -np.inf, dtype=x.dtype)
            x_pad[:, pad_t:pad_t + x.shape[1],
                  pad_l:pad_l + x.shape[2], :] = x
        else:
            x_pad = x
        out_h, out_w = pooled.shape[1], pooled.shape[2]
        dx_pad = np.zeros(padded_shape, dtype=grad.dtype)
        for i in range(k_h):
            for j in range(k_w):
                window = x_pad[:, i:i + s_h * out_h:s_h,
                               j:j + s_w * out_w:s_w, :]
                mask = window == pooled
                dx_pad[:, i:i + s_h * out_h:s_h,
                       j:j + s_w * out_w:s_w, :] += grad * mask
        return (np.ascontiguousarray(
            dx_pad[:, pad_t:pad_t + x.shape[1],
                   pad_l:pad_l + x.shape[2], :]),)

    def _estimate_work(self):
        k_h, k_w = self.attrs["ksize"]
        n = self.output.size
        return WorkEstimate(flops=float(n * k_h * k_w),
                            bytes_moved=12.0 * n, trip_count=float(n))


class AvgPool(Operation):
    type_name = "AvgPool"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        out_shape, pads = _pool_geometry(self.inputs[0], self.attrs["ksize"],
                                         self.attrs["strides"],
                                         self.attrs["padding"])
        self.attrs["pads"] = pads
        return [(out_shape, self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        x = inputs[0]
        k_h, k_w = self.attrs["ksize"]
        s_h, s_w = self.attrs["strides"]
        pad_t, pad_b, pad_l, pad_r = self.attrs["pads"]
        if pad_t or pad_b or pad_l or pad_r:
            x = np.pad(x, ((0, 0), (pad_t, pad_b), (pad_l, pad_r), (0, 0)))
        windows = np.lib.stride_tricks.sliding_window_view(
            x, (k_h, k_w), axis=(1, 2))[:, ::s_h, ::s_w]
        return (np.ascontiguousarray(windows.mean(axis=(4, 5))),)

    def gradient(self, grads):
        return [AvgPoolGrad(
            [grads[0]],
            attrs={"input_shape": self.inputs[0].shape,
                   **{k: self.attrs[k]
                      for k in ("ksize", "strides", "padding", "pads")}}).output]

    def _estimate_work(self):
        k_h, k_w = self.attrs["ksize"]
        n_out = self.output.size
        return WorkEstimate(flops=float(n_out * k_h * k_w),
                            bytes_moved=4.0 * (self.inputs[0].size + n_out),
                            trip_count=float(n_out))


class AvgPoolGrad(Operation):
    type_name = "AvgPoolGrad"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        return [(self.attrs["input_shape"], self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        grad = inputs[0]
        k_h, k_w = self.attrs["ksize"]
        s_h, s_w = self.attrs["strides"]
        pad_t, pad_b, pad_l, pad_r = self.attrs["pads"]
        in_shape = self.attrs["input_shape"]
        padded_shape = (in_shape[0], in_shape[1] + pad_t + pad_b,
                        in_shape[2] + pad_l + pad_r, in_shape[3])
        dx_pad = np.zeros(padded_shape, dtype=grad.dtype)
        out_h, out_w = grad.shape[1], grad.shape[2]
        share = grad / float(k_h * k_w)
        for i in range(k_h):
            for j in range(k_w):
                dx_pad[:, i:i + s_h * out_h:s_h,
                       j:j + s_w * out_w:s_w, :] += share
        return (np.ascontiguousarray(
            dx_pad[:, pad_t:pad_t + in_shape[1],
                   pad_l:pad_l + in_shape[2], :]),)

    def _estimate_work(self):
        n = self.output.size
        return WorkEstimate(flops=float(n), bytes_moved=8.0 * n,
                            trip_count=float(n))


class BiasAdd(Operation):
    """Add a channel bias vector to the trailing axis of a tensor."""

    type_name = "BiasAdd"
    op_class = OpClass.ELEMENTWISE

    def _output_specs(self):
        x, bias = self.inputs
        if bias.ndim != 1 or bias.shape[0] != x.shape[-1]:
            raise ShapeError(
                f"BiasAdd bias {bias.shape} must match trailing dim of "
                f"{x.shape}")
        return [(x.shape, x.dtype)]

    def compute(self, inputs, ctx):
        return (inputs[0] + inputs[1],)

    def gradient(self, grads):
        from . import reduction_ops
        g = grads[0]
        axes = list(range(self.inputs[0].ndim - 1))
        return [g, reduction_ops.reduce_sum(g, axis=axes)]

    def _estimate_work(self):
        return elementwise_work(self.output.shape, n_inputs=2)


class Softmax(Operation):
    """Numerically-stable softmax over the trailing axis."""

    type_name = "Softmax"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        return [(self.inputs[0].shape, self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        x = inputs[0]
        shifted = x - x.max(axis=-1, keepdims=True)
        ex = np.exp(shifted)
        return (ex / ex.sum(axis=-1, keepdims=True),)

    def gradient(self, grads):
        from . import math_ops, reduction_ops
        g = grads[0]
        y = self.output
        inner = reduction_ops.reduce_sum(math_ops.multiply(g, y), axis=-1,
                                         keepdims=True)
        return [math_ops.multiply(math_ops.subtract(g, inner), y)]

    def _estimate_work(self):
        n = self.output.size
        rows = n // self.output.shape[-1]
        return WorkEstimate(flops=6.0 * n, bytes_moved=8.0 * n,
                            trip_count=float(rows))


class LogSoftmax(Operation):
    type_name = "LogSoftmax"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        return [(self.inputs[0].shape, self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        x = inputs[0]
        shifted = x - x.max(axis=-1, keepdims=True)
        return (shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True)),)

    def gradient(self, grads):
        from . import math_ops, reduction_ops
        g = grads[0]
        softmax_out = math_ops.exp(self.output)
        total = reduction_ops.reduce_sum(g, axis=-1, keepdims=True)
        return [math_ops.subtract(g, math_ops.multiply(softmax_out, total))]

    def _estimate_work(self):
        n = self.output.size
        rows = n // self.output.shape[-1]
        return WorkEstimate(flops=7.0 * n, bytes_moved=8.0 * n,
                            trip_count=float(rows))


class SoftmaxCrossEntropyWithLogits(Operation):
    """Fused softmax + cross-entropy against a target distribution.

    Inputs: logits ``(batch, classes)`` and labels (same shape, rows are
    probability distributions — one-hot for classification). Output: per-
    example loss ``(batch,)``. The gradient is the classic
    ``softmax(logits) - labels``.
    """

    type_name = "SoftmaxCrossEntropyWithLogits"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        logits, labels = self.inputs
        if logits.shape != labels.shape or logits.ndim != 2:
            raise ShapeError(
                f"xent expects matching rank-2 logits/labels, got "
                f"{logits.shape} and {labels.shape}")
        return [((logits.shape[0],), logits.dtype)]

    def compute(self, inputs, ctx):
        logits, labels = inputs
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        log_probs = shifted - log_z
        return ((-(labels * log_probs).sum(axis=-1)).astype(logits.dtype),)

    def gradient(self, grads):
        from . import array_ops, math_ops
        g = array_ops.expand_dims(grads[0], axis=-1)
        probs = softmax(self.inputs[0])
        return [math_ops.multiply(g, math_ops.subtract(probs, self.inputs[1])),
                None]

    def _estimate_work(self):
        n = self.inputs[0].size
        return WorkEstimate(flops=8.0 * n, bytes_moved=12.0 * n,
                            trip_count=float(self.inputs[0].shape[0]))


class LRN(Operation):
    """AlexNet's local response normalization across channels."""

    type_name = "LRN"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        return [(self.inputs[0].shape, self.inputs[0].dtype)]

    @staticmethod
    def _denominator(x, radius, bias, alpha):
        squares = np.square(x)
        accum = np.zeros_like(x)
        channels = x.shape[-1]
        for offset in range(-radius, radius + 1):
            lo, hi = max(0, -offset), min(channels, channels - offset)
            if lo >= hi:  # window offset falls entirely outside
                continue
            accum[..., lo:hi] += squares[..., lo + offset:hi + offset]
        return bias + alpha * accum

    def compute(self, inputs, ctx):
        a = self.attrs
        denom = self._denominator(inputs[0], a["depth_radius"], a["bias"],
                                  a["alpha"])
        return (inputs[0] * np.power(denom, -a["beta"]),)

    def gradient(self, grads):
        return [LRNGrad([grads[0], self.inputs[0]],
                        attrs=dict(self.attrs)).output]

    def _estimate_work(self):
        n = self.output.size
        window = 2 * self.attrs["depth_radius"] + 1
        return WorkEstimate(flops=float(n * (window + 4)),
                            bytes_moved=8.0 * n, trip_count=float(n))


class LRNGrad(Operation):
    type_name = "LRNGrad"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        return [(self.inputs[1].shape, self.inputs[1].dtype)]

    def compute(self, inputs, ctx):
        grad, x = inputs
        a = self.attrs
        radius, bias, alpha, beta = (a["depth_radius"], a["bias"], a["alpha"],
                                     a["beta"])
        denom = LRN._denominator(x, radius, bias, alpha)
        # dx_m = g_m * d_m^-b - 2*a*b*x_m * sum_{i in window(m)} g_i x_i d_i^{-b-1}
        core = grad * x * np.power(denom, -beta - 1.0)
        windowed = np.zeros_like(core)
        channels = x.shape[-1]
        for offset in range(-radius, radius + 1):
            lo, hi = max(0, -offset), min(channels, channels - offset)
            if lo >= hi:
                continue
            windowed[..., lo:hi] += core[..., lo + offset:hi + offset]
        dx = grad * np.power(denom, -beta) - 2.0 * alpha * beta * x * windowed
        return (dx.astype(x.dtype),)

    def _estimate_work(self):
        n = self.output.size
        window = 2 * self.attrs["depth_radius"] + 1
        return WorkEstimate(flops=float(n * (2 * window + 8)),
                            bytes_moved=12.0 * n, trip_count=float(n))


# -- public constructors ------------------------------------------------------


def conv2d(x, filt, strides=(1, 1), padding: str = "SAME",
           name=None) -> Tensor:
    return Conv2D([as_tensor(x), as_tensor(filt)],
                  attrs={"strides": tuple(strides), "padding": padding},
                  name=name).output


def max_pool(x, ksize=(2, 2), strides=(2, 2), padding: str = "VALID",
             name=None) -> Tensor:
    return MaxPool([as_tensor(x)],
                   attrs={"ksize": tuple(ksize), "strides": tuple(strides),
                          "padding": padding},
                   name=name).output


def avg_pool(x, ksize=(2, 2), strides=(2, 2), padding: str = "VALID",
             name=None) -> Tensor:
    return AvgPool([as_tensor(x)],
                   attrs={"ksize": tuple(ksize), "strides": tuple(strides),
                          "padding": padding},
                   name=name).output


def bias_add(x, bias, name=None) -> Tensor:
    return BiasAdd([as_tensor(x), as_tensor(bias)], name=name).output


def softmax(x, name=None) -> Tensor:
    return Softmax([as_tensor(x)], name=name).output


def log_softmax(x, name=None) -> Tensor:
    return LogSoftmax([as_tensor(x)], name=name).output


def softmax_cross_entropy_with_logits(logits, labels, name=None) -> Tensor:
    return SoftmaxCrossEntropyWithLogits([as_tensor(logits), as_tensor(labels)],
                                         name=name).output


def lrn(x, depth_radius: int = 2, bias: float = 1.0, alpha: float = 1e-4,
        beta: float = 0.75, name=None) -> Tensor:
    return LRN([as_tensor(x)],
               attrs={"depth_radius": depth_radius, "bias": bias,
                      "alpha": alpha, "beta": beta},
               name=name).output


def dropout(x, rate: float, name=None) -> Tensor:
    """Randomly zero a ``rate`` fraction of elements, rescaling the rest.

    Composed from primitives exactly as TensorFlow's dropout is (a uniform
    sample, a thresholding, a multiply, and a scale), so the sampled mask
    is shared between the forward and backward passes within a single
    session run.
    """
    from . import math_ops, random_ops
    x = as_tensor(x)
    keep_prob = 1.0 - rate
    noise = random_ops.random_uniform(x.shape, name=name)
    mask = math_ops.less(noise, keep_prob)
    return math_ops.multiply(math_ops.multiply(x, mask), 1.0 / keep_prob)
