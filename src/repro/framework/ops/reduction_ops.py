"""Reduction operations: Sum, Mean, Max, Min, ArgMax.

Group D of the paper's Fig. 3 taxonomy ("Reduction and Expansion").
Reductions matter to the parallelism story (Section V-E): their trip
count is the number of *outputs*, so a loss-style reduction to a scalar
cannot use additional threads no matter how wide its input is.
"""

from __future__ import annotations

import numpy as np

from ..cost_model import reduction_work
from ..errors import ShapeError
from ..graph import Operation, OpClass, Tensor
from .state_ops import as_tensor


def _normalize_axes(axis, ndim: int) -> tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = [axis]
    axes = tuple(sorted(a + ndim if a < 0 else a for a in axis))
    for a in axes:
        if not 0 <= a < ndim:
            raise ShapeError(f"reduction axis {a} out of range for rank {ndim}")
    if len(set(axes)) != len(axes):
        raise ShapeError(f"duplicate reduction axes {axes}")
    return axes


class _Reduction(Operation):
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        x = self.inputs[0]
        axes = self.attrs["axes"]
        if self.attrs["keepdims"]:
            shape = tuple(1 if i in axes else d for i, d in enumerate(x.shape))
        else:
            shape = tuple(d for i, d in enumerate(x.shape) if i not in axes)
        return [(shape, self._output_dtype(x))]

    def _output_dtype(self, x: Tensor):
        return x.dtype

    def _estimate_work(self):
        return reduction_work(self.inputs[0].shape, self.output.shape)

    def _keepdims_shape(self) -> tuple[int, ...]:
        x = self.inputs[0]
        axes = self.attrs["axes"]
        return tuple(1 if i in axes else d for i, d in enumerate(x.shape))

    def _expand_grad(self, grad: Tensor) -> Tensor:
        """Reshape-and-tile a reduced gradient back to the input shape."""
        from . import array_ops
        x = self.inputs[0]
        keep = self._keepdims_shape()
        if grad.shape != keep:
            grad = array_ops.reshape(grad, keep)
        multiples = tuple(full // kept for full, kept in zip(x.shape, keep))
        if any(m != 1 for m in multiples):
            grad = array_ops.tile(grad, multiples)
        return grad


class Sum(_Reduction):
    type_name = "Sum"

    def compute(self, inputs, ctx):
        out = np.sum(inputs[0], axis=self.attrs["axes"],
                     keepdims=self.attrs["keepdims"])
        return (np.asarray(out, dtype=self.output.dtype),)

    def gradient(self, grads):
        return [self._expand_grad(grads[0])]


class Mean(_Reduction):
    type_name = "Mean"

    def compute(self, inputs, ctx):
        out = np.mean(inputs[0], axis=self.attrs["axes"],
                      keepdims=self.attrs["keepdims"])
        return (np.asarray(out, dtype=self.output.dtype),)

    def gradient(self, grads):
        from . import math_ops
        x = self.inputs[0]
        count = 1
        for axis in self.attrs["axes"]:
            count *= x.shape[axis]
        scaled = math_ops.divide(grads[0], float(count))
        return [self._expand_grad(scaled)]


class Max(_Reduction):
    type_name = "Max"

    def compute(self, inputs, ctx):
        out = np.max(inputs[0], axis=self.attrs["axes"],
                     keepdims=self.attrs["keepdims"])
        return (np.asarray(out, dtype=self.output.dtype),)

    def gradient(self, grads):
        from . import math_ops
        x = self.inputs[0]
        max_full = self._expand_grad(
            reduce_max(x, axis=self.attrs["axes"], keepdims=True)
            if not self.attrs["keepdims"] else self.output)
        mask = math_ops.equal(x, max_full)
        grad_full = self._expand_grad(grads[0])
        return [math_ops.multiply(grad_full, mask)]


class Min(_Reduction):
    type_name = "Min"

    def compute(self, inputs, ctx):
        out = np.min(inputs[0], axis=self.attrs["axes"],
                     keepdims=self.attrs["keepdims"])
        return (np.asarray(out, dtype=self.output.dtype),)

    def gradient(self, grads):
        from . import math_ops
        x = self.inputs[0]
        min_full = self._expand_grad(
            reduce_min(x, axis=self.attrs["axes"], keepdims=True)
            if not self.attrs["keepdims"] else self.output)
        mask = math_ops.equal(x, min_full)
        grad_full = self._expand_grad(grads[0])
        return [math_ops.multiply(grad_full, mask)]


class ArgMax(Operation):
    type_name = "ArgMax"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        x = self.inputs[0]
        axis = self.attrs["axis"]
        shape = tuple(d for i, d in enumerate(x.shape) if i != axis)
        return [(shape, np.dtype(np.int32))]

    def compute(self, inputs, ctx):
        return (np.argmax(inputs[0], axis=self.attrs["axis"]).astype(np.int32),)

    def gradient(self, grads):
        return [None]

    def _estimate_work(self):
        return reduction_work(self.inputs[0].shape, self.output.shape)


class TopK(Operation):
    """Largest ``k`` values (and their indices) along the trailing axis."""

    type_name = "TopK"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        x = self.inputs[0]
        k = self.attrs["k"]
        if not 1 <= k <= x.shape[-1]:
            raise ShapeError(
                f"TopK k={k} out of range for trailing dim {x.shape[-1]}")
        shape = x.shape[:-1] + (k,)
        return [(shape, x.dtype), (shape, np.dtype(np.int32))]

    def compute(self, inputs, ctx):
        x = inputs[0]
        k = self.attrs["k"]
        # argsort descending; stable ordering of the top-k slice.
        order = np.argsort(-x, axis=-1)[..., :k]
        values = np.take_along_axis(x, order, axis=-1)
        return (values, order.astype(np.int32))

    def gradient(self, grads):
        return [None]

    def _estimate_work(self):
        n = self.inputs[0].size
        rows = n // self.inputs[0].shape[-1]
        return reduction_work(self.inputs[0].shape, self.outputs[0].shape) \
            + reduction_work((n,), (rows,))


# -- public constructors ------------------------------------------------------


def _reduce(op_cls, x, axis, keepdims, name) -> Tensor:
    x = as_tensor(x)
    axes = _normalize_axes(axis, x.ndim)
    return op_cls([x], attrs={"axes": axes, "keepdims": keepdims},
                  name=name).output


def reduce_sum(x, axis=None, keepdims: bool = False, name=None) -> Tensor:
    return _reduce(Sum, x, axis, keepdims, name)


def reduce_mean(x, axis=None, keepdims: bool = False, name=None) -> Tensor:
    return _reduce(Mean, x, axis, keepdims, name)


def reduce_max(x, axis=None, keepdims: bool = False, name=None) -> Tensor:
    return _reduce(Max, x, axis, keepdims, name)


def reduce_min(x, axis=None, keepdims: bool = False, name=None) -> Tensor:
    return _reduce(Min, x, axis, keepdims, name)


def argmax(x, axis: int = -1, name=None) -> Tensor:
    x = as_tensor(x)
    if axis < 0:
        axis += x.ndim
    return ArgMax([x], attrs={"axis": axis}, name=name).output


def top_k(x, k: int, name=None) -> tuple[Tensor, Tensor]:
    """(values, indices) of the k largest entries along the last axis."""
    op = TopK([as_tensor(x)], attrs={"k": k}, name=name)
    return op.outputs[0], op.outputs[1]
