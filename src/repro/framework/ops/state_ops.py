"""Structural operations: constants, placeholders, variables, and grouping.

These are the framework's stateful and control primitives. Their runtime
cost is negligible (the paper measures <1-2% of total time outside real
compute operations), but they are required to express every Fathom model:
placeholders carry minibatch inputs, variables hold learnable parameters,
and ``group`` fuses a set of parameter-update operations into the single
"training step" node that a session fetches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..cost_model import WorkEstimate, data_movement_work
from ..errors import FeedError, ShapeError
from ..graph import Operation, OpClass, Tensor, check_shape

if TYPE_CHECKING:  # pragma: no cover
    from ..session import RunContext


class Const(Operation):
    """A compile-time constant value embedded in the graph."""

    type_name = "Const"
    op_class = OpClass.CONTROL

    def _output_specs(self):
        value = self.attrs["value"]
        return [(value.shape, value.dtype)]

    def compute(self, inputs, ctx):
        return (self.attrs["value"],)

    def gradient(self, grad_outputs):
        return []


class Placeholder(Operation):
    """A graph input fed at run time (one minibatch of data)."""

    type_name = "Placeholder"
    op_class = OpClass.CONTROL

    def _output_specs(self):
        return [(self.attrs["shape"], self.attrs["dtype"])]

    def compute(self, inputs, ctx):
        raise FeedError(
            f"placeholder {self.name!r} was not fed; pass it in feed_dict")

    def gradient(self, grad_outputs):
        return []


class VariableOp(Operation):
    """A mutable parameter tensor; reading it yields the current value.

    The value itself lives in the session's variable store, so independent
    sessions over the same graph train independently.
    """

    type_name = "Variable"
    op_class = OpClass.STATE

    def _output_specs(self):
        value = self.attrs["initial_value"]
        return [(value.shape, value.dtype)]

    def compute(self, inputs, ctx):
        return (ctx.read_variable(self),)

    def gradient(self, grad_outputs):
        return []

    @property
    def initial_value(self) -> np.ndarray:
        return self.attrs["initial_value"]


class Assign(Operation):
    """Overwrite a variable with a new value; outputs the new value."""

    type_name = "Assign"
    op_class = OpClass.STATE

    def _output_specs(self):
        return [(self.inputs[0].shape, self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        ctx.write_variable(self.attrs["variable"], inputs[0])
        return (inputs[0],)

    def _estimate_work(self):
        return data_movement_work(self.inputs[0].size)


class Identity(Operation):
    """Pass a tensor through unchanged (useful for naming fetch points)."""

    type_name = "Identity"
    op_class = OpClass.DATA_MOVEMENT

    def _output_specs(self):
        return [(self.inputs[0].shape, self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        return (inputs[0],)

    def gradient(self, grad_outputs):
        return [grad_outputs[0]]

    def _estimate_work(self):
        return data_movement_work(self.inputs[0].size)


class StopGradient(Operation):
    """Identity in the forward pass; blocks gradient flow in the backward.

    deepq uses this to hold its bootstrapped Q-targets fixed, exactly as
    the original DQN implementation does.
    """

    type_name = "StopGradient"
    op_class = OpClass.DATA_MOVEMENT

    def _output_specs(self):
        return [(self.inputs[0].shape, self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        return (inputs[0],)

    def gradient(self, grad_outputs):
        return [None]

    def _estimate_work(self):
        return data_movement_work(self.inputs[0].size)


class Group(Operation):
    """Fuse several operations into one fetchable no-op node.

    Fetching the group's output forces all of its inputs (typically the
    per-variable Apply* update ops) to execute; the output itself is a
    scalar zero.
    """

    type_name = "NoOp"
    op_class = OpClass.CONTROL

    def _output_specs(self):
        return [((), np.dtype(np.float32))]

    def compute(self, inputs, ctx):
        return (np.float32(0.0),)


# -- public constructors ------------------------------------------------------


def constant(value, dtype=None, name: str | None = None) -> Tensor:
    """Embed a constant array or scalar in the graph."""
    array = np.asarray(value, dtype=dtype)
    if array.dtype == np.float64:
        array = array.astype(np.float32)
    if array.dtype == np.int64:
        array = array.astype(np.int32)
    return Const(attrs={"value": array}, name=name).output


def as_tensor(value, dtype=None) -> Tensor:
    """Coerce a python scalar / numpy array / Tensor into a Tensor."""
    if isinstance(value, Tensor):
        return value
    return constant(value, dtype=dtype)


def placeholder(shape: Sequence[int], dtype=np.float32,
                name: str | None = None) -> Tensor:
    """Declare a run-time input of the given static shape."""
    return Placeholder(
        attrs={"shape": check_shape(shape), "dtype": np.dtype(dtype)},
        name=name or "Placeholder").output


def variable(initial_value, name: str | None = None, dtype=None,
             trainable: bool = True) -> Tensor:
    """Create a parameter initialized to ``initial_value``.

    Trainable variables are picked up by ``Optimizer.minimize``; optimizer
    slot accumulators set ``trainable=False``.
    """
    array = np.asarray(initial_value, dtype=dtype)
    if array.dtype == np.float64:
        array = array.astype(np.float32)
    return VariableOp(attrs={"initial_value": array, "trainable": trainable},
                      name=name or "Variable").output


def trainable_variables(graph=None) -> list[Tensor]:
    """All trainable variable tensors in ``graph`` (default graph if None)."""
    from ..graph import get_default_graph
    graph = graph or get_default_graph()
    return [op.output for op in graph.operations
            if isinstance(op, VariableOp) and op.attrs.get("trainable", True)]


def assign(target: Tensor, value: Tensor, name: str | None = None) -> Tensor:
    """Assign ``value`` to the variable that produced ``target``."""
    if not isinstance(target.op, VariableOp):
        raise ShapeError(
            f"assign target must be a Variable output, got {target.op.type_name}")
    if target.shape != value.shape:
        raise ShapeError(
            f"assign shape mismatch: variable {target.shape} vs value {value.shape}")
    return Assign([value], attrs={"variable": target.op}, name=name).output


def identity(value: Tensor, name: str | None = None) -> Tensor:
    return Identity([value], name=name).output


def stop_gradient(value: Tensor, name: str | None = None) -> Tensor:
    return StopGradient([value], name=name).output


def group(*dependencies: Tensor, name: str | None = None) -> Tensor:
    """Bundle tensors so a single fetch forces all of them to run."""
    return Group(list(dependencies), name=name or "group").output
