"""The primitive operation library.

Submodules group operations the way the paper's Fig. 3 taxonomy does:
math (matrix + elementwise), array (data movement), reductions, neural-
network kernels (convolution, pooling, softmax), random sampling, state,
and the CTC loss. The flat re-exports below form the framework's public
op vocabulary.
"""

from . import (array_ops, loss_ops, math_ops, nn_ops, random_ops,
               reduction_ops, state_ops)
from .array_ops import (concat, expand_dims, flatten, gather, one_hot, pad,
                        reshape, shape_of, slice_, split, squeeze, stack,
                        tile, transpose, unstack)
from .loss_ops import ctc_greedy_decode, ctc_loss
from .math_ops import (abs_, add, add_n, batch_matmul, cast, ceil,
                       clip_by_value, divide, elu, equal, exp, floor,
                       greater, greater_equal, leaky_relu, less, less_equal,
                       log, matmul, maximum, minimum, multiply, negative,
                       power, relu, round_, select, sigmoid, sign, sqrt,
                       square, subtract, tanh)
from .nn_ops import (avg_pool, bias_add, conv2d, dropout, log_softmax, lrn,
                     max_pool, softmax, softmax_cross_entropy_with_logits)
from .random_ops import multinomial, random_normal, random_uniform
from .reduction_ops import (argmax, reduce_max, reduce_mean, reduce_min,
                            reduce_sum, top_k)
from .state_ops import (as_tensor, assign, constant, group, identity,
                        placeholder, stop_gradient, trainable_variables,
                        variable)

__all__ = [
    "array_ops", "loss_ops", "math_ops", "nn_ops", "random_ops",
    "reduction_ops", "state_ops",
    # array
    "concat", "expand_dims", "flatten", "gather", "one_hot", "pad",
    "reshape", "shape_of", "slice_", "split", "squeeze", "stack", "tile",
    "transpose", "unstack",
    # loss
    "ctc_greedy_decode", "ctc_loss",
    # math
    "abs_", "add", "add_n", "batch_matmul", "cast", "ceil",
    "clip_by_value", "divide", "elu", "equal", "exp", "floor", "greater",
    "greater_equal", "leaky_relu", "less", "less_equal", "log", "matmul",
    "maximum", "minimum", "multiply", "negative", "power", "relu",
    "round_", "select", "sigmoid", "sign", "sqrt", "square", "subtract",
    "tanh",
    # nn
    "avg_pool", "bias_add", "conv2d", "dropout", "log_softmax", "lrn",
    "max_pool", "softmax", "softmax_cross_entropy_with_logits",
    # random
    "multinomial", "random_normal", "random_uniform",
    # reduction
    "argmax", "reduce_max", "reduce_mean", "reduce_min", "reduce_sum",
    "top_k",
    # state
    "as_tensor", "assign", "constant", "group", "identity", "placeholder",
    "stop_gradient", "trainable_variables", "variable",
]
