"""Elementwise arithmetic and dense matrix operations.

These are the workhorse operation types of the Fathom profiles: ``MatMul``
dominates the fully-connected and recurrent workloads (speech, seq2seq),
elementwise ``Mul``/``Add``/``Tanh``/``Sigmoid`` implement LSTM gate
arithmetic, and the comparison ops build accuracy metrics.

All binary elementwise operations support numpy-style broadcasting; their
gradients reduce-sum over broadcast dimensions so that, e.g., a bias vector
added to a batch of activations receives a correctly-shaped gradient.
"""

from __future__ import annotations

import numpy as np

from ..cost_model import (WorkEstimate, elementwise_work, matmul_work,
                          num_elements)
from ..errors import ShapeError
from ..graph import Operation, OpClass, Tensor
from .state_ops import as_tensor


def _broadcast_shape(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    try:
        return tuple(int(d) for d in np.broadcast_shapes(a, b))
    except ValueError as exc:
        raise ShapeError(f"cannot broadcast {a} with {b}") from exc


def unbroadcast(grad: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reduce a broadcast gradient back down to ``shape``.

    Sums over dimensions that were expanded by broadcasting, then reshapes
    to restore size-1 dimensions.
    """
    from . import array_ops, reduction_ops
    if grad.shape == shape:
        return grad
    n_extra = len(grad.shape) - len(shape)
    axes = list(range(n_extra))
    for i, dim in enumerate(shape):
        if dim == 1 and grad.shape[n_extra + i] != 1:
            axes.append(n_extra + i)
    if axes:
        grad = reduction_ops.reduce_sum(grad, axis=axes, keepdims=False)
    if grad.shape != shape:
        grad = array_ops.reshape(grad, shape)
    return grad


class _BinaryElementwise(Operation):
    """Shared machinery for broadcasting binary elementwise ops."""

    op_class = OpClass.ELEMENTWISE
    _flops_per_element = 1.0

    def _output_specs(self):
        a, b = self.inputs
        shape = _broadcast_shape(a.shape, b.shape)
        dtype = np.result_type(a.dtype, b.dtype)
        return [(shape, dtype)]

    def _estimate_work(self):
        return elementwise_work(self.output.shape, n_inputs=2,
                                flops_per_element=self._flops_per_element)


class Add(_BinaryElementwise):
    type_name = "Add"

    def compute(self, inputs, ctx):
        return (inputs[0] + inputs[1],)

    def gradient(self, grads):
        g = grads[0]
        return [unbroadcast(g, self.inputs[0].shape),
                unbroadcast(g, self.inputs[1].shape)]


class Sub(_BinaryElementwise):
    type_name = "Sub"

    def compute(self, inputs, ctx):
        return (inputs[0] - inputs[1],)

    def gradient(self, grads):
        g = grads[0]
        return [unbroadcast(g, self.inputs[0].shape),
                unbroadcast(negative(g), self.inputs[1].shape)]


class Mul(_BinaryElementwise):
    type_name = "Mul"

    def compute(self, inputs, ctx):
        return (inputs[0] * inputs[1],)

    def gradient(self, grads):
        g = grads[0]
        a, b = self.inputs
        return [unbroadcast(multiply(g, b), a.shape),
                unbroadcast(multiply(g, a), b.shape)]


class Div(_BinaryElementwise):
    type_name = "Div"

    def compute(self, inputs, ctx):
        return (inputs[0] / inputs[1],)

    def gradient(self, grads):
        g = grads[0]
        a, b = self.inputs
        ga = divide(g, b)
        gb = negative(divide(multiply(g, self.output), b))
        return [unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)]


class Pow(_BinaryElementwise):
    type_name = "Pow"
    _flops_per_element = 4.0

    def compute(self, inputs, ctx):
        return (np.power(inputs[0], inputs[1]),)

    def gradient(self, grads):
        from .state_ops import Const
        g = grads[0]
        a, b = self.inputs
        ga = multiply(g, multiply(b, power(a, subtract(b, 1.0))))
        if isinstance(b.op, Const):
            # Exponent is a compile-time constant (the common x**2 case);
            # no gradient flows into it.
            gb = None
        else:
            gb = unbroadcast(multiply(g, multiply(self.output, log(a))), b.shape)
        return [unbroadcast(ga, a.shape), gb]


class Maximum(_BinaryElementwise):
    type_name = "Maximum"

    def compute(self, inputs, ctx):
        return (np.maximum(inputs[0], inputs[1]),)

    def gradient(self, grads):
        g = grads[0]
        a, b = self.inputs
        mask = greater_equal(a, b)
        return [unbroadcast(multiply(g, mask), a.shape),
                unbroadcast(multiply(g, subtract(1.0, mask)), b.shape)]


class Minimum(_BinaryElementwise):
    type_name = "Minimum"

    def compute(self, inputs, ctx):
        return (np.minimum(inputs[0], inputs[1]),)

    def gradient(self, grads):
        g = grads[0]
        a, b = self.inputs
        mask = less_equal(a, b)
        return [unbroadcast(multiply(g, mask), a.shape),
                unbroadcast(multiply(g, subtract(1.0, mask)), b.shape)]


class _Comparison(_BinaryElementwise):
    """Comparisons emit float32 masks (convenient for metric arithmetic)."""

    def _output_specs(self):
        a, b = self.inputs
        return [(_broadcast_shape(a.shape, b.shape), np.dtype(np.float32))]

    def gradient(self, grads):
        return [None, None]


class Equal(_Comparison):
    type_name = "Equal"

    def compute(self, inputs, ctx):
        return ((inputs[0] == inputs[1]).astype(np.float32),)


class Greater(_Comparison):
    type_name = "Greater"

    def compute(self, inputs, ctx):
        return ((inputs[0] > inputs[1]).astype(np.float32),)


class GreaterEqual(_Comparison):
    type_name = "GreaterEqual"

    def compute(self, inputs, ctx):
        return ((inputs[0] >= inputs[1]).astype(np.float32),)


class Less(_Comparison):
    type_name = "Less"

    def compute(self, inputs, ctx):
        return ((inputs[0] < inputs[1]).astype(np.float32),)


class LessEqual(_Comparison):
    type_name = "LessEqual"

    def compute(self, inputs, ctx):
        return ((inputs[0] <= inputs[1]).astype(np.float32),)


class _UnaryElementwise(Operation):
    op_class = OpClass.ELEMENTWISE
    _flops_per_element = 1.0

    def _output_specs(self):
        x = self.inputs[0]
        return [(x.shape, x.dtype)]

    def _estimate_work(self):
        return elementwise_work(self.output.shape, n_inputs=1,
                                flops_per_element=self._flops_per_element)


class Neg(_UnaryElementwise):
    type_name = "Neg"

    def compute(self, inputs, ctx):
        return (-inputs[0],)

    def gradient(self, grads):
        return [negative(grads[0])]


class Exp(_UnaryElementwise):
    type_name = "Exp"
    _flops_per_element = 4.0

    def compute(self, inputs, ctx):
        return (np.exp(inputs[0]),)

    def gradient(self, grads):
        return [multiply(grads[0], self.output)]


class Log(_UnaryElementwise):
    type_name = "Log"
    _flops_per_element = 4.0

    def compute(self, inputs, ctx):
        return (np.log(inputs[0]),)

    def gradient(self, grads):
        return [divide(grads[0], self.inputs[0])]


class Sqrt(_UnaryElementwise):
    type_name = "Sqrt"
    _flops_per_element = 2.0

    def compute(self, inputs, ctx):
        return (np.sqrt(inputs[0]),)

    def gradient(self, grads):
        return [divide(grads[0], multiply(2.0, self.output))]


class Square(_UnaryElementwise):
    type_name = "Square"

    def compute(self, inputs, ctx):
        return (np.square(inputs[0]),)

    def gradient(self, grads):
        return [multiply(grads[0], multiply(2.0, self.inputs[0]))]


class Abs(_UnaryElementwise):
    type_name = "Abs"

    def compute(self, inputs, ctx):
        return (np.abs(inputs[0]),)

    def gradient(self, grads):
        return [multiply(grads[0], sign(self.inputs[0]))]


class Sign(_UnaryElementwise):
    type_name = "Sign"

    def compute(self, inputs, ctx):
        return (np.sign(inputs[0]),)

    def gradient(self, grads):
        return [None]


class Tanh(_UnaryElementwise):
    type_name = "Tanh"
    _flops_per_element = 6.0

    def compute(self, inputs, ctx):
        return (np.tanh(inputs[0]),)

    def gradient(self, grads):
        # d/dx tanh(x) = 1 - tanh(x)^2, expressed over the cached output.
        return [multiply(grads[0], subtract(1.0, square(self.output)))]


class Sigmoid(_UnaryElementwise):
    type_name = "Sigmoid"
    _flops_per_element = 5.0

    def compute(self, inputs, ctx):
        x = inputs[0]
        # Numerically stable two-sided formulation.
        out = np.empty_like(x, dtype=np.float32)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return (out,)

    def gradient(self, grads):
        return [multiply(grads[0], multiply(self.output,
                                            subtract(1.0, self.output)))]


class Relu(_UnaryElementwise):
    type_name = "Relu"

    def compute(self, inputs, ctx):
        return (np.maximum(inputs[0], 0.0),)

    def gradient(self, grads):
        return [ReluGrad([grads[0], self.output]).output]


class ReluGrad(Operation):
    """Backward kernel for Relu: pass gradient where the activation fired."""

    type_name = "ReluGrad"
    op_class = OpClass.ELEMENTWISE

    def _output_specs(self):
        return [(self.inputs[0].shape, self.inputs[0].dtype)]

    def compute(self, inputs, ctx):
        grad, activated = inputs
        return (grad * (activated > 0.0),)

    def _estimate_work(self):
        return elementwise_work(self.output.shape, n_inputs=2)


class Floor(_UnaryElementwise):
    type_name = "Floor"

    def compute(self, inputs, ctx):
        return (np.floor(inputs[0]),)

    def gradient(self, grads):
        return [None]


class Ceil(_UnaryElementwise):
    type_name = "Ceil"

    def compute(self, inputs, ctx):
        return (np.ceil(inputs[0]),)

    def gradient(self, grads):
        return [None]


class Round(_UnaryElementwise):
    type_name = "Round"

    def compute(self, inputs, ctx):
        return (np.round(inputs[0]),)

    def gradient(self, grads):
        return [None]


class Elu(_UnaryElementwise):
    """Exponential linear unit: x if x > 0 else alpha*(exp(x)-1)."""

    type_name = "Elu"
    _flops_per_element = 4.0

    def compute(self, inputs, ctx):
        x = inputs[0]
        alpha = self.attrs["alpha"]
        return (np.where(x > 0.0, x,
                         alpha * (np.exp(np.minimum(x, 0.0)) - 1.0))
                .astype(x.dtype),)

    def gradient(self, grads):
        # d/dx = 1 for x>0, alpha*exp(x) = y + alpha otherwise.
        alpha = self.attrs["alpha"]
        positive = greater(self.inputs[0], 0.0)
        slope = add(multiply(positive, 1.0),
                    multiply(subtract(1.0, positive),
                             add(self.output, alpha)))
        return [multiply(grads[0], slope)]


class Select(Operation):
    """Elementwise conditional: ``where(condition, x, y)``.

    ``condition`` is a float mask (1.0 selects x); gradients flow to x
    and y through the mask, never to the condition.
    """

    type_name = "Select"
    op_class = OpClass.ELEMENTWISE

    def _output_specs(self):
        cond, x, y = self.inputs
        shape = _broadcast_shape(_broadcast_shape(cond.shape, x.shape),
                                 y.shape)
        return [(shape, np.result_type(x.dtype, y.dtype))]

    def compute(self, inputs, ctx):
        cond, x, y = inputs
        return (np.where(cond != 0.0, x, y),)

    def gradient(self, grads):
        g = grads[0]
        cond, x, y = self.inputs
        gx = unbroadcast(multiply(g, cond), x.shape)
        gy = unbroadcast(multiply(g, subtract(1.0, cond)), y.shape)
        return [None, gx, gy]

    def _estimate_work(self):
        return elementwise_work(self.output.shape, n_inputs=3)


class Cast(_UnaryElementwise):
    type_name = "Cast"

    def _output_specs(self):
        return [(self.inputs[0].shape, self.attrs["dtype"])]

    def compute(self, inputs, ctx):
        return (inputs[0].astype(self.attrs["dtype"]),)

    def gradient(self, grads):
        if grads[0] is None:
            return [None]
        return [cast(grads[0], self.inputs[0].dtype)]


class AddN(Operation):
    """N-ary elementwise sum; autodiff's gradient accumulator.

    Appears in the seq2seq profile (Fig. 6b): every parameter reused across
    unrolled timesteps accumulates its per-step gradients through AddN.
    """

    type_name = "AddN"
    op_class = OpClass.ELEMENTWISE

    def _output_specs(self):
        first = self.inputs[0]
        for tensor in self.inputs[1:]:
            if tensor.shape != first.shape:
                raise ShapeError(
                    f"AddN inputs must share a shape, got {first.shape} "
                    f"and {tensor.shape}")
        return [(first.shape, first.dtype)]

    def compute(self, inputs, ctx):
        total = inputs[0].copy()
        for value in inputs[1:]:
            total += value
        return (total,)

    def gradient(self, grads):
        return [grads[0]] * len(self.inputs)

    def _estimate_work(self):
        return elementwise_work(self.output.shape, n_inputs=len(self.inputs),
                                flops_per_element=float(len(self.inputs) - 1))


class MatMul(Operation):
    """Dense 2-D matrix multiplication, optionally transposing inputs."""

    type_name = "MatMul"
    op_class = OpClass.MATRIX

    def _output_specs(self):
        a, b = self.inputs
        if a.ndim != 2 or b.ndim != 2:
            raise ShapeError(
                f"MatMul requires rank-2 inputs, got {a.shape} and {b.shape}")
        m, ka = a.shape[::-1] if self.attrs["transpose_a"] else a.shape
        kb, n = b.shape[::-1] if self.attrs["transpose_b"] else b.shape
        if ka != kb:
            raise ShapeError(
                f"MatMul inner dimensions differ: {a.shape} x {b.shape} "
                f"(transpose_a={self.attrs['transpose_a']}, "
                f"transpose_b={self.attrs['transpose_b']})")
        return [((m, n), np.result_type(a.dtype, b.dtype))]

    def compute(self, inputs, ctx):
        a, b = inputs
        if self.attrs["transpose_a"]:
            a = a.T
        if self.attrs["transpose_b"]:
            b = b.T
        return (a @ b,)

    def gradient(self, grads):
        g = grads[0]
        a, b = self.inputs
        ta, tb = self.attrs["transpose_a"], self.attrs["transpose_b"]
        if not ta and not tb:
            ga = matmul(g, b, transpose_b=True)
            gb = matmul(a, g, transpose_a=True)
        elif not ta and tb:
            ga = matmul(g, b)
            gb = matmul(g, a, transpose_a=True)
        elif ta and not tb:
            ga = matmul(b, g, transpose_b=True)
            gb = matmul(a, g)
        else:
            ga = matmul(b, g, transpose_a=True, transpose_b=True)
            gb = matmul(g, a, transpose_a=True, transpose_b=True)
        return [ga, gb]

    def _estimate_work(self):
        m, n = self.output.shape
        a = self.inputs[0]
        k = a.shape[0] if self.attrs["transpose_a"] else a.shape[1]
        return matmul_work(m, k, n)


class BatchMatMul(Operation):
    """Batched 3-D matrix multiplication: ``(b, m, k) @ (b, k, n)``."""

    type_name = "BatchMatMul"
    op_class = OpClass.MATRIX

    def _output_specs(self):
        a, b = self.inputs
        if a.ndim != 3 or b.ndim != 3:
            raise ShapeError(
                f"BatchMatMul requires rank-3 inputs, got {a.shape}, {b.shape}")
        if a.shape[0] != b.shape[0]:
            raise ShapeError(
                f"BatchMatMul batch dims differ: {a.shape[0]} vs {b.shape[0]}")
        ta, tb = self.attrs["adj_a"], self.attrs["adj_b"]
        m, ka = (a.shape[2], a.shape[1]) if ta else (a.shape[1], a.shape[2])
        kb, n = (b.shape[2], b.shape[1]) if tb else (b.shape[1], b.shape[2])
        if ka != kb:
            raise ShapeError(
                f"BatchMatMul inner dimensions differ: {a.shape} x {b.shape}")
        return [((a.shape[0], m, n), np.result_type(a.dtype, b.dtype))]

    def compute(self, inputs, ctx):
        a, b = inputs
        if self.attrs["adj_a"]:
            a = np.swapaxes(a, 1, 2)
        if self.attrs["adj_b"]:
            b = np.swapaxes(b, 1, 2)
        return (a @ b,)

    def gradient(self, grads):
        g = grads[0]
        a, b = self.inputs
        ta, tb = self.attrs["adj_a"], self.attrs["adj_b"]
        if not ta and not tb:
            ga = batch_matmul(g, b, adj_b=True)
            gb = batch_matmul(a, g, adj_a=True)
        elif not ta and tb:
            ga = batch_matmul(g, b)
            gb = batch_matmul(g, a, adj_a=True)
        elif ta and not tb:
            ga = batch_matmul(b, g, adj_b=True)
            gb = batch_matmul(a, g)
        else:
            ga = batch_matmul(b, g, adj_a=True, adj_b=True)
            gb = batch_matmul(g, a, adj_a=True, adj_b=True)
        return [ga, gb]

    def _estimate_work(self):
        batch, m, n = self.output.shape
        a = self.inputs[0]
        k = a.shape[1] if self.attrs["adj_a"] else a.shape[2]
        return matmul_work(batch * m, k, n)


# -- public constructors ------------------------------------------------------


def _binary(op_cls, a, b, name):
    a, b = as_tensor(a), as_tensor(b)
    return op_cls([a, b], name=name).output


def add(a, b, name=None) -> Tensor:
    return _binary(Add, a, b, name)


def subtract(a, b, name=None) -> Tensor:
    return _binary(Sub, a, b, name)


def multiply(a, b, name=None) -> Tensor:
    return _binary(Mul, a, b, name)


def divide(a, b, name=None) -> Tensor:
    return _binary(Div, a, b, name)


def power(a, b, name=None) -> Tensor:
    return _binary(Pow, a, b, name)


def maximum(a, b, name=None) -> Tensor:
    return _binary(Maximum, a, b, name)


def minimum(a, b, name=None) -> Tensor:
    return _binary(Minimum, a, b, name)


def equal(a, b, name=None) -> Tensor:
    return _binary(Equal, a, b, name)


def greater(a, b, name=None) -> Tensor:
    return _binary(Greater, a, b, name)


def greater_equal(a, b, name=None) -> Tensor:
    return _binary(GreaterEqual, a, b, name)


def less(a, b, name=None) -> Tensor:
    return _binary(Less, a, b, name)


def less_equal(a, b, name=None) -> Tensor:
    return _binary(LessEqual, a, b, name)


def add_n(values, name=None) -> Tensor:
    tensors = [as_tensor(v) for v in values]
    if len(tensors) == 1:
        return tensors[0]
    return AddN(tensors, name=name).output


def negative(x, name=None) -> Tensor:
    return Neg([as_tensor(x)], name=name).output


def exp(x, name=None) -> Tensor:
    return Exp([as_tensor(x)], name=name).output


def log(x, name=None) -> Tensor:
    return Log([as_tensor(x)], name=name).output


def sqrt(x, name=None) -> Tensor:
    return Sqrt([as_tensor(x)], name=name).output


def square(x, name=None) -> Tensor:
    return Square([as_tensor(x)], name=name).output


def abs_(x, name=None) -> Tensor:
    return Abs([as_tensor(x)], name=name).output


def sign(x, name=None) -> Tensor:
    return Sign([as_tensor(x)], name=name).output


def tanh(x, name=None) -> Tensor:
    return Tanh([as_tensor(x)], name=name).output


def sigmoid(x, name=None) -> Tensor:
    return Sigmoid([as_tensor(x)], name=name).output


def relu(x, name=None) -> Tensor:
    return Relu([as_tensor(x)], name=name).output


def floor(x, name=None) -> Tensor:
    return Floor([as_tensor(x)], name=name).output


def ceil(x, name=None) -> Tensor:
    return Ceil([as_tensor(x)], name=name).output


def round_(x, name=None) -> Tensor:
    return Round([as_tensor(x)], name=name).output


def elu(x, alpha: float = 1.0, name=None) -> Tensor:
    return Elu([as_tensor(x)], attrs={"alpha": float(alpha)},
               name=name).output


def select(condition, x, y, name=None) -> Tensor:
    return Select([as_tensor(condition), as_tensor(x), as_tensor(y)],
                  name=name).output


def leaky_relu(x, alpha: float = 0.2, name=None) -> Tensor:
    """max(x, alpha*x), composed from primitives."""
    x = as_tensor(x)
    return maximum(x, multiply(x, alpha), name=name)


def clip_by_value(x, low, high, name=None) -> Tensor:
    """Clamp x into [low, high], composed from Minimum/Maximum."""
    return minimum(maximum(as_tensor(x), low), high, name=name)


def cast(x, dtype, name=None) -> Tensor:
    return Cast([as_tensor(x)], attrs={"dtype": np.dtype(dtype)},
                name=name).output


def matmul(a, b, transpose_a: bool = False, transpose_b: bool = False,
           name=None) -> Tensor:
    return MatMul([as_tensor(a), as_tensor(b)],
                  attrs={"transpose_a": transpose_a,
                         "transpose_b": transpose_b},
                  name=name).output


def batch_matmul(a, b, adj_a: bool = False, adj_b: bool = False,
                 name=None) -> Tensor:
    return BatchMatMul([as_tensor(a), as_tensor(b)],
                       attrs={"adj_a": adj_a, "adj_b": adj_b},
                       name=name).output
