"""Random sampling operations.

Group E of the Fig. 3 taxonomy. The variational autoencoder is the suite's
showcase for these: it samples from a standard normal *during inference*
(the reparameterization trick), which the paper calls out as unusual among
deep learning models.

All randomness flows through the session's seeded generator, so runs are
reproducible given (graph, seed).
"""

from __future__ import annotations

import numpy as np

from ..cost_model import WorkEstimate, num_elements
from ..errors import ShapeError
from ..graph import Operation, OpClass, Tensor, check_shape
from .state_ops import as_tensor


class _RandomOp(Operation):
    op_class = OpClass.RANDOM_SAMPLING

    def _output_specs(self):
        return [(self.attrs["shape"], np.dtype(np.float32))]

    def gradient(self, grads):
        return []

    def _estimate_work(self):
        n = num_elements(self.attrs["shape"])
        # Generating a random float costs a handful of integer ops.
        return WorkEstimate(flops=10.0 * n, bytes_moved=4.0 * n,
                            trip_count=float(n))


class StandardRandomNormal(_RandomOp):
    """Sample i.i.d. values from N(0, 1)."""

    type_name = "StandardRandomNormal"

    def compute(self, inputs, ctx):
        return (ctx.rng.standard_normal(self.attrs["shape"],
                                        dtype=np.float32),)


class RandomUniform(_RandomOp):
    """Sample i.i.d. values from U[0, 1)."""

    type_name = "RandomUniform"

    def compute(self, inputs, ctx):
        return (ctx.rng.random(self.attrs["shape"], dtype=np.float32),)


class Multinomial(Operation):
    """Draw one categorical sample per row of a logits matrix."""

    type_name = "Multinomial"
    op_class = OpClass.RANDOM_SAMPLING

    def _output_specs(self):
        logits = self.inputs[0]
        if logits.ndim != 2:
            raise ShapeError(f"Multinomial expects rank-2 logits, got "
                             f"{logits.shape}")
        return [((logits.shape[0], self.attrs["num_samples"]),
                 np.dtype(np.int32))]

    def compute(self, inputs, ctx):
        logits = inputs[0]
        shifted = logits - logits.max(axis=-1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=-1, keepdims=True)
        num_samples = self.attrs["num_samples"]
        out = np.empty((logits.shape[0], num_samples), dtype=np.int32)
        for row in range(logits.shape[0]):
            out[row] = ctx.rng.choice(logits.shape[1], size=num_samples,
                                      p=probs[row])
        return (out,)

    def gradient(self, grads):
        return [None]

    def _estimate_work(self):
        n = self.inputs[0].size
        return WorkEstimate(flops=12.0 * n, bytes_moved=8.0 * n,
                            trip_count=float(self.inputs[0].shape[0]))


# -- public constructors ------------------------------------------------------


def random_normal(shape, name=None) -> Tensor:
    return StandardRandomNormal(
        attrs={"shape": check_shape(shape)}, name=name).output


def random_uniform(shape, name=None) -> Tensor:
    return RandomUniform(attrs={"shape": check_shape(shape)},
                         name=name).output


def multinomial(logits, num_samples: int = 1, name=None) -> Tensor:
    return Multinomial([as_tensor(logits)],
                       attrs={"num_samples": num_samples}, name=name).output
