"""Data-movement operations: reshaping, transposition, tiling, gathering.

In the paper's taxonomy these are "Data Movement" (group G of Fig. 3).
They perform no arithmetic but can dominate profiles in models whose
structure shuffles state around: seq2seq's attention mechanism and
memnet's memory addressing are the canonical examples (Figs. 3, 6b, 6c).
"""

from __future__ import annotations

from math import prod

import numpy as np

from ..cost_model import WorkEstimate, data_movement_work, num_elements
from ..errors import ShapeError
from ..graph import Operation, OpClass, Tensor, check_shape
from .state_ops import as_tensor


class Reshape(Operation):
    type_name = "Reshape"
    op_class = OpClass.DATA_MOVEMENT

    def _output_specs(self):
        x = self.inputs[0]
        target = list(self.attrs["shape"])
        if target.count(-1) > 1:
            raise ShapeError(f"reshape target {target} has multiple -1 dims")
        if -1 in target:
            known = prod(d for d in target if d != -1)
            if known == 0 or x.size % known != 0:
                raise ShapeError(
                    f"cannot infer -1 in reshape of {x.shape} to {target}")
            target[target.index(-1)] = x.size // known
        shape = check_shape(target)
        if num_elements(shape) != x.size:
            raise ShapeError(
                f"reshape size mismatch: {x.shape} ({x.size}) to "
                f"{shape} ({num_elements(shape)})")
        return [(shape, x.dtype)]

    def compute(self, inputs, ctx):
        return (inputs[0].reshape(self.output.shape),)

    def gradient(self, grads):
        return [reshape(grads[0], self.inputs[0].shape)]

    def _estimate_work(self):
        # Reshape of a contiguous array is metadata-only.
        return WorkEstimate(flops=0.0, bytes_moved=64.0, trip_count=1.0)


class Transpose(Operation):
    type_name = "Transpose"
    op_class = OpClass.DATA_MOVEMENT

    def _output_specs(self):
        x = self.inputs[0]
        perm = self.attrs["perm"]
        if sorted(perm) != list(range(x.ndim)):
            raise ShapeError(f"invalid permutation {perm} for rank {x.ndim}")
        return [(tuple(x.shape[p] for p in perm), x.dtype)]

    def compute(self, inputs, ctx):
        return (np.ascontiguousarray(inputs[0].transpose(self.attrs["perm"])),)

    def gradient(self, grads):
        perm = self.attrs["perm"]
        inverse = [0] * len(perm)
        for i, p in enumerate(perm):
            inverse[p] = i
        return [transpose(grads[0], inverse)]

    def _estimate_work(self):
        return data_movement_work(self.inputs[0].size)


class Tile(Operation):
    """Repeat a tensor along each axis (``multiples[i]`` copies on axis i)."""

    type_name = "Tile"
    op_class = OpClass.DATA_MOVEMENT

    def _output_specs(self):
        x = self.inputs[0]
        multiples = self.attrs["multiples"]
        if len(multiples) != x.ndim:
            raise ShapeError(
                f"Tile multiples {multiples} must match rank of {x.shape}")
        shape = tuple(d * m for d, m in zip(x.shape, multiples))
        return [(shape, x.dtype)]

    def compute(self, inputs, ctx):
        return (np.tile(inputs[0], self.attrs["multiples"]),)

    def gradient(self, grads):
        from . import reduction_ops
        g = grads[0]
        x = self.inputs[0]
        multiples = self.attrs["multiples"]
        # View the tiled gradient as (m0, s0, m1, s1, ...) and sum over the
        # repeat axes to accumulate contributions from each copy.
        interleaved: list[int] = []
        for dim, mult in zip(x.shape, multiples):
            interleaved.extend((mult, dim))
        g = reshape(g, interleaved)
        g = reduction_ops.reduce_sum(g, axis=list(range(0, 2 * x.ndim, 2)))
        return [reshape(g, x.shape)]

    def _estimate_work(self):
        return data_movement_work(self.inputs[0].size, self.output.size)


class Concat(Operation):
    type_name = "Concat"
    op_class = OpClass.DATA_MOVEMENT

    def _output_specs(self):
        axis = self.attrs["axis"]
        first = self.inputs[0]
        total = 0
        for tensor in self.inputs:
            if tensor.ndim != first.ndim:
                raise ShapeError("Concat inputs must have equal rank")
            for dim in range(first.ndim):
                if dim != axis and tensor.shape[dim] != first.shape[dim]:
                    raise ShapeError(
                        f"Concat shapes {first.shape} and {tensor.shape} "
                        f"differ outside axis {axis}")
            total += tensor.shape[axis]
        shape = list(first.shape)
        shape[axis] = total
        return [(tuple(shape), first.dtype)]

    def compute(self, inputs, ctx):
        return (np.concatenate(inputs, axis=self.attrs["axis"]),)

    def gradient(self, grads):
        g = grads[0]
        axis = self.attrs["axis"]
        out, offset = [], 0
        for tensor in self.inputs:
            size = tensor.shape[axis]
            begin = [0] * tensor.ndim
            begin[axis] = offset
            out.append(slice_(g, begin, tensor.shape))
            offset += size
        return out

    def _estimate_work(self):
        return data_movement_work(self.output.size)


class Slice(Operation):
    """Extract a contiguous block: ``begin`` offsets, ``size`` extents."""

    type_name = "Slice"
    op_class = OpClass.DATA_MOVEMENT

    def _output_specs(self):
        x = self.inputs[0]
        begin, size = self.attrs["begin"], self.attrs["size"]
        if len(begin) != x.ndim or len(size) != x.ndim:
            raise ShapeError("Slice begin/size must match input rank")
        for b, s, d in zip(begin, size, x.shape):
            if b < 0 or s < 0 or b + s > d:
                raise ShapeError(
                    f"slice begin={begin} size={size} out of bounds for "
                    f"{x.shape}")
        return [(tuple(size), x.dtype)]

    def compute(self, inputs, ctx):
        idx = tuple(slice(b, b + s) for b, s in
                    zip(self.attrs["begin"], self.attrs["size"]))
        return (np.ascontiguousarray(inputs[0][idx]),)

    def gradient(self, grads):
        x = self.inputs[0]
        begin, size = self.attrs["begin"], self.attrs["size"]
        paddings = [(b, d - b - s) for b, s, d in zip(begin, size, x.shape)]
        return [pad(grads[0], paddings)]

    def _estimate_work(self):
        return data_movement_work(self.output.size)


class Pad(Operation):
    """Zero-pad each axis by ``paddings[i] = (before, after)``."""

    type_name = "Pad"
    op_class = OpClass.DATA_MOVEMENT

    def _output_specs(self):
        x = self.inputs[0]
        paddings = self.attrs["paddings"]
        if len(paddings) != x.ndim:
            raise ShapeError("Pad paddings must match input rank")
        shape = tuple(d + lo + hi for d, (lo, hi) in zip(x.shape, paddings))
        return [(shape, x.dtype)]

    def compute(self, inputs, ctx):
        return (np.pad(inputs[0], self.attrs["paddings"]),)

    def gradient(self, grads):
        x = self.inputs[0]
        begin = [lo for lo, _ in self.attrs["paddings"]]
        return [slice_(grads[0], begin, x.shape)]

    def _estimate_work(self):
        return data_movement_work(self.output.size)


class Gather(Operation):
    """Row lookup: ``params[indices]`` along axis 0 (embedding lookup)."""

    type_name = "Gather"
    op_class = OpClass.DATA_MOVEMENT

    def _output_specs(self):
        params, indices = self.inputs
        if params.ndim < 1:
            raise ShapeError("Gather params must have rank >= 1")
        return [(indices.shape + params.shape[1:], params.dtype)]

    def compute(self, inputs, ctx):
        params, indices = inputs
        return (params[indices.astype(np.int64)],)

    def gradient(self, grads):
        params, indices = self.inputs
        grad = UnsortedSegmentSum(
            [grads[0], indices],
            attrs={"num_segments": params.shape[0]}).output
        return [grad, None]

    def _estimate_work(self):
        return data_movement_work(self.output.size)


class UnsortedSegmentSum(Operation):
    """Scatter-add rows of ``data`` into ``num_segments`` buckets.

    This is the backward kernel for Gather: embedding gradients accumulate
    by vocabulary index. It is memory-bound and has limited parallelism
    (collisions on popular indices), which is part of why optimizer-side
    work resists scaling in Fig. 6.
    """

    type_name = "UnsortedSegmentSum"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        data, indices = self.inputs
        inner = data.shape[indices.ndim:]
        return [((self.attrs["num_segments"],) + inner, data.dtype)]

    def compute(self, inputs, ctx):
        data, indices = inputs
        out = np.zeros(self.output.shape, dtype=data.dtype)
        flat_idx = indices.astype(np.int64).reshape(-1)
        flat_data = data.reshape((flat_idx.size,) + self.output.shape[1:])
        np.add.at(out, flat_idx, flat_data)
        return (out,)

    def _estimate_work(self):
        n = self.inputs[0].size
        return WorkEstimate(flops=float(n), bytes_moved=8.0 * n,
                            trip_count=float(self.attrs["num_segments"]))


class OneHot(Operation):
    """Expand integer class indices into one-hot float vectors."""

    type_name = "OneHot"
    op_class = OpClass.REDUCTION_EXPANSION

    def _output_specs(self):
        indices = self.inputs[0]
        return [(indices.shape + (self.attrs["depth"],), np.dtype(np.float32))]

    def compute(self, inputs, ctx):
        depth = self.attrs["depth"]
        flat = inputs[0].astype(np.int64).reshape(-1)
        out = np.zeros((flat.size, depth), dtype=np.float32)
        out[np.arange(flat.size), flat] = 1.0
        return (out.reshape(self.output.shape),)

    def gradient(self, grads):
        return [None]

    def _estimate_work(self):
        return data_movement_work(self.inputs[0].size, self.output.size)


class ShapeOp(Operation):
    """Return the (static) shape of a tensor as an int32 vector.

    Shows up in the memnet profile (Fig. 6c): TensorFlow emits Shape nodes
    for dynamic reshapes; we keep the node so profiles look the same even
    though our shapes are static.
    """

    type_name = "Shape"
    op_class = OpClass.DATA_MOVEMENT

    def _output_specs(self):
        return [((self.inputs[0].ndim,), np.dtype(np.int32))]

    def compute(self, inputs, ctx):
        return (np.asarray(inputs[0].shape, dtype=np.int32),)

    def gradient(self, grads):
        return [None]


class ExpandDims(Operation):
    type_name = "ExpandDims"
    op_class = OpClass.DATA_MOVEMENT

    def _output_specs(self):
        x = self.inputs[0]
        axis = self.attrs["axis"]
        if axis < 0:
            axis += x.ndim + 1
        shape = x.shape[:axis] + (1,) + x.shape[axis:]
        return [(shape, x.dtype)]

    def compute(self, inputs, ctx):
        return (inputs[0].reshape(self.output.shape),)

    def gradient(self, grads):
        return [reshape(grads[0], self.inputs[0].shape)]


class Squeeze(Operation):
    type_name = "Squeeze"
    op_class = OpClass.DATA_MOVEMENT

    def _output_specs(self):
        x = self.inputs[0]
        axes = self.attrs["axes"]
        for axis in axes:
            if x.shape[axis] != 1:
                raise ShapeError(
                    f"cannot squeeze axis {axis} of shape {x.shape}")
        shape = tuple(d for i, d in enumerate(x.shape) if i not in axes)
        return [(shape, x.dtype)]

    def compute(self, inputs, ctx):
        return (inputs[0].reshape(self.output.shape),)

    def gradient(self, grads):
        return [reshape(grads[0], self.inputs[0].shape)]


# -- public constructors ------------------------------------------------------


def reshape(x, shape, name=None) -> Tensor:
    return Reshape([as_tensor(x)], attrs={"shape": tuple(shape)},
                   name=name).output


def transpose(x, perm=None, name=None) -> Tensor:
    x = as_tensor(x)
    if perm is None:
        perm = list(reversed(range(x.ndim)))
    return Transpose([x], attrs={"perm": list(perm)}, name=name).output


def tile(x, multiples, name=None) -> Tensor:
    return Tile([as_tensor(x)], attrs={"multiples": tuple(multiples)},
                name=name).output


def concat(values, axis: int, name=None) -> Tensor:
    tensors = [as_tensor(v) for v in values]
    if not tensors:
        raise ShapeError("concat needs at least one input")
    if axis < 0:
        axis += tensors[0].ndim
    return Concat(tensors, attrs={"axis": axis}, name=name).output


def slice_(x, begin, size, name=None) -> Tensor:
    return Slice([as_tensor(x)],
                 attrs={"begin": tuple(begin), "size": tuple(size)},
                 name=name).output


def split(x, num_splits: int, axis: int, name=None) -> list[Tensor]:
    """Split a tensor into ``num_splits`` equal slices along ``axis``."""
    x = as_tensor(x)
    if axis < 0:
        axis += x.ndim
    if x.shape[axis] % num_splits != 0:
        raise ShapeError(
            f"cannot split axis {axis} of {x.shape} into {num_splits} parts")
    step = x.shape[axis] // num_splits
    parts = []
    for i in range(num_splits):
        begin = [0] * x.ndim
        begin[axis] = i * step
        size = list(x.shape)
        size[axis] = step
        parts.append(slice_(x, begin, size, name=name))
    return parts


def pad(x, paddings, name=None) -> Tensor:
    return Pad([as_tensor(x)],
               attrs={"paddings": [tuple(p) for p in paddings]},
               name=name).output


def gather(params, indices, name=None) -> Tensor:
    return Gather([as_tensor(params), as_tensor(indices, dtype=np.int32)],
                  name=name).output


def one_hot(indices, depth: int, name=None) -> Tensor:
    return OneHot([as_tensor(indices, dtype=np.int32)],
                  attrs={"depth": depth}, name=name).output


def shape_of(x, name=None) -> Tensor:
    return ShapeOp([as_tensor(x)], name=name).output


def expand_dims(x, axis: int, name=None) -> Tensor:
    return ExpandDims([as_tensor(x)], attrs={"axis": axis}, name=name).output


def squeeze(x, axes, name=None) -> Tensor:
    x = as_tensor(x)
    axes = [a + x.ndim if a < 0 else a for a in axes]
    return Squeeze([x], attrs={"axes": sorted(axes)}, name=name).output


def flatten(x, name=None) -> Tensor:
    """Collapse all but the leading (batch) dimension."""
    x = as_tensor(x)
    return reshape(x, (x.shape[0], -1), name=name)


def stack(values, axis: int = 0, name=None) -> Tensor:
    """Join same-shaped tensors along a new axis (composed op)."""
    tensors = [expand_dims(as_tensor(v), axis) for v in values]
    return concat(tensors, axis=axis, name=name)


def unstack(x, axis: int = 0, name=None) -> list[Tensor]:
    """Split a tensor into its slices along ``axis``, dropping the axis."""
    x = as_tensor(x)
    if axis < 0:
        axis += x.ndim
    pieces = split(x, x.shape[axis], axis=axis, name=name)
    return [squeeze(piece, [axis]) for piece in pieces]
