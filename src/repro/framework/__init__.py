"""A TensorFlow-style dataflow framework built for workload characterization.

This package is the substrate the Fathom reproduction runs on: models are
coarse-grained dataflow graphs of primitive *operations* (the smallest
schedulable unit), executed by a :class:`~repro.framework.session.Session`
with per-operation tracing, differentiated symbolically by
:func:`~repro.framework.autodiff.gradients`, and costed by the analytic
device models in :mod:`~repro.framework.device_model`.

Quick tour::

    from repro import framework as fw

    fw.reset_default_graph()
    x = fw.ops.placeholder((4, 8), name="x")
    w = fw.ops.variable(np.zeros((8, 2), dtype=np.float32))
    y = fw.ops.matmul(x, w)
    sess = fw.Session(seed=0)
    print(sess.run(y, feed_dict={x: np.ones((4, 8))}))
"""

from . import (autodiff, calibrate, checkpoint, compiler, cost_model,
               device_model, faults, fuse, gradient_check, graph_export,
               initializers, layers, memory, ops, optimizers, placement,
               resilience, rewrite, rnn)
from .autodiff import gradients
from .compiler import (ExecutionPlan, PassQuarantine, PlanOptions,
                       QuarantineEntry, compile_plan)
from .calibrate import calibrate_cpu
from .gradient_check import check_gradients
from .cost_model import WorkEstimate
from .device_model import CPUDeviceModel, GPUDeviceModel, cpu, gpu
from .errors import (DifferentiationError, ExecutionError, FeedError,
                     FrameworkError, GraphError, GuardrailViolation,
                     ShapeError)
from .faults import (FaultInjector, FaultPlan, FaultSpec, InjectedFault,
                     InjectionEvent)
from .graph import (Graph, OpClass, Operation, OP_TYPE_REGISTRY, Tensor,
                    get_default_graph, name_scope, reset_default_graph)
from .memory import MemoryPlan, plan_memory
from .optimizers import (AdamOptimizer, GradientDescentOptimizer,
                         MomentumOptimizer, Optimizer, RMSPropOptimizer)
from .resilience import (FailureEvent, NonFiniteLossError, ResilienceConfig,
                         ResilientRunner)
from .session import (DegradationEvent, GuardrailPolicy, HealingConfig,
                      HealingPolicy, RunContext, Session, SessionSnapshot)

__all__ = [
    "autodiff", "calibrate", "checkpoint", "compiler", "cost_model",
    "device_model", "faults", "fuse", "gradient_check", "graph_export",
    "initializers", "layers", "memory", "ops", "optimizers", "placement",
    "resilience", "rewrite", "rnn",
    "calibrate_cpu", "check_gradients",
    "gradients", "WorkEstimate",
    "ExecutionPlan", "PassQuarantine", "PlanOptions", "QuarantineEntry",
    "compile_plan",
    "MemoryPlan", "plan_memory",
    "CPUDeviceModel", "GPUDeviceModel", "cpu", "gpu",
    "DifferentiationError", "ExecutionError", "FeedError", "FrameworkError",
    "GraphError", "GuardrailViolation", "ShapeError",
    "FaultInjector", "FaultPlan", "FaultSpec", "InjectedFault",
    "InjectionEvent",
    "FailureEvent", "NonFiniteLossError", "ResilienceConfig",
    "ResilientRunner",
    "Graph", "OpClass", "Operation", "OP_TYPE_REGISTRY", "Tensor",
    "get_default_graph", "name_scope", "reset_default_graph",
    "AdamOptimizer", "GradientDescentOptimizer", "MomentumOptimizer",
    "Optimizer", "RMSPropOptimizer",
    "DegradationEvent", "GuardrailPolicy", "HealingConfig", "HealingPolicy",
    "RunContext", "Session", "SessionSnapshot",
]
