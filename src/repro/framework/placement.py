"""Multi-device placement and schedule simulation.

Section V-A of the paper explains why its experiments run on a CPU:
TensorFlow "ha[s] incomplete support for all operations, and the
fall-back behavior is to run unsupported operations on the CPU, splitting
execution across the PCI bus. This causes crippling performance
problems." This module builds the machinery to *quantify* that claim:

* a :class:`Placement` assigns every operation to a named device;
* a :class:`TransferModel` prices cross-device tensor movement (PCIe
  bandwidth + per-transfer latency);
* :func:`simulate_schedule` performs event-driven list scheduling of the
  dataflow DAG over the devices, respecting data dependencies, per-device
  serialization, and transfer delays, and returns the full schedule.

The companion analysis (:mod:`repro.analysis.placement_study` and
``benchmarks/bench_placement_pci.py``) reproduces the paper's
observation: a GPU execution with CPU fall-back operations can be slower
than either pure device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from .cost_model import ELEMENT_BYTES
from .device_model import CPUDeviceModel, DeviceModel, GPUDeviceModel
from .errors import FrameworkError
from .graph import OpClass, Operation, Tensor

#: operation types without GPU kernels in a TF-v0.8-era runtime; the
#: fall-back placement pins these to the CPU.
DEFAULT_CPU_ONLY_TYPES = frozenset({
    "StandardRandomNormal", "RandomUniform", "Multinomial",  # RNG kernels
    "CTCLoss",                                               # loss DP
    "UnsortedSegmentSum",                                    # scatter-add
})

#: structural op types that execute "for free" wherever their consumer is.
_ZERO_COST_TYPES = frozenset({"Const", "Placeholder", "Variable", "NoOp"})


class PlacementError(FrameworkError):
    """Raised for inconsistent placements or unknown devices."""


Placement = Callable[[Operation], str]


def place_all(device_name: str) -> Placement:
    """Every operation on one device."""
    def placement(op: Operation) -> str:
        return device_name
    return placement


def gpu_with_cpu_fallback(
        cpu_only_types: frozenset[str] = DEFAULT_CPU_ONLY_TYPES) -> Placement:
    """TF-v0.8-style placement: GPU except unsupported op types."""
    def placement(op: Operation) -> str:
        return "cpu" if op.type_name in cpu_only_types else "gpu"
    return placement


@dataclass(frozen=True)
class TransferModel:
    """PCIe-style link between devices.

    Defaults approximate the paper's testbed: PCIe 3.0 with ~8 GB/s
    effective bandwidth. ``latency`` bundles the per-transfer setup cost
    *and* the host/device synchronization stall a 2016-era runtime paid
    at every placement boundary (cudaMemcpy sync + executor handoff),
    which is the dominant term for the small tensors the fall-back ops
    ship. The placement benchmarks sweep this parameter.
    """

    bandwidth: float = 8e9
    latency: float = 25e-6

    def transfer_time(self, num_bytes: float) -> float:
        if num_bytes <= 0:
            return 0.0
        return self.latency + num_bytes / self.bandwidth


@dataclass(frozen=True)
class ScheduledOp:
    """One operation's placement in the simulated schedule."""

    op: Operation
    device: str
    start: float
    end: float
    transfer_seconds: float  # input-staging time charged to this op

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ScheduleResult:
    """The outcome of simulating a graph over a set of devices."""

    makespan: float
    scheduled: list[ScheduledOp]
    device_busy: dict[str, float]
    transfer_bytes: float
    transfer_seconds: float
    ops_per_device: dict[str, int] = field(default_factory=dict)

    def utilization(self, device: str) -> float:
        if self.makespan == 0.0:
            return 0.0
        return self.device_busy.get(device, 0.0) / self.makespan


def simulate_schedule(ops: Iterable[Operation], placement: Placement,
                      devices: dict[str, DeviceModel],
                      transfer: TransferModel | None = None) -> ScheduleResult:
    """Event-driven list scheduling of a dataflow DAG.

    ``ops`` must be in topological order (e.g. ``graph.operations`` or
    ``graph.subgraph(fetches)``). Each op runs on its placed device after
    (a) the device finishes its previous op and (b) every input is
    resident, paying a transfer delay for inputs produced elsewhere.
    Transferred tensors are cached at their destination, so a tensor
    crosses the link at most once per direction.
    """
    transfer = transfer or TransferModel()
    device_free = {name: 0.0 for name in devices}
    # tensor name -> (producer finish time, producer device)
    produced: dict[str, tuple[float, str]] = {}
    # (tensor name, device) -> time the copy is resident there
    resident: dict[tuple[str, str], float] = {}
    scheduled: list[ScheduledOp] = []
    busy = {name: 0.0 for name in devices}
    ops_per_device: dict[str, int] = {name: 0 for name in devices}
    total_transfer_bytes = 0.0
    total_transfer_seconds = 0.0

    for op in ops:
        device_name = placement(op)
        if device_name not in devices:
            raise PlacementError(
                f"op {op.name!r} placed on unknown device {device_name!r}; "
                f"have {sorted(devices)}")
        ready = device_free[device_name]
        staging = 0.0
        for tensor in op.inputs:
            if tensor.name not in produced:
                continue  # fed placeholder handled below
            finish, source_device = produced[tensor.name]
            key = (tensor.name, device_name)
            if source_device == device_name:
                available = finish
            elif key in resident:
                available = resident[key]
            else:
                num_bytes = tensor.size * ELEMENT_BYTES
                move = transfer.transfer_time(num_bytes)
                available = finish + move
                resident[key] = available
                total_transfer_bytes += num_bytes
                total_transfer_seconds += move
                staging += move
            ready = max(ready, available)

        if op.type_name in _ZERO_COST_TYPES:
            duration = 0.0
        else:
            duration = devices[device_name].op_time(op.work())
        start = ready
        end = start + duration
        device_free[device_name] = end
        busy[device_name] += duration
        ops_per_device[device_name] += 1
        for tensor in op.outputs:
            produced[tensor.name] = (end, device_name)
        scheduled.append(ScheduledOp(op=op, device=device_name, start=start,
                                     end=end, transfer_seconds=staging))

    makespan = max((s.end for s in scheduled), default=0.0)
    return ScheduleResult(makespan=makespan, scheduled=scheduled,
                          device_busy=busy,
                          transfer_bytes=total_transfer_bytes,
                          transfer_seconds=total_transfer_seconds,
                          ops_per_device=ops_per_device)


def default_devices(threads: int = 1) -> dict[str, DeviceModel]:
    """The paper's testbed as a device dictionary."""
    return {"cpu": CPUDeviceModel(threads=threads), "gpu": GPUDeviceModel()}


def simulate_greedy_schedule(ops: Iterable[Operation],
                             devices: dict[str, DeviceModel],
                             shared_memory: bool = True,
                             transfer: TransferModel | None = None) -> ScheduleResult:
    """Greedy list scheduling: each op goes to the worker finishing it
    soonest.

    This models *inter-op* parallelism — several workers executing
    independent operations of the DAG concurrently — complementing the
    paper's Section V-E study of *intra-op* threading. With
    ``shared_memory=True`` (workers are cores of one host) tensors move
    for free; otherwise every cross-worker edge pays the transfer model.
    """
    transfer = transfer or TransferModel()
    device_free = {name: 0.0 for name in devices}
    produced: dict[str, tuple[float, str]] = {}
    resident: dict[tuple[str, str], float] = {}
    scheduled: list[ScheduledOp] = []
    busy = {name: 0.0 for name in devices}
    ops_per_device = {name: 0 for name in devices}
    total_bytes = 0.0
    total_seconds = 0.0

    for op in ops:
        best: tuple[float, float, str, float] | None = None
        for name, model in devices.items():
            ready = device_free[name]
            staging = 0.0
            for tensor in op.inputs:
                if tensor.name not in produced:
                    continue
                finish, source = produced[tensor.name]
                if shared_memory or source == name:
                    available = finish
                elif (tensor.name, name) in resident:
                    available = resident[(tensor.name, name)]
                else:
                    move = transfer.transfer_time(
                        tensor.size * ELEMENT_BYTES)
                    available = finish + move
                    staging += move
                ready = max(ready, available)
            duration = (0.0 if op.type_name in _ZERO_COST_TYPES
                        else model.op_time(op.work()))
            end = ready + duration
            if best is None or end < best[0]:
                best = (end, ready, name, staging)
        end, start, name, staging = best
        if not shared_memory and staging > 0.0:
            for tensor in op.inputs:
                if tensor.name in produced:
                    finish, source = produced[tensor.name]
                    if source != name and (tensor.name, name) not in resident:
                        move = transfer.transfer_time(
                            tensor.size * ELEMENT_BYTES)
                        resident[(tensor.name, name)] = finish + move
                        total_bytes += tensor.size * ELEMENT_BYTES
                        total_seconds += move
        device_free[name] = end
        busy[name] += end - start
        ops_per_device[name] += 1
        for tensor in op.outputs:
            produced[tensor.name] = (end, name)
        scheduled.append(ScheduledOp(op=op, device=name, start=start,
                                     end=end, transfer_seconds=staging))

    makespan = max((s.end for s in scheduled), default=0.0)
    return ScheduleResult(makespan=makespan, scheduled=scheduled,
                          device_busy=busy, transfer_bytes=total_bytes,
                          transfer_seconds=total_seconds,
                          ops_per_device=ops_per_device)


def schedule_to_chrome_trace(result: ScheduleResult,
                             process_name: str = "simulated") -> str:
    """Render a simulated schedule as Chrome trace-event JSON.

    Devices become thread lanes, so ``chrome://tracing`` shows the
    overlap, idle gaps, and transfer stalls of a placement visually —
    the EEG-over-devices view the paper's related work describes.
    """
    import json

    device_lane = {name: lane for lane, name in
                   enumerate(sorted({s.device for s in result.scheduled}))}
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0,
        "args": {"name": process_name},
    }]
    for device, lane in device_lane.items():
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": lane, "args": {"name": device}})
    for scheduled in result.scheduled:
        if scheduled.duration == 0.0:
            continue
        events.append({
            "name": scheduled.op.type_name,
            "cat": scheduled.op.op_class.value,
            "ph": "X",
            "pid": 0,
            "tid": device_lane[scheduled.device],
            "ts": scheduled.start * 1e6,
            "dur": scheduled.duration * 1e6,
            "args": {"op": scheduled.op.name,
                     "staging_us": scheduled.transfer_seconds * 1e6},
        })
    return json.dumps({"traceEvents": events})


def worker_pool(count: int, threads: int = 1) -> dict[str, DeviceModel]:
    """``count`` identical CPU workers (cores of one host)."""
    if count < 1:
        raise PlacementError("worker pool needs at least one worker")
    return {f"worker{i}": CPUDeviceModel(threads=threads)
            for i in range(count)}
