"""Layer-level builders composed from primitive operations.

These helpers keep the workload definitions readable without hiding the
operation-level structure: a ``dense`` layer is still a ``MatMul`` plus a
``BiasAdd`` plus an activation in the graph, which is what the profiling
stack sees.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from . import initializers
from .graph import Tensor, name_scope
from .ops import math_ops, nn_ops, state_ops

Activation = Callable[[Tensor], Tensor] | None


def dense(x: Tensor, units: int, rng: np.random.Generator,
          activation: Activation = None,
          kernel_init=initializers.glorot_uniform,
          name: str = "dense") -> Tensor:
    """Fully-connected layer: ``activation(x @ W + b)``."""
    with name_scope(name):
        weights = state_ops.variable(
            kernel_init(rng, (x.shape[-1], units)), name="weights")
        bias = state_ops.variable(np.zeros(units, dtype=np.float32),
                                  name="bias")
        out = nn_ops.bias_add(math_ops.matmul(x, weights), bias)
        if activation is not None:
            out = activation(out)
        return out


def conv2d_layer(x: Tensor, filters: int, kernel_size: int,
                 rng: np.random.Generator, strides: int = 1,
                 padding: str = "SAME", activation: Activation = None,
                 kernel_init=initializers.he_normal, use_bias: bool = True,
                 name: str = "conv") -> Tensor:
    """Convolutional layer: ``activation(conv2d(x, W) + b)``."""
    with name_scope(name):
        in_channels = x.shape[-1]
        filt = state_ops.variable(
            kernel_init(rng, (kernel_size, kernel_size, in_channels, filters)),
            name="filter")
        out = nn_ops.conv2d(x, filt, strides=(strides, strides),
                            padding=padding)
        if use_bias:
            bias = state_ops.variable(np.zeros(filters, dtype=np.float32),
                                      name="bias")
            out = nn_ops.bias_add(out, bias)
        if activation is not None:
            out = activation(out)
        return out


def batch_norm(x: Tensor, epsilon: float = 1e-5,
               name: str = "batch_norm") -> Tensor:
    """Batch normalization over all but the trailing (channel) axis.

    Composed from reduction and elementwise primitives (Mean, Sub, Mul,
    Sqrt, ...), the way TensorFlow v0.8 models expressed it — there was
    no fused kernel, so normalization shows up in profiles as reduction
    and elementwise time.
    """
    from .ops import math_ops, reduction_ops
    with name_scope(name):
        channels = x.shape[-1]
        gamma = state_ops.variable(np.ones(channels, dtype=np.float32),
                                   name="gamma")
        beta = state_ops.variable(np.zeros(channels, dtype=np.float32),
                                  name="beta")
        axes = list(range(x.ndim - 1))
        mean = reduction_ops.reduce_mean(x, axis=axes, keepdims=True)
        centered = math_ops.subtract(x, mean)
        variance = reduction_ops.reduce_mean(math_ops.square(centered),
                                             axis=axes, keepdims=True)
        normalized = math_ops.divide(
            centered, math_ops.sqrt(math_ops.add(variance, epsilon)))
        return math_ops.add(math_ops.multiply(normalized, gamma), beta)


def embedding(ids: Tensor, vocab_size: int, embed_dim: int,
              rng: np.random.Generator, name: str = "embedding") -> Tensor:
    """Look up embedding vectors for integer token ids."""
    from .ops import array_ops
    with name_scope(name):
        table = state_ops.variable(
            initializers.uniform(0.1)(rng, (vocab_size, embed_dim)),
            name="table")
        return array_ops.gather(table, ids)
