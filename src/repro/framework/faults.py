"""Deterministic fault injection for chaos-testing the runtime.

Fathom's workloads are long-running training jobs; hardening the stack
(see :mod:`repro.framework.resilience`) requires a way to *provoke* the
failures it must survive, reproducibly. A :class:`FaultPlan` is a
declarative, seedable list of :class:`FaultSpec` entries; a
:class:`FaultInjector` executes the plan by hooking the four injection
points :class:`~repro.framework.session.Session` exposes:

* ``exception`` — raise a transient :class:`InjectedFault` before an op
  runs (models a lost worker / preempted kernel).
* ``nan`` — poison an op's floating-point outputs with NaN/Inf after it
  runs (models silent data corruption).
* ``latency`` — sleep before an op runs (models a straggler op).
* ``feed`` — corrupt a placeholder's fed minibatch (models bad input
  pipelines).

Faults are targeted by op type, op name regex, and/or *injection step*
(the index of the enclosing ``Session.run`` call; aborted runs count).
Everything is deterministic given ``(plan, seed)``: probability draws
come from a private seeded generator advanced in execution order, so two
identical runs of the same plan produce identical
:class:`InjectionEvent` sequences.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field

import numpy as np

from .errors import ExecutionError
from .graph import Operation

#: the supported fault kinds
FAULT_KINDS = ("exception", "nan", "latency", "feed")


class InjectedFault(ExecutionError):
    """A deliberately injected, transient operation failure.

    ``transient=True`` marks it as retryable for the resilient runner.
    ``injection_step`` records which injection step (``Session.run``
    index) fired the fault, so blame trails in recovery logs can be
    cross-referenced against the injector's event list.
    """

    def __init__(self, op_name: str, message: str,
                 injection_step: int | None = None):
        super().__init__(op_name, message, transient=True)
        self.injection_step = injection_step


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: what to inject, where, and how often.

    Args:
        kind: one of :data:`FAULT_KINDS`.
        op_type: only fault ops of this ``type_name`` (e.g. ``"MatMul"``).
        name_pattern: only fault ops whose name matches this regex
            (``re.search`` semantics).
        step: only fault during this injection step (the index of the
            ``Session.run`` call as counted by the injector).
        probability: chance of firing when all targets match; draws come
            from the plan's seeded generator, so they are reproducible.
        max_triggers: stop firing after this many injections
            (``None`` = unlimited).
        latency_seconds: sleep duration for ``latency`` faults.
        payload: ``"nan"`` or ``"inf"`` — the poison value for ``nan``
            and ``feed`` faults.
    """

    kind: str
    op_type: str | None = None
    name_pattern: str | None = None
    step: int | None = None
    probability: float = 1.0
    max_triggers: int | None = 1
    latency_seconds: float = 0.01
    payload: str = "nan"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if self.payload not in ("nan", "inf"):
            raise ValueError(
                f"payload must be 'nan' or 'inf', got {self.payload!r}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}")
        if self.name_pattern is not None:
            re.compile(self.name_pattern)  # fail fast on bad regexes

    @property
    def poison_value(self) -> float:
        return float("nan") if self.payload == "nan" else float("inf")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seedable schedule of faults to inject.

    The plan itself holds no runtime state; build a fresh
    :class:`FaultInjector` per run. Two injectors over the same plan and
    the same execution produce identical event sequences.
    """

    specs: tuple[FaultSpec, ...]
    seed: int = 0

    def __init__(self, specs, seed: int = 0):
        object.__setattr__(self, "specs", tuple(specs))
        object.__setattr__(self, "seed", int(seed))

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)


@dataclass(frozen=True)
class InjectionEvent:
    """One fault actually injected during execution."""

    step: int
    op_name: str
    kind: str
    spec_index: int


@dataclass
class FaultInjector:
    """Executes a :class:`FaultPlan` against a live session.

    Install with ``session.fault_injector = FaultInjector(plan)`` (or
    ``plan.injector()``). The injector counts ``Session.run`` calls as
    *injection steps* — including runs aborted by an injected exception,
    so a retried training step is a fresh injection step and a
    ``max_triggers=1`` exception fault is genuinely transient.
    """

    plan: FaultPlan
    step: int = 0
    events: list[InjectionEvent] = field(default_factory=list)

    def __post_init__(self):
        self._rng = np.random.default_rng(self.plan.seed)
        self._triggers = [0] * len(self.plan.specs)
        self._patterns = [re.compile(spec.name_pattern)
                          if spec.name_pattern is not None else None
                          for spec in self.plan.specs]

    # -- targeting ---------------------------------------------------------

    def _matches(self, index: int, spec: FaultSpec, op: Operation) -> bool:
        if (spec.max_triggers is not None
                and self._triggers[index] >= spec.max_triggers):
            return False
        if spec.step is not None and spec.step != self.step:
            return False
        if spec.op_type is not None and op.type_name != spec.op_type:
            return False
        pattern = self._patterns[index]
        if pattern is not None and pattern.search(op.name) is None:
            return False
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return False
        return True

    def _fire(self, index: int, spec: FaultSpec, op: Operation) -> None:
        self._triggers[index] += 1
        self.events.append(InjectionEvent(
            step=self.step, op_name=op.name, kind=spec.kind,
            spec_index=index))

    # -- Session hook points -----------------------------------------------

    def on_feed(self, op: Operation, value: np.ndarray) -> np.ndarray:
        """Possibly corrupt a fed placeholder value (copy-on-poison)."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != "feed" or not self._matches(index, spec, op):
                continue
            if not np.issubdtype(value.dtype, np.floating):
                continue
            self._fire(index, spec, op)
            value = value.copy()
            value.reshape(-1)[0] = spec.poison_value
        return value

    def before_op(self, op: Operation) -> None:
        """Inject latency spikes and transient exceptions."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind == "latency" and self._matches(index, spec, op):
                self._fire(index, spec, op)
                time.sleep(spec.latency_seconds)
            elif spec.kind == "exception" and self._matches(index, spec, op):
                self._fire(index, spec, op)
                raise InjectedFault(
                    op.name,
                    f"injected transient fault (spec {index}, "
                    f"step {self.step})", injection_step=self.step)

    def after_op(self, op: Operation, outputs):
        """Possibly poison an op's floating-point outputs."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != "nan" or not self._matches(index, spec, op):
                continue
            poisoned = []
            hit = False
            for value in outputs:
                value = np.asarray(value)
                if np.issubdtype(value.dtype, np.floating) and value.size:
                    value = value.copy()
                    value.reshape(-1)[0] = spec.poison_value
                    hit = True
                poisoned.append(value)
            if hit:
                self._fire(index, spec, op)
                outputs = tuple(poisoned)
        return outputs

    def end_step(self) -> None:
        self.step += 1

    # -- reporting ---------------------------------------------------------

    @property
    def num_injected(self) -> int:
        return len(self.events)

    def signature(self) -> tuple:
        """Hashable summary of everything injected, for determinism checks."""
        return tuple((e.step, e.op_name, e.kind, e.spec_index)
                     for e in self.events)
