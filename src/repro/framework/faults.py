"""Deterministic fault injection for chaos-testing the runtime.

Fathom's workloads are long-running training jobs; hardening the stack
(see :mod:`repro.framework.resilience`) requires a way to *provoke* the
failures it must survive, reproducibly. Five fault families share one
declarative core (:class:`BaseFaultSpec` / :class:`BaseFaultPlan` /
:class:`BaseFaultInjector`):

* **op faults** (:class:`FaultSpec`) — exceptions, NaN poison, latency
  spikes, and corrupted feeds against individual operations inside a
  ``Session.run``;
* **cluster faults** (:class:`ClusterFaultSpec`) — worker crashes,
  stragglers, partitions, lost/corrupt gradient messages, and
  byzantine source-corrupted gradients against the data-parallel
  runtime (:mod:`repro.distributed`);
* **serving faults** (:class:`ServingFaultSpec`) — replica crashes,
  stalls, and poisoned batches against one inference server
  (:mod:`repro.serving.server`);
* **fleet faults** (:class:`FleetFaultSpec`) — zone outages, correlated
  crashes, balancer blackholes, and defective rollouts against a
  multi-zone fleet (:mod:`repro.serving.fleet`);
* **storage faults** (:class:`StorageFaultSpec`) — torn writes, silent
  bit rot, stale reads, full disks, slow I/O, and store outages against
  the blob-storage layer checkpoints live on (:mod:`repro.storage`).

Everything is deterministic given ``(plan, seed)``: probability draws
come from a private seeded generator advanced in execution order, so
two identical runs of the same plan produce identical
:class:`InjectionEvent` sequences. Plans serialize to JSON and back via
:func:`plan_to_json` / :func:`plan_from_json` — the substrate for the
chaos campaign engine's replay files (:mod:`repro.chaos`): a found
failure is a kept failure.
"""

from __future__ import annotations

import dataclasses
import re
import time
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from .errors import (ExecutionError, ReplicaCrashError, StorageFullError,
                     StoreUnavailableError)
from .graph import Operation

#: the supported fault kinds
FAULT_KINDS = ("exception", "nan", "latency", "feed")

#: fault kinds injected at the *serving* layer (see ServingFaultPlan)
SERVING_FAULT_KINDS = ("replica_crash", "slow_replica", "poisoned_batch")

#: fault kinds injected at the *fleet* layer (see FleetFaultPlan)
FLEET_FAULT_KINDS = ("zone_outage", "correlated_crash", "bad_rollout",
                     "lb_blackhole")

#: byzantine cluster fault kinds: plausible-valued gradient corruption
#: at the *source* worker (finite values, right shapes) — invisible to
#: the wire-level NaN/Inf screen, detectable only by attestation
#: (see repro.distributed.byzantine)
BYZANTINE_FAULT_KINDS = ("byzantine_scale", "byzantine_signflip",
                         "byzantine_stale", "byzantine_drift")

#: fault kinds injected at the *cluster* layer (see ClusterFaultPlan)
CLUSTER_FAULT_KINDS = ("worker_crash", "straggler", "partition",
                       "lost_gradient", "corrupt_gradient") \
    + BYZANTINE_FAULT_KINDS

#: fault kinds injected at the *storage* layer (see StorageFaultPlan)
STORAGE_FAULT_KINDS = ("torn_write", "bit_rot", "stale_read",
                       "disk_full", "slow_io", "store_down")


class InjectedFault(ExecutionError):
    """A deliberately injected, transient operation failure.

    ``transient=True`` marks it as retryable for the resilient runner.
    ``injection_step`` records which injection step (``Session.run``
    index) fired the fault, so blame trails in recovery logs can be
    cross-referenced against the injector's event list.
    """

    def __init__(self, op_name: str, message: str,
                 injection_step: int | None = None):
        super().__init__(op_name, message, transient=True)
        self.injection_step = injection_step


# -- the shared declarative core --------------------------------------------


@dataclass(frozen=True)
class BaseFaultSpec:
    """The targeting/trigger core every fault family shares.

    Args (common to all families):
        kind: one of the family's ``KINDS``.
        probability: chance of firing when all targets match; draws come
            from the plan's seeded generator, so they are reproducible.
        max_triggers: stop firing after this many injections
            (``None`` = unlimited).

    Subclasses add family-specific targeting fields and validate them in
    :meth:`_validate`; families with a ``payload`` field get its
    nan/inf validation and :attr:`poison_value` for free.
    """

    kind: str
    probability: float = 1.0
    max_triggers: int | None = 1

    #: the family's legal fault kinds (subclass responsibility)
    KINDS: ClassVar[tuple[str, ...]] = ()
    #: short family name used by plan serialization and the campaign
    #: engine ("op" / "cluster" / "serving" / "fleet")
    FAMILY: ClassVar[str] = ""

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise ValueError(
                f"unknown {self.FAMILY} fault kind {self.kind!r}; "
                f"expected one of {self.KINDS}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}")
        payload = getattr(self, "payload", None)
        if payload is not None and payload not in ("nan", "inf"):
            raise ValueError(
                f"payload must be 'nan' or 'inf', got {payload!r}")
        self._validate()

    def _validate(self) -> None:
        """Family-specific field validation (subclass hook)."""

    @property
    def poison_value(self) -> float:
        """The poison written by nan/inf payload faults."""
        return float("nan") if self.payload == "nan" else float("inf")

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        """A JSON-safe dict capturing every field (tuples become lists)."""
        blob = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = list(value)
            blob[field.name] = value
        return blob

    @classmethod
    def from_json(cls, blob: dict) -> "BaseFaultSpec":
        """Rebuild a spec from :meth:`to_json` output.

        ``__post_init__`` re-normalizes list-valued fields (``link``,
        ``servers``) back to tuples, so the round-trip is identity.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(blob) - known
        if unknown:
            raise ValueError(
                f"unknown {cls.__name__} fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}")
        return cls(**blob)


@dataclass(frozen=True)
class BaseFaultPlan:
    """An immutable, seedable schedule of faults to inject.

    The plan itself holds no runtime state; build a fresh injector per
    run via :meth:`injector`. Two injectors over the same plan and the
    same execution produce identical event sequences.
    """

    specs: tuple
    seed: int = 0

    SPEC_CLASS: ClassVar[type] = BaseFaultSpec
    INJECTOR_CLASS: ClassVar[type] = object

    def __init__(self, specs, seed: int = 0):
        specs = tuple(specs)
        for spec in specs:
            if not isinstance(spec, self.SPEC_CLASS):
                raise TypeError(
                    f"{type(self).__name__} takes "
                    f"{self.SPEC_CLASS.__name__} entries, got "
                    f"{type(spec).__name__}")
        object.__setattr__(self, "specs", specs)
        object.__setattr__(self, "seed", int(seed))

    @property
    def family(self) -> str:
        return self.SPEC_CLASS.FAMILY

    def injector(self, **kw):
        return self.INJECTOR_CLASS(self, **kw)

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        """A JSON-safe dict: family tag, seed, and every spec."""
        return {"family": self.family, "seed": self.seed,
                "specs": [spec.to_json() for spec in self.specs]}

    @classmethod
    def from_json(cls, blob: dict) -> "BaseFaultPlan":
        family = blob.get("family", cls.SPEC_CLASS.FAMILY)
        if family != cls.SPEC_CLASS.FAMILY:
            raise ValueError(
                f"{cls.__name__} loads {cls.SPEC_CLASS.FAMILY!r} plans, "
                f"got family {family!r}")
        return cls([cls.SPEC_CLASS.from_json(spec)
                    for spec in blob.get("specs", [])],
                   seed=blob.get("seed", 0))


@dataclass(frozen=True)
class InjectionEvent:
    """One fault actually injected during execution."""

    step: int
    op_name: str
    kind: str
    spec_index: int


class BaseFaultInjector:
    """Trigger bookkeeping every family's injector shares.

    Owns the plan, the fired-event log, the per-spec trigger counters,
    and the seeded probability stream. Subclasses implement the hook
    points their runtime consults, composing :meth:`_spent_trigger` /
    :meth:`_draw` (always last, so the RNG advances only for fully
    matched targets) and :meth:`_record`.
    """

    def __init__(self, plan: BaseFaultPlan):
        self.plan = plan
        self.events: list[InjectionEvent] = []
        self._rng = np.random.default_rng(plan.seed)
        self._triggers = [0] * len(plan.specs)

    # -- shared trigger logic ----------------------------------------------

    def _spent_trigger(self, index: int, spec: BaseFaultSpec) -> bool:
        """True once a spec has fired ``max_triggers`` times."""
        return (spec.max_triggers is not None
                and self._triggers[index] >= spec.max_triggers)

    def _draw(self, spec: BaseFaultSpec) -> bool:
        """Seeded probability draw; advances the stream only when
        ``probability < 1`` (so certain faults cost no randomness)."""
        if spec.probability < 1.0:
            return bool(self._rng.random() < spec.probability)
        return True

    def _record(self, index: int, kind: str, step: int,
                target: str) -> None:
        self._triggers[index] += 1
        self.events.append(InjectionEvent(
            step=step, op_name=target, kind=kind, spec_index=index))

    # -- reporting ---------------------------------------------------------

    @property
    def num_injected(self) -> int:
        return len(self.events)

    def signature(self) -> tuple:
        """Hashable summary of everything injected, for determinism checks."""
        return tuple((e.step, e.op_name, e.kind, e.spec_index)
                     for e in self.events)


# -- op-path faults ----------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec(BaseFaultSpec):
    """One declarative fault against individual operations.

    Kinds (see :data:`FAULT_KINDS`):

    * ``exception`` — raise a transient :class:`InjectedFault` before an
      op runs (models a lost worker / preempted kernel).
    * ``nan`` — poison an op's floating-point outputs with NaN/Inf after
      it runs (models silent data corruption).
    * ``latency`` — sleep before an op runs (models a straggler op).
    * ``feed`` — corrupt a placeholder's fed minibatch (models bad input
      pipelines).

    Args (beyond the :class:`BaseFaultSpec` trio):
        op_type: only fault ops of this ``type_name`` (e.g. ``"MatMul"``).
        name_pattern: only fault ops whose name matches this regex
            (``re.search`` semantics).
        step: only fault during this injection step (the index of the
            ``Session.run`` call as counted by the injector).
        latency_seconds: sleep duration for ``latency`` faults.
        payload: ``"nan"`` or ``"inf"`` — the poison value for ``nan``
            and ``feed`` faults.
    """

    op_type: str | None = None
    name_pattern: str | None = None
    step: int | None = None
    latency_seconds: float = 0.01
    payload: str = "nan"

    KINDS: ClassVar[tuple[str, ...]] = FAULT_KINDS
    FAMILY: ClassVar[str] = "op"

    def _validate(self):
        if self.name_pattern is not None:
            re.compile(self.name_pattern)  # fail fast on bad regexes


class FaultPlan(BaseFaultPlan):
    """An immutable, seedable schedule of op faults.

    Install on a session with ``session.fault_injector =
    plan.injector()``.
    """

    SPEC_CLASS: ClassVar[type] = FaultSpec


class FaultInjector(BaseFaultInjector):
    """Executes a :class:`FaultPlan` against a live session.

    Install with ``session.fault_injector = FaultInjector(plan)`` (or
    ``plan.injector()``). The injector counts ``Session.run`` calls as
    *injection steps* — including runs aborted by an injected exception,
    so a retried training step is a fresh injection step and a
    ``max_triggers=1`` exception fault is genuinely transient.
    """

    def __init__(self, plan: FaultPlan):
        super().__init__(plan)
        self.step = 0
        self._patterns = [re.compile(spec.name_pattern)
                          if spec.name_pattern is not None else None
                          for spec in self.plan.specs]

    # -- targeting ---------------------------------------------------------

    def _matches(self, index: int, spec: FaultSpec, op: Operation) -> bool:
        if self._spent_trigger(index, spec):
            return False
        if spec.step is not None and spec.step != self.step:
            return False
        if spec.op_type is not None and op.type_name != spec.op_type:
            return False
        pattern = self._patterns[index]
        if pattern is not None and pattern.search(op.name) is None:
            return False
        return self._draw(spec)

    def _fire(self, index: int, spec: FaultSpec, op: Operation) -> None:
        self._record(index, spec.kind, self.step, op.name)

    # -- Session hook points -----------------------------------------------

    def on_feed(self, op: Operation, value: np.ndarray) -> np.ndarray:
        """Possibly corrupt a fed placeholder value (copy-on-poison)."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != "feed" or not self._matches(index, spec, op):
                continue
            if not np.issubdtype(value.dtype, np.floating):
                continue
            self._fire(index, spec, op)
            value = value.copy()
            value.reshape(-1)[0] = spec.poison_value
        return value

    def before_op(self, op: Operation) -> None:
        """Inject latency spikes and transient exceptions."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind == "latency" and self._matches(index, spec, op):
                self._fire(index, spec, op)
                time.sleep(spec.latency_seconds)
            elif spec.kind == "exception" and self._matches(index, spec, op):
                self._fire(index, spec, op)
                raise InjectedFault(
                    op.name,
                    f"injected transient fault (spec {index}, "
                    f"step {self.step})", injection_step=self.step)

    def after_op(self, op: Operation, outputs):
        """Possibly poison an op's floating-point outputs."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != "nan" or not self._matches(index, spec, op):
                continue
            poisoned = []
            hit = False
            for value in outputs:
                value = np.asarray(value)
                if np.issubdtype(value.dtype, np.floating) and value.size:
                    value = value.copy()
                    value.reshape(-1)[0] = spec.poison_value
                    hit = True
                poisoned.append(value)
            if hit:
                self._fire(index, spec, op)
                outputs = tuple(poisoned)
        return outputs

    def end_step(self) -> None:
        self.step += 1


FaultPlan.INJECTOR_CLASS = FaultInjector


# -- cluster-path faults ----------------------------------------------------


@dataclass(frozen=True)
class ClusterFaultSpec(BaseFaultSpec):
    """One declarative fault against the data-parallel cluster runtime.

    Where :class:`FaultSpec` targets individual operations and
    :class:`ServingFaultSpec` targets replica batches, a cluster fault
    targets the *machinery of distributed training* — workers, links,
    and the gradient messages crossing them
    (see :mod:`repro.distributed`). Kinds:

    * ``worker_crash`` — a worker dies mid-step, before its gradient is
      exchanged; the cluster restarts it and recovers all workers from
      the last coordinated checkpoint, then replays.
    * ``straggler`` — a worker's compute phase is delayed by
      ``delay_seconds`` of cluster-clock time (models a slow machine;
      provokes drop-slowest backup-worker semantics and straggler
      events).
    * ``partition`` — a worker↔worker link drops every message for
      ``duration_steps`` global steps (models a network partition;
      provokes timeout + retransmit and, when retries exhaust,
      degradation from ring all-reduce to the parameter-server path).
    * ``lost_gradient`` — one gradient message vanishes in flight
      (timeout + seeded-jitter retransmit recovers it).
    * ``corrupt_gradient`` — a gradient message arrives NaN/Inf-poisoned
      (``payload``); the receiver's guardrail screen rejects it and
      requests a retransmit.

    The four *byzantine* kinds (:data:`BYZANTINE_FAULT_KINDS`) corrupt
    a worker's gradients at the **source**, before exchange, with
    plausible finite values of the right shapes — so the wire-level
    screen never sees anything wrong and only gradient attestation
    (:mod:`repro.distributed.byzantine`) can catch them:

    * ``byzantine_scale`` — multiply the gradients by ``scale_factor``
      (models a broken loss-scaling / learning-rate unit mixup).
    * ``byzantine_signflip`` — negate the gradients (models a
      sign-inverted reduction — an *adversarial* ascent direction).
    * ``byzantine_stale`` — replay the worker's previous clean
      gradients (models a stuck pipeline re-sending old state; skipped,
      without consuming a probability draw, on a worker's first
      contribution when there is nothing to replay).
    * ``byzantine_drift`` — multiply by ``1 + drift_rate * k`` on the
      spec's ``k``-th firing — a slow multiplicative drift that starts
      plausible and worsens (models progressive hardware fault).

    Args (beyond the :class:`BaseFaultSpec` trio):
        worker: only fault this worker id (``None`` = any worker).
        link: only fault this directed ``(src, dst)`` worker link
            (``partition``/``lost_gradient``/``corrupt_gradient``;
            ``None`` = any link, with ``worker`` matching the sender).
        step: only fault during this global training step
            (``None`` = any step).
        duration_steps: how many global steps a ``partition`` stays up.
        delay_seconds: compute delay for ``straggler`` faults
            (cluster-clock seconds, not wall time).
        payload: ``"nan"`` or ``"inf"`` — the poison for
            ``corrupt_gradient`` faults.
        scale_factor: gradient multiplier for ``byzantine_scale``.
        drift_rate: per-firing drift increment for ``byzantine_drift``.
    """

    worker: int | None = None
    link: tuple[int, int] | None = None
    step: int | None = None
    duration_steps: int = 1
    delay_seconds: float = 0.5
    payload: str = "nan"
    scale_factor: float = 64.0
    drift_rate: float = 1.0

    KINDS: ClassVar[tuple[str, ...]] = CLUSTER_FAULT_KINDS
    FAMILY: ClassVar[str] = "cluster"

    def _validate(self):
        if self.duration_steps < 1:
            raise ValueError(
                f"duration_steps must be >= 1, got {self.duration_steps}")
        if not np.isfinite(self.scale_factor) or self.scale_factor <= 0.0:
            raise ValueError(
                f"scale_factor must be finite and > 0, "
                f"got {self.scale_factor}")
        if not np.isfinite(self.drift_rate) or self.drift_rate <= 0.0:
            raise ValueError(
                f"drift_rate must be finite and > 0, got {self.drift_rate}")
        if self.link is not None:
            object.__setattr__(self, "link",
                               (int(self.link[0]), int(self.link[1])))


class ClusterFaultPlan(BaseFaultPlan):
    """An immutable, seedable schedule of cluster faults.

    Hand it to :class:`repro.distributed.runtime.ClusterRuntime`; the
    runtime builds the injector so injected delays advance the cluster
    clock deterministically.
    """

    SPEC_CLASS: ClassVar[type] = ClusterFaultSpec


class ClusterFaultInjector(BaseFaultInjector):
    """Executes a :class:`ClusterFaultPlan` against a cluster run.

    The runtime consults four hook points: :meth:`should_crash` and
    :meth:`compute_delay` during each worker's compute phase,
    :meth:`corrupt_gradients` on each worker's freshly computed
    gradients (the byzantine kinds), and :meth:`on_message` for every
    gradient/parameter message crossing a link. Like the other
    injectors, everything is deterministic given ``(plan, seed)``;
    fired faults are recorded as :class:`InjectionEvent` entries with
    ``op_name`` set to ``"worker:<id>"`` or ``"link:<src>-><dst>"``.
    """

    def __init__(self, plan: ClusterFaultPlan):
        super().__init__(plan)
        #: active partitions: (src, dst) -> step the partition heals at
        self._partitions: dict[tuple[int, int], int] = {}
        #: per-worker previous clean gradients, for ``byzantine_stale``
        self._stale_cache: dict[int, list[np.ndarray]] = {}
        #: per-spec firing counts, for ``byzantine_drift`` escalation
        self._drift_fires: list[int] = [0] * len(plan.specs)

    def _matches(self, index: int, spec: ClusterFaultSpec, step: int,
                 worker: int | None = None,
                 link: tuple[int, int] | None = None) -> bool:
        if self._spent_trigger(index, spec):
            return False
        if spec.step is not None and spec.step != step:
            return False
        if spec.worker is not None:
            sender = link[0] if link is not None else worker
            if spec.worker != sender:
                return False
        if spec.link is not None and spec.link != link:
            return False
        return self._draw(spec)

    def _fire(self, index: int, spec: ClusterFaultSpec, step: int,
              target: str) -> None:
        self._record(index, spec.kind, step, target)

    # -- runtime hook points -------------------------------------------------

    def should_crash(self, worker: int, step: int) -> bool:
        """True if ``worker`` crashes during this step's compute phase."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind == "worker_crash" \
                    and self._matches(index, spec, step, worker=worker):
                self._fire(index, spec, step, f"worker:{worker}")
                return True
        return False

    def compute_delay(self, worker: int, step: int) -> float:
        """Extra cluster-clock seconds added to a worker's compute."""
        delay = 0.0
        for index, spec in enumerate(self.plan.specs):
            if spec.kind == "straggler" \
                    and self._matches(index, spec, step, worker=worker):
                self._fire(index, spec, step, f"worker:{worker}")
                delay += spec.delay_seconds
        return delay

    def corrupt_gradients(self, worker: int, step: int,
                          grads: list[np.ndarray]
                          ) -> list[np.ndarray] | None:
        """Byzantine source-corruption of a worker's computed gradients.

        Returns the corrupted gradient list, or ``None`` when no
        byzantine spec fired for this ``(worker, step)``. The input is
        never mutated; multiple matching specs compose in plan order.
        Every corruption is finite and shape-preserving — the point is
        to slip past the wire-level NaN/Inf screen and exercise
        gradient attestation instead. ``byzantine_stale`` replays the
        worker's previous *clean* gradients (cached below whenever the
        plan contains a stale spec) and is skipped without consuming a
        probability draw when the cache is empty.
        """
        out: list[np.ndarray] | None = None
        for index, spec in enumerate(self.plan.specs):
            if spec.kind not in BYZANTINE_FAULT_KINDS:
                continue
            if spec.kind == "byzantine_stale" \
                    and worker not in self._stale_cache:
                continue
            if not self._matches(index, spec, step, worker=worker):
                continue
            self._fire(index, spec, step, f"worker:{worker}")
            current = grads if out is None else out
            if spec.kind == "byzantine_scale":
                out = [np.asarray(g) * np.float32(spec.scale_factor)
                       for g in current]
            elif spec.kind == "byzantine_signflip":
                out = [-np.asarray(g) for g in current]
            elif spec.kind == "byzantine_stale":
                out = [g.copy() for g in self._stale_cache[worker]]
            else:  # byzantine_drift
                self._drift_fires[index] += 1
                factor = np.float32(
                    1.0 + spec.drift_rate * self._drift_fires[index])
                out = [np.asarray(g) * factor for g in current]
        if any(spec.kind == "byzantine_stale"
               for spec in self.plan.specs):
            self._stale_cache[worker] = [np.asarray(g).copy()
                                         for g in grads]
        return out

    def on_message(self, src: int, dst: int, step: int,
                   value: np.ndarray | None = None):
        """Outcome of one message crossing the ``src -> dst`` link.

        Returns ``("ok", value)``, ``("lost", None)`` for a dropped
        message (partition or lost_gradient), or ``("corrupt",
        poisoned)`` for an in-flight payload corruption. Partitions are
        sticky: once fired, the link stays dead until ``duration_steps``
        global steps have passed, so retransmits inside the window fail
        deterministically.
        """
        link = (src, dst)
        heals_at = self._partitions.get(link)
        if heals_at is not None:
            if step < heals_at:
                return "lost", None
            del self._partitions[link]
        for index, spec in enumerate(self.plan.specs):
            if spec.kind == "partition" \
                    and self._matches(index, spec, step, link=link):
                self._fire(index, spec, step, f"link:{src}->{dst}")
                self._partitions[link] = step + spec.duration_steps
                return "lost", None
            if spec.kind == "lost_gradient" \
                    and self._matches(index, spec, step, link=link):
                self._fire(index, spec, step, f"link:{src}->{dst}")
                return "lost", None
            if spec.kind == "corrupt_gradient" \
                    and self._matches(index, spec, step, link=link) \
                    and value is not None:
                self._fire(index, spec, step, f"link:{src}->{dst}")
                poisoned = np.asarray(value).copy()
                if np.issubdtype(poisoned.dtype, np.floating) \
                        and poisoned.size:
                    poisoned.reshape(-1)[0] = spec.poison_value
                return "corrupt", poisoned
        return "ok", value

    def link_partitioned(self, src: int, dst: int, step: int) -> bool:
        """True if an already-fired partition still covers this link."""
        heals_at = self._partitions.get((src, dst))
        return heals_at is not None and step < heals_at


ClusterFaultPlan.INJECTOR_CLASS = ClusterFaultInjector


# -- fleet-path faults ------------------------------------------------------


@dataclass(frozen=True)
class FleetFaultSpec(BaseFaultSpec):
    """One declarative fault against the serving *fleet*.

    Where :class:`ServingFaultSpec` targets one replica's batch, a fleet
    fault targets the machinery that keeps a multi-zone fleet alive —
    whole fault domains, correlated server groups, the load balancer's
    links, and the deploy pipeline (see :mod:`repro.serving.fleet`).
    Kinds:

    * ``zone_outage`` — every server in ``zone`` goes down at once for
      ``duration_seconds`` of fleet-clock time (models a power/network
      domain failure); their queued requests are salvaged and re-routed
      to surviving zones, and the zone rejoins when the outage heals.
    * ``correlated_crash`` — ``servers`` (or the ``count`` lowest-id
      active servers) crash simultaneously across zones (models a bad
      kernel/hardware batch — failures that are *not* independent).
    * ``bad_rollout`` — arms the next deployment with a ``defect``
      (``"poison"``: NaN outputs, ``"slow"``: stalled batches); the
      canary comparator must catch it and roll back.
    * ``lb_blackhole`` — the balancer's link to one server silently
      drops everything sent on it for ``duration_seconds`` (models a
      misprogrammed switch); requests captured in the hole are freed
      when health probes eject the server or the link heals.

    Fleet faults are *time-triggered*: a spec fires at the first fleet
    tick at or after ``at_seconds`` on the fleet clock. A failed
    ``probability`` draw spends the trigger (the spec does not re-arm
    every tick), keeping draws deterministic in tick order.

    Args (beyond the :class:`BaseFaultSpec` trio):
        zone: the fault domain a ``zone_outage`` takes out (``None`` =
            the fleet's first zone).
        servers: explicit server ids for ``correlated_crash`` /
            ``lb_blackhole`` (``None`` = resolved by the fleet: the
            ``count`` lowest-id active servers, or the busiest link).
        count: how many servers a ``correlated_crash`` takes when
            ``servers`` is ``None``.
        at_seconds: fleet-clock time the fault fires at.
        duration_seconds: how long an outage / blackhole lasts.
        defect: ``"poison"`` or ``"slow"`` — what a ``bad_rollout``
            deployment does to batches on servers running it.
    """

    zone: str | None = None
    servers: tuple[int, ...] | None = None
    count: int = 2
    at_seconds: float = 0.0
    duration_seconds: float = 0.05
    defect: str = "poison"

    KINDS: ClassVar[tuple[str, ...]] = FLEET_FAULT_KINDS
    FAMILY: ClassVar[str] = "fleet"

    def _validate(self):
        if self.defect not in ("poison", "slow"):
            raise ValueError(
                f"defect must be 'poison' or 'slow', got {self.defect!r}")
        if self.duration_seconds <= 0.0:
            raise ValueError(
                f"duration_seconds must be > 0, got "
                f"{self.duration_seconds}")
        if self.servers is not None:
            object.__setattr__(self, "servers",
                               tuple(int(s) for s in self.servers))


class FleetFaultPlan(BaseFaultPlan):
    """An immutable, seedable schedule of fleet faults.

    Install on a fleet with ``fleet.install_faults(plan)`` — the fleet
    ticks the injector on its own clock every pump round, so outage
    starts and heals are deterministic functions of virtual time.
    """

    SPEC_CLASS: ClassVar[type] = FleetFaultSpec


class FleetFaultInjector(BaseFaultInjector):
    """Executes a :class:`FleetFaultPlan` against a live fleet.

    The fleet calls :meth:`tick` once per pump round with the current
    fleet-clock time; the injector returns the *actions* that fire this
    round (outage starts/heals, crash groups, blackhole arms/heals,
    rollout defects) and the fleet applies them. Between ticks the
    fleet consults :meth:`zone_down` and :meth:`blackholed` for the
    standing state. Everything is deterministic given ``(plan, seed)``;
    fired faults are recorded as :class:`InjectionEvent` entries with
    ``op_name`` set to ``"zone:<z>"``, ``"servers:<ids>"``,
    ``"lb:<id>"``, or ``"rollout"`` and ``step`` set to the tick round.
    """

    def __init__(self, plan: FleetFaultPlan):
        super().__init__(plan)
        self.round = 0
        self._spent = [False] * len(plan.specs)
        #: active outages: zone -> heal_at (fleet-clock seconds)
        self._outages: dict[str, float] = {}
        #: active blackholes: server id -> heal_at
        self._blackholes: dict[int, float] = {}
        #: armed bad-rollout defect, consumed by the rollout manager
        self._pending_defect: str | None = None

    def _due(self, index: int, spec: FleetFaultSpec, now: float) -> bool:
        if self._spent[index] or self._spent_trigger(index, spec):
            return False
        if now < spec.at_seconds:
            return False
        if not self._draw(spec):
            # A failed draw spends the trigger — time-based faults must
            # not re-draw every tick or determinism would depend on the
            # pump cadence.
            self._spent[index] = True
            return False
        return True

    def _fire(self, index: int, spec: FleetFaultSpec,
              target: str) -> None:
        self._record(index, spec.kind, self.round, target)
        if self._spent_trigger(index, spec):
            self._spent[index] = True

    # -- fleet hook points ---------------------------------------------------

    def tick(self, now: float) -> list[tuple]:
        """Advance one pump round; returns the actions firing now.

        Actions (applied by the fleet, in order):

        * ``("zone_heal", zone)`` — an outage's duration elapsed;
        * ``("blackhole_heal", server)`` — a blackhole healed;
        * ``("zone_outage", zone, heal_at)`` — a zone goes down now
          (``zone`` may be ``None``: the fleet resolves its first zone);
        * ``("correlated_crash", servers, count)`` — this server group
          (or, when ``servers`` is None, the ``count`` lowest-id active
          servers) crashes now;
        * ``("lb_blackhole", server, heal_at)`` — the link to this
          server (None = the fleet's current routing favourite) goes
          silent until ``heal_at``;
        * ``("bad_rollout", defect)`` — the next deployment started is
          defective.
        """
        actions: list[tuple] = []
        for zone, heal_at in sorted(self._outages.items()):
            if now >= heal_at:
                del self._outages[zone]
                actions.append(("zone_heal", zone))
        for server, heal_at in sorted(self._blackholes.items()):
            if now >= heal_at:
                del self._blackholes[server]
                actions.append(("blackhole_heal", server))
        for index, spec in enumerate(self.plan.specs):
            if not self._due(index, spec, now):
                continue
            if spec.kind == "zone_outage":
                heal_at = now + spec.duration_seconds
                if spec.zone is not None:
                    self._outages[spec.zone] = heal_at
                self._fire(index, spec, f"zone:{spec.zone or '?'}")
                actions.append(("zone_outage", spec.zone, heal_at))
            elif spec.kind == "correlated_crash":
                ids = ",".join(str(s) for s in spec.servers or ())
                self._fire(index, spec, f"servers:{ids or spec.count}")
                actions.append(("correlated_crash", spec.servers,
                                spec.count))
            elif spec.kind == "lb_blackhole":
                server = spec.servers[0] if spec.servers else None
                heal_at = now + spec.duration_seconds
                if server is not None:
                    self._blackholes[server] = heal_at
                self._fire(index, spec,
                           f"lb:{server if server is not None else '?'}")
                actions.append(("lb_blackhole", server, heal_at))
            elif spec.kind == "bad_rollout":
                self._pending_defect = spec.defect
                self._fire(index, spec, "rollout")
                actions.append(("bad_rollout", spec.defect))
        self.round += 1
        return actions

    def note_zone_outage(self, zone: str, heal_at: float) -> None:
        """Register a fleet-resolved outage target (spec.zone was None)."""
        self._outages[zone] = heal_at

    def note_blackhole(self, server: int, heal_at: float) -> None:
        """Register a fleet-resolved blackhole target."""
        self._blackholes[server] = heal_at

    def zone_down(self, zone: str, now: float) -> bool:
        """True while an outage covers ``zone``."""
        heal_at = self._outages.get(zone)
        return heal_at is not None and now < heal_at

    def blackholed(self, server: int, now: float) -> bool:
        """True while the balancer's link to ``server`` drops traffic."""
        heal_at = self._blackholes.get(server)
        return heal_at is not None and now < heal_at

    def take_rollout_defect(self) -> str | None:
        """Consume the armed bad-rollout defect, if any."""
        defect, self._pending_defect = self._pending_defect, None
        return defect

    def next_wakeup(self, now: float) -> float | None:
        """The next fleet-clock time something scheduled happens.

        The earliest pending heal or unfired ``at_seconds`` strictly
        after ``now`` — the fleet's drain loop sleeps toward this when
        no server has dispatchable work (e.g. everything is down or
        captured in a blackhole).
        """
        times = list(self._outages.values()) \
            + list(self._blackholes.values())
        times += [spec.at_seconds
                  for index, spec in enumerate(self.plan.specs)
                  if not self._spent[index]
                  and not self._spent_trigger(index, spec)
                  and spec.at_seconds > now]
        future = [t for t in times if t > now]
        return min(future) if future else None


FleetFaultPlan.INJECTOR_CLASS = FleetFaultInjector


# -- serving-path faults ----------------------------------------------------


@dataclass(frozen=True)
class ServingFaultSpec(BaseFaultSpec):
    """One declarative fault against the inference-serving path.

    Where :class:`FaultSpec` targets individual operations inside a
    ``Session.run``, a serving fault targets a whole *replica batch* —
    the unit of work :class:`repro.serving.server.InferenceServer`
    dispatches. Kinds:

    * ``replica_crash`` — the replica dies before executing the batch
      (raises :class:`~repro.framework.errors.ReplicaCrashError`; the
      server fails the batch over and restarts the replica).
    * ``slow_replica`` — the replica stalls ``latency_seconds`` before
      executing (models a straggler machine; provokes deadline misses
      and hedged retries).
    * ``poisoned_batch`` — the batch executes but its output comes back
      NaN/Inf-poisoned (models silent data corruption in flight).

    Args (beyond the :class:`BaseFaultSpec` trio):
        replica: only fault this replica id (``None`` = any replica).
        batch: only fault this dispatch index (the server's batch
            counter; ``None`` = any batch).
        latency_seconds: stall duration for ``slow_replica`` faults.
        payload: ``"nan"`` or ``"inf"`` — the poison for
            ``poisoned_batch`` faults.
    """

    replica: int | None = None
    batch: int | None = None
    latency_seconds: float = 0.05
    payload: str = "nan"

    KINDS: ClassVar[tuple[str, ...]] = SERVING_FAULT_KINDS
    FAMILY: ClassVar[str] = "serving"


class ServingFaultPlan(BaseFaultPlan):
    """An immutable, seedable schedule of serving-path faults.

    Install on a server with ``server.install_faults(plan)`` — the
    server builds the injector bound to its own clock, so injected
    stalls advance virtual time deterministically in tests.
    """

    SPEC_CLASS: ClassVar[type] = ServingFaultSpec

    def injector(self, sleep=time.sleep) -> "ServingFaultInjector":
        return ServingFaultInjector(self, sleep=sleep)


class ServingFaultInjector(BaseFaultInjector):
    """Executes a :class:`ServingFaultPlan` against a live server.

    The server consults :meth:`before_batch` right before handing a
    batch to a replica and :meth:`after_batch` on the replica's output.
    Like the op-level injector, everything is deterministic given
    ``(plan, seed)``; fired faults are recorded as
    :class:`InjectionEvent` entries with ``op_name`` set to
    ``"replica:<id>"``.
    """

    def __init__(self, plan: ServingFaultPlan, sleep=time.sleep):
        super().__init__(plan)
        self._sleep = sleep

    def _matches(self, index: int, spec: ServingFaultSpec,
                 replica_id: int, batch_index: int) -> bool:
        if self._spent_trigger(index, spec):
            return False
        if spec.replica is not None and spec.replica != replica_id:
            return False
        if spec.batch is not None and spec.batch != batch_index:
            return False
        return self._draw(spec)

    def _fire(self, index: int, spec: ServingFaultSpec, replica_id: int,
              batch_index: int) -> None:
        self._record(index, spec.kind, batch_index,
                     f"replica:{replica_id}")

    # -- server hook points --------------------------------------------------

    def before_batch(self, replica_id: int, batch_index: int) -> None:
        """Inject stalls and crashes before a batch executes."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind == "slow_replica" \
                    and self._matches(index, spec, replica_id, batch_index):
                self._fire(index, spec, replica_id, batch_index)
                self._sleep(spec.latency_seconds)
            elif spec.kind == "replica_crash" \
                    and self._matches(index, spec, replica_id, batch_index):
                self._fire(index, spec, replica_id, batch_index)
                raise ReplicaCrashError(
                    f"replica:{replica_id}",
                    f"injected replica crash (spec {index}, "
                    f"batch {batch_index})", injection_step=batch_index)

    def after_batch(self, replica_id: int, batch_index: int, output):
        """Possibly poison a batch's floating-point output."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != "poisoned_batch" \
                    or not self._matches(index, spec, replica_id,
                                         batch_index):
                continue
            value = np.asarray(output)
            if np.issubdtype(value.dtype, np.floating) and value.size:
                self._fire(index, spec, replica_id, batch_index)
                value = value.copy()
                value.reshape(-1)[0] = spec.poison_value
                output = value
        return output


ServingFaultPlan.INJECTOR_CLASS = ServingFaultInjector


# -- storage-path faults -----------------------------------------------------


@dataclass(frozen=True)
class StorageFaultSpec(BaseFaultSpec):
    """One declarative fault against the blob-storage layer.

    Where the other families target computation, a storage fault targets
    *durability* — the blob stores checkpoints live on
    (:mod:`repro.storage`). Kinds (see :data:`STORAGE_FAULT_KINDS`):

    * ``torn_write`` — a put silently persists only a prefix of its
      bytes (models a crash mid-write on a store with no write barrier).
      The store reports success; only a digest check can tell.
    * ``bit_rot`` — flip one byte of a blob *at rest* (models silent
      media decay). The corruption persists until read-repair or
      scrubbing heals it from a surviving replica.
    * ``stale_read`` — a get returns the key's previous version, or
      raises :class:`~repro.framework.errors.BlobNotFoundError` when the
      key was never overwritten (models an eventually-consistent store
      that has not caught up).
    * ``disk_full`` — a put raises
      :class:`~repro.framework.errors.StorageFullError`.
    * ``slow_io`` — the operation sleeps ``latency_seconds`` on the
      store's clock before proceeding.
    * ``store_down`` — the operation raises
      :class:`~repro.framework.errors.StoreUnavailableError`, and the
      store stays dark for the next ``duration_ops`` operations.

    Args (beyond the :class:`BaseFaultSpec` trio):
        store: only fault this store id (``None`` = any store).
        key_pattern: only fault operations on keys matching this regex
            (``re.search``); blobs at rest are eligible for ``bit_rot``
            only when their key matches.
        op_index: only fault at this global storage-operation index (the
            injector counts put/get/delete operations across all
            attached stores).
        fraction: for ``torn_write``, the fraction of bytes that land.
        latency_seconds: sleep duration for ``slow_io``.
        duration_ops: how many operations ``store_down`` keeps the
            store dark after firing.
    """

    store: int | None = None
    key_pattern: str | None = None
    op_index: int | None = None
    fraction: float = 0.5
    latency_seconds: float = 0.01
    duration_ops: int = 4

    KINDS: ClassVar[tuple[str, ...]] = STORAGE_FAULT_KINDS
    FAMILY: ClassVar[str] = "storage"

    def _validate(self):
        if self.key_pattern is not None:
            re.compile(self.key_pattern)  # fail fast on bad regexes
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError(
                f"fraction must be in [0, 1), got {self.fraction}")
        if self.latency_seconds < 0:
            raise ValueError(
                f"latency_seconds must be >= 0, got {self.latency_seconds}")
        if self.duration_ops < 1:
            raise ValueError(
                f"duration_ops must be >= 1, got {self.duration_ops}")


class StorageFaultPlan(BaseFaultPlan):
    """An immutable, seedable schedule of storage faults.

    Install on a :class:`repro.storage.ReplicatedCheckpointStore` with
    ``store.install_faults(plan)`` (or attach ``plan.injector()`` to
    individual blob stores via ``attach_faults``).
    """

    SPEC_CLASS: ClassVar[type] = StorageFaultSpec


class StorageFaultInjector(BaseFaultInjector):
    """Executes a :class:`StorageFaultPlan` against live blob stores.

    One injector is shared by every store in a replication group, so
    ``op_index`` is a *global* storage-operation counter and a plan's
    probability stream advances in cross-store execution order — two
    identical runs see identical fault sequences. Stores consult:

    * :meth:`on_op` at the start of every put/get/delete — raises for
      ``store_down``/``disk_full``, sleeps for ``slow_io``;
    * :meth:`corruptions` right after — at-rest ``bit_rot`` actions the
      store applies to blobs it already holds;
    * :meth:`on_put` / :meth:`on_get` around the data transfer —
      ``torn_write`` truncation and ``stale_read`` substitution;
    * :meth:`end_op` once the operation's matching window closes.

    Fired faults are recorded as :class:`InjectionEvent` entries with
    ``op_name`` set to ``"store:<id>:<key>"``.
    """

    def __init__(self, plan: StorageFaultPlan, clock=None):
        super().__init__(plan)
        self.clock = clock
        self.op_index = 0
        self._patterns = [re.compile(spec.key_pattern)
                          if spec.key_pattern is not None else None
                          for spec in self.plan.specs]
        #: store id -> op_index (exclusive) until which it stays dark
        self._down_until: dict[int, int] = {}

    def attach_clock(self, clock) -> None:
        """Late-bind the clock ``slow_io`` sleeps on (first one wins)."""
        if self.clock is None:
            self.clock = clock

    # -- targeting ---------------------------------------------------------

    def _matches(self, index: int, spec: StorageFaultSpec,
                 store_id: int, key: str | None) -> bool:
        if self._spent_trigger(index, spec):
            return False
        if spec.store is not None and spec.store != store_id:
            return False
        if spec.op_index is not None and spec.op_index != self.op_index:
            return False
        pattern = self._patterns[index]
        if pattern is not None \
                and (key is None or pattern.search(key) is None):
            return False
        return self._draw(spec)

    def _fire(self, index: int, spec: StorageFaultSpec, store_id: int,
              key: str | None) -> None:
        self._record(index, spec.kind, self.op_index,
                     f"store:{store_id}:{key}")

    # -- store hook points -------------------------------------------------

    def on_op(self, store_id: int, op: str, key: str | None = None) -> None:
        """Gate one storage operation: outages, full disks, slow I/O."""
        until = self._down_until.get(store_id, 0)
        if until > self.op_index:
            raise StoreUnavailableError(
                f"store {store_id} is unavailable (injected outage, "
                f"{until - self.op_index} op(s) remaining)")
        for index, spec in enumerate(self.plan.specs):
            if spec.kind == "slow_io" \
                    and self._matches(index, spec, store_id, key):
                self._fire(index, spec, store_id, key)
                if self.clock is not None:
                    self.clock.sleep(spec.latency_seconds)
            elif spec.kind == "store_down" \
                    and self._matches(index, spec, store_id, key):
                self._fire(index, spec, store_id, key)
                self._down_until[store_id] = \
                    self.op_index + 1 + spec.duration_ops
                raise StoreUnavailableError(
                    f"store {store_id} went dark (injected, spec {index}, "
                    f"op {self.op_index})")
            elif spec.kind == "disk_full" and op == "put" \
                    and self._matches(index, spec, store_id, key):
                self._fire(index, spec, store_id, key)
                raise StorageFullError(
                    f"store {store_id}: no space left on device "
                    f"(injected, spec {index}, op {self.op_index})")

    def corruptions(self, store_id: int,
                    keys: tuple) -> list[tuple[str, int]]:
        """At-rest ``bit_rot`` actions: ``(key, position_seed)`` pairs.

        The store applies each by flipping the byte at
        ``position_seed % len(blob)``. The newest matching blob is
        chosen (keys embed monotonic checkpoint ids, so lexicographic
        max is newest); nothing fires — and no probability is drawn —
        while no blob at rest matches the spec's key pattern.
        """
        actions: list[tuple[str, int]] = []
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != "bit_rot" or self._spent_trigger(index, spec):
                continue
            if spec.store is not None and spec.store != store_id:
                continue
            if spec.op_index is not None \
                    and spec.op_index != self.op_index:
                continue
            pattern = self._patterns[index]
            candidates = [k for k in keys
                          if pattern is None or pattern.search(k)]
            if not candidates or not self._draw(spec):
                continue
            key = max(candidates)
            self._fire(index, spec, store_id, key)
            actions.append((key, int(self._rng.integers(1 << 30))))
        return actions

    def on_put(self, store_id: int, key: str, data: bytes) -> bytes:
        """Possibly tear a write: only a prefix of the bytes lands."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != "torn_write" \
                    or not self._matches(index, spec, store_id, key):
                continue
            self._fire(index, spec, store_id, key)
            data = data[:int(len(data) * spec.fraction)]
        return data

    def on_get(self, store_id: int, key: str, data: bytes,
               previous: bytes | None) -> bytes:
        """Possibly serve a stale view of the key."""
        from .errors import BlobNotFoundError
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != "stale_read" \
                    or not self._matches(index, spec, store_id, key):
                continue
            self._fire(index, spec, store_id, key)
            if previous is not None:
                data = previous
            else:
                raise BlobNotFoundError(
                    f"store {store_id}: blob {key!r} not yet visible "
                    f"(injected stale read, spec {index})", key=key)
        return data

    def end_op(self) -> None:
        self.op_index += 1


StorageFaultPlan.INJECTOR_CLASS = StorageFaultInjector


# -- plan serialization ------------------------------------------------------

#: family name -> plan class, for replay-file round-trips
FAULT_FAMILIES: dict[str, type[BaseFaultPlan]] = {
    "op": FaultPlan,
    "cluster": ClusterFaultPlan,
    "serving": ServingFaultPlan,
    "fleet": FleetFaultPlan,
    "storage": StorageFaultPlan,
}


def plan_to_json(plan: BaseFaultPlan) -> dict:
    """Serialize any family's fault plan to a JSON-safe dict."""
    return plan.to_json()


def plan_from_json(blob: dict) -> BaseFaultPlan:
    """Rebuild a fault plan of any family from :func:`plan_to_json`.

    The ``family`` tag picks the plan class; the round-trip
    ``plan_from_json(plan_to_json(p)) == p`` holds for every family
    (spec tuples, seeds, and therefore the injector's probability
    stream are all preserved exactly).
    """
    family = blob.get("family")
    plan_cls = FAULT_FAMILIES.get(family)
    if plan_cls is None:
        raise ValueError(
            f"unknown fault family {family!r}; expected one of "
            f"{sorted(FAULT_FAMILIES)}")
    return plan_cls.from_json(blob)
