"""Deterministic fault injection for chaos-testing the runtime.

Fathom's workloads are long-running training jobs; hardening the stack
(see :mod:`repro.framework.resilience`) requires a way to *provoke* the
failures it must survive, reproducibly. A :class:`FaultPlan` is a
declarative, seedable list of :class:`FaultSpec` entries; a
:class:`FaultInjector` executes the plan by hooking the four injection
points :class:`~repro.framework.session.Session` exposes:

* ``exception`` — raise a transient :class:`InjectedFault` before an op
  runs (models a lost worker / preempted kernel).
* ``nan`` — poison an op's floating-point outputs with NaN/Inf after it
  runs (models silent data corruption).
* ``latency`` — sleep before an op runs (models a straggler op).
* ``feed`` — corrupt a placeholder's fed minibatch (models bad input
  pipelines).

Faults are targeted by op type, op name regex, and/or *injection step*
(the index of the enclosing ``Session.run`` call; aborted runs count).
Everything is deterministic given ``(plan, seed)``: probability draws
come from a private seeded generator advanced in execution order, so two
identical runs of the same plan produce identical
:class:`InjectionEvent` sequences.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field

import numpy as np

from .errors import ExecutionError, ReplicaCrashError
from .graph import Operation

#: the supported fault kinds
FAULT_KINDS = ("exception", "nan", "latency", "feed")

#: fault kinds injected at the *serving* layer (see ServingFaultPlan)
SERVING_FAULT_KINDS = ("replica_crash", "slow_replica", "poisoned_batch")

#: fault kinds injected at the *cluster* layer (see ClusterFaultPlan)
CLUSTER_FAULT_KINDS = ("worker_crash", "straggler", "partition",
                       "lost_gradient", "corrupt_gradient")


class InjectedFault(ExecutionError):
    """A deliberately injected, transient operation failure.

    ``transient=True`` marks it as retryable for the resilient runner.
    ``injection_step`` records which injection step (``Session.run``
    index) fired the fault, so blame trails in recovery logs can be
    cross-referenced against the injector's event list.
    """

    def __init__(self, op_name: str, message: str,
                 injection_step: int | None = None):
        super().__init__(op_name, message, transient=True)
        self.injection_step = injection_step


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: what to inject, where, and how often.

    Args:
        kind: one of :data:`FAULT_KINDS`.
        op_type: only fault ops of this ``type_name`` (e.g. ``"MatMul"``).
        name_pattern: only fault ops whose name matches this regex
            (``re.search`` semantics).
        step: only fault during this injection step (the index of the
            ``Session.run`` call as counted by the injector).
        probability: chance of firing when all targets match; draws come
            from the plan's seeded generator, so they are reproducible.
        max_triggers: stop firing after this many injections
            (``None`` = unlimited).
        latency_seconds: sleep duration for ``latency`` faults.
        payload: ``"nan"`` or ``"inf"`` — the poison value for ``nan``
            and ``feed`` faults.
    """

    kind: str
    op_type: str | None = None
    name_pattern: str | None = None
    step: int | None = None
    probability: float = 1.0
    max_triggers: int | None = 1
    latency_seconds: float = 0.01
    payload: str = "nan"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if self.payload not in ("nan", "inf"):
            raise ValueError(
                f"payload must be 'nan' or 'inf', got {self.payload!r}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}")
        if self.name_pattern is not None:
            re.compile(self.name_pattern)  # fail fast on bad regexes

    @property
    def poison_value(self) -> float:
        return float("nan") if self.payload == "nan" else float("inf")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seedable schedule of faults to inject.

    The plan itself holds no runtime state; build a fresh
    :class:`FaultInjector` per run. Two injectors over the same plan and
    the same execution produce identical event sequences.
    """

    specs: tuple[FaultSpec, ...]
    seed: int = 0

    def __init__(self, specs, seed: int = 0):
        object.__setattr__(self, "specs", tuple(specs))
        object.__setattr__(self, "seed", int(seed))

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)


@dataclass(frozen=True)
class InjectionEvent:
    """One fault actually injected during execution."""

    step: int
    op_name: str
    kind: str
    spec_index: int


@dataclass
class FaultInjector:
    """Executes a :class:`FaultPlan` against a live session.

    Install with ``session.fault_injector = FaultInjector(plan)`` (or
    ``plan.injector()``). The injector counts ``Session.run`` calls as
    *injection steps* — including runs aborted by an injected exception,
    so a retried training step is a fresh injection step and a
    ``max_triggers=1`` exception fault is genuinely transient.
    """

    plan: FaultPlan
    step: int = 0
    events: list[InjectionEvent] = field(default_factory=list)

    def __post_init__(self):
        self._rng = np.random.default_rng(self.plan.seed)
        self._triggers = [0] * len(self.plan.specs)
        self._patterns = [re.compile(spec.name_pattern)
                          if spec.name_pattern is not None else None
                          for spec in self.plan.specs]

    # -- targeting ---------------------------------------------------------

    def _matches(self, index: int, spec: FaultSpec, op: Operation) -> bool:
        if (spec.max_triggers is not None
                and self._triggers[index] >= spec.max_triggers):
            return False
        if spec.step is not None and spec.step != self.step:
            return False
        if spec.op_type is not None and op.type_name != spec.op_type:
            return False
        pattern = self._patterns[index]
        if pattern is not None and pattern.search(op.name) is None:
            return False
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return False
        return True

    def _fire(self, index: int, spec: FaultSpec, op: Operation) -> None:
        self._triggers[index] += 1
        self.events.append(InjectionEvent(
            step=self.step, op_name=op.name, kind=spec.kind,
            spec_index=index))

    # -- Session hook points -----------------------------------------------

    def on_feed(self, op: Operation, value: np.ndarray) -> np.ndarray:
        """Possibly corrupt a fed placeholder value (copy-on-poison)."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != "feed" or not self._matches(index, spec, op):
                continue
            if not np.issubdtype(value.dtype, np.floating):
                continue
            self._fire(index, spec, op)
            value = value.copy()
            value.reshape(-1)[0] = spec.poison_value
        return value

    def before_op(self, op: Operation) -> None:
        """Inject latency spikes and transient exceptions."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind == "latency" and self._matches(index, spec, op):
                self._fire(index, spec, op)
                time.sleep(spec.latency_seconds)
            elif spec.kind == "exception" and self._matches(index, spec, op):
                self._fire(index, spec, op)
                raise InjectedFault(
                    op.name,
                    f"injected transient fault (spec {index}, "
                    f"step {self.step})", injection_step=self.step)

    def after_op(self, op: Operation, outputs):
        """Possibly poison an op's floating-point outputs."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != "nan" or not self._matches(index, spec, op):
                continue
            poisoned = []
            hit = False
            for value in outputs:
                value = np.asarray(value)
                if np.issubdtype(value.dtype, np.floating) and value.size:
                    value = value.copy()
                    value.reshape(-1)[0] = spec.poison_value
                    hit = True
                poisoned.append(value)
            if hit:
                self._fire(index, spec, op)
                outputs = tuple(poisoned)
        return outputs

    def end_step(self) -> None:
        self.step += 1

    # -- reporting ---------------------------------------------------------

    @property
    def num_injected(self) -> int:
        return len(self.events)

    def signature(self) -> tuple:
        """Hashable summary of everything injected, for determinism checks."""
        return tuple((e.step, e.op_name, e.kind, e.spec_index)
                     for e in self.events)


# -- cluster-path faults ----------------------------------------------------


@dataclass(frozen=True)
class ClusterFaultSpec:
    """One declarative fault against the data-parallel cluster runtime.

    Where :class:`FaultSpec` targets individual operations and
    :class:`ServingFaultSpec` targets replica batches, a cluster fault
    targets the *machinery of distributed training* — workers, links,
    and the gradient messages crossing them
    (see :mod:`repro.distributed`). Kinds:

    * ``worker_crash`` — a worker dies mid-step, before its gradient is
      exchanged; the cluster restarts it and recovers all workers from
      the last coordinated checkpoint, then replays.
    * ``straggler`` — a worker's compute phase is delayed by
      ``delay_seconds`` of cluster-clock time (models a slow machine;
      provokes drop-slowest backup-worker semantics and straggler
      events).
    * ``partition`` — a worker↔worker link drops every message for
      ``duration_steps`` global steps (models a network partition;
      provokes timeout + retransmit and, when retries exhaust,
      degradation from ring all-reduce to the parameter-server path).
    * ``lost_gradient`` — one gradient message vanishes in flight
      (timeout + seeded-jitter retransmit recovers it).
    * ``corrupt_gradient`` — a gradient message arrives NaN/Inf-poisoned
      (``payload``); the receiver's guardrail screen rejects it and
      requests a retransmit.

    Args:
        kind: one of :data:`CLUSTER_FAULT_KINDS`.
        worker: only fault this worker id (``None`` = any worker).
        link: only fault this directed ``(src, dst)`` worker link
            (``partition``/``lost_gradient``/``corrupt_gradient``;
            ``None`` = any link, with ``worker`` matching the sender).
        step: only fault during this global training step
            (``None`` = any step).
        duration_steps: how many global steps a ``partition`` stays up.
        probability: chance of firing when all targets match; draws come
            from the plan's seeded generator, so they are reproducible.
        max_triggers: stop firing after this many injections
            (``None`` = unlimited).
        delay_seconds: compute delay for ``straggler`` faults
            (cluster-clock seconds, not wall time).
        payload: ``"nan"`` or ``"inf"`` — the poison for
            ``corrupt_gradient`` faults.
    """

    kind: str
    worker: int | None = None
    link: tuple[int, int] | None = None
    step: int | None = None
    duration_steps: int = 1
    probability: float = 1.0
    max_triggers: int | None = 1
    delay_seconds: float = 0.5
    payload: str = "nan"

    def __post_init__(self):
        if self.kind not in CLUSTER_FAULT_KINDS:
            raise ValueError(
                f"unknown cluster fault kind {self.kind!r}; expected one "
                f"of {CLUSTER_FAULT_KINDS}")
        if self.payload not in ("nan", "inf"):
            raise ValueError(
                f"payload must be 'nan' or 'inf', got {self.payload!r}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}")
        if self.duration_steps < 1:
            raise ValueError(
                f"duration_steps must be >= 1, got {self.duration_steps}")
        if self.link is not None:
            object.__setattr__(self, "link",
                               (int(self.link[0]), int(self.link[1])))

    @property
    def poison_value(self) -> float:
        return float("nan") if self.payload == "nan" else float("inf")


@dataclass(frozen=True)
class ClusterFaultPlan:
    """An immutable, seedable schedule of cluster faults.

    Hand it to :class:`repro.distributed.runtime.ClusterRuntime`; the
    runtime builds the injector so injected delays advance the cluster
    clock deterministically.
    """

    specs: tuple[ClusterFaultSpec, ...]
    seed: int = 0

    def __init__(self, specs, seed: int = 0):
        object.__setattr__(self, "specs", tuple(specs))
        object.__setattr__(self, "seed", int(seed))

    def injector(self) -> "ClusterFaultInjector":
        return ClusterFaultInjector(self)


class ClusterFaultInjector:
    """Executes a :class:`ClusterFaultPlan` against a cluster run.

    The runtime consults three hook points: :meth:`should_crash` and
    :meth:`compute_delay` during each worker's compute phase, and
    :meth:`on_message` for every gradient/parameter message crossing a
    link. Like the other injectors, everything is deterministic given
    ``(plan, seed)``; fired faults are recorded as
    :class:`InjectionEvent` entries with ``op_name`` set to
    ``"worker:<id>"`` or ``"link:<src>-><dst>"``.
    """

    def __init__(self, plan: ClusterFaultPlan):
        self.plan = plan
        self.events: list[InjectionEvent] = []
        self._rng = np.random.default_rng(plan.seed)
        self._triggers = [0] * len(plan.specs)
        #: active partitions: (src, dst) -> step the partition heals at
        self._partitions: dict[tuple[int, int], int] = {}

    def _matches(self, index: int, spec: ClusterFaultSpec, step: int,
                 worker: int | None = None,
                 link: tuple[int, int] | None = None) -> bool:
        if (spec.max_triggers is not None
                and self._triggers[index] >= spec.max_triggers):
            return False
        if spec.step is not None and spec.step != step:
            return False
        if spec.worker is not None:
            sender = link[0] if link is not None else worker
            if spec.worker != sender:
                return False
        if spec.link is not None and spec.link != link:
            return False
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return False
        return True

    def _fire(self, index: int, spec: ClusterFaultSpec, step: int,
              target: str) -> None:
        self._triggers[index] += 1
        self.events.append(InjectionEvent(
            step=step, op_name=target, kind=spec.kind, spec_index=index))

    # -- runtime hook points -------------------------------------------------

    def should_crash(self, worker: int, step: int) -> bool:
        """True if ``worker`` crashes during this step's compute phase."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind == "worker_crash" \
                    and self._matches(index, spec, step, worker=worker):
                self._fire(index, spec, step, f"worker:{worker}")
                return True
        return False

    def compute_delay(self, worker: int, step: int) -> float:
        """Extra cluster-clock seconds added to a worker's compute."""
        delay = 0.0
        for index, spec in enumerate(self.plan.specs):
            if spec.kind == "straggler" \
                    and self._matches(index, spec, step, worker=worker):
                self._fire(index, spec, step, f"worker:{worker}")
                delay += spec.delay_seconds
        return delay

    def on_message(self, src: int, dst: int, step: int,
                   value: np.ndarray | None = None):
        """Outcome of one message crossing the ``src -> dst`` link.

        Returns ``("ok", value)``, ``("lost", None)`` for a dropped
        message (partition or lost_gradient), or ``("corrupt",
        poisoned)`` for an in-flight payload corruption. Partitions are
        sticky: once fired, the link stays dead until ``duration_steps``
        global steps have passed, so retransmits inside the window fail
        deterministically.
        """
        link = (src, dst)
        heals_at = self._partitions.get(link)
        if heals_at is not None:
            if step < heals_at:
                return "lost", None
            del self._partitions[link]
        for index, spec in enumerate(self.plan.specs):
            if spec.kind == "partition" \
                    and self._matches(index, spec, step, link=link):
                self._fire(index, spec, step, f"link:{src}->{dst}")
                self._partitions[link] = step + spec.duration_steps
                return "lost", None
            if spec.kind == "lost_gradient" \
                    and self._matches(index, spec, step, link=link):
                self._fire(index, spec, step, f"link:{src}->{dst}")
                return "lost", None
            if spec.kind == "corrupt_gradient" \
                    and self._matches(index, spec, step, link=link) \
                    and value is not None:
                self._fire(index, spec, step, f"link:{src}->{dst}")
                poisoned = np.asarray(value).copy()
                if np.issubdtype(poisoned.dtype, np.floating) \
                        and poisoned.size:
                    poisoned.reshape(-1)[0] = spec.poison_value
                return "corrupt", poisoned
        return "ok", value

    def link_partitioned(self, src: int, dst: int, step: int) -> bool:
        """True if an already-fired partition still covers this link."""
        heals_at = self._partitions.get((src, dst))
        return heals_at is not None and step < heals_at

    @property
    def num_injected(self) -> int:
        return len(self.events)

    def signature(self) -> tuple:
        """Hashable summary of everything injected, for determinism checks."""
        return tuple((e.step, e.op_name, e.kind, e.spec_index)
                     for e in self.events)


# -- serving-path faults ----------------------------------------------------


@dataclass(frozen=True)
class ServingFaultSpec:
    """One declarative fault against the inference-serving path.

    Where :class:`FaultSpec` targets individual operations inside a
    ``Session.run``, a serving fault targets a whole *replica batch* —
    the unit of work :class:`repro.serving.server.InferenceServer`
    dispatches. Kinds:

    * ``replica_crash`` — the replica dies before executing the batch
      (raises :class:`~repro.framework.errors.ReplicaCrashError`; the
      server fails the batch over and restarts the replica).
    * ``slow_replica`` — the replica stalls ``latency_seconds`` before
      executing (models a straggler machine; provokes deadline misses
      and hedged retries).
    * ``poisoned_batch`` — the batch executes but its output comes back
      NaN/Inf-poisoned (models silent data corruption in flight).

    Args:
        kind: one of :data:`SERVING_FAULT_KINDS`.
        replica: only fault this replica id (``None`` = any replica).
        batch: only fault this dispatch index (the server's batch
            counter; ``None`` = any batch).
        probability: chance of firing when the targets match; draws come
            from the plan's seeded generator, so they are reproducible.
        max_triggers: stop firing after this many injections
            (``None`` = unlimited).
        latency_seconds: stall duration for ``slow_replica`` faults.
        payload: ``"nan"`` or ``"inf"`` — the poison for
            ``poisoned_batch`` faults.
    """

    kind: str
    replica: int | None = None
    batch: int | None = None
    probability: float = 1.0
    max_triggers: int | None = 1
    latency_seconds: float = 0.05
    payload: str = "nan"

    def __post_init__(self):
        if self.kind not in SERVING_FAULT_KINDS:
            raise ValueError(
                f"unknown serving fault kind {self.kind!r}; expected one "
                f"of {SERVING_FAULT_KINDS}")
        if self.payload not in ("nan", "inf"):
            raise ValueError(
                f"payload must be 'nan' or 'inf', got {self.payload!r}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}")

    @property
    def poison_value(self) -> float:
        return float("nan") if self.payload == "nan" else float("inf")


@dataclass(frozen=True)
class ServingFaultPlan:
    """An immutable, seedable schedule of serving-path faults.

    Install on a server with ``server.install_faults(plan)`` — the
    server builds the injector bound to its own clock, so injected
    stalls advance virtual time deterministically in tests.
    """

    specs: tuple[ServingFaultSpec, ...]
    seed: int = 0

    def __init__(self, specs, seed: int = 0):
        object.__setattr__(self, "specs", tuple(specs))
        object.__setattr__(self, "seed", int(seed))

    def injector(self, sleep=time.sleep) -> "ServingFaultInjector":
        return ServingFaultInjector(self, sleep=sleep)


class ServingFaultInjector:
    """Executes a :class:`ServingFaultPlan` against a live server.

    The server consults :meth:`before_batch` right before handing a
    batch to a replica and :meth:`after_batch` on the replica's output.
    Like the op-level injector, everything is deterministic given
    ``(plan, seed)``; fired faults are recorded as
    :class:`InjectionEvent` entries with ``op_name`` set to
    ``"replica:<id>"``.
    """

    def __init__(self, plan: ServingFaultPlan, sleep=time.sleep):
        self.plan = plan
        self._sleep = sleep
        self.events: list[InjectionEvent] = []
        self._rng = np.random.default_rng(plan.seed)
        self._triggers = [0] * len(plan.specs)

    def _matches(self, index: int, spec: ServingFaultSpec,
                 replica_id: int, batch_index: int) -> bool:
        if (spec.max_triggers is not None
                and self._triggers[index] >= spec.max_triggers):
            return False
        if spec.replica is not None and spec.replica != replica_id:
            return False
        if spec.batch is not None and spec.batch != batch_index:
            return False
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return False
        return True

    def _fire(self, index: int, spec: ServingFaultSpec, replica_id: int,
              batch_index: int) -> None:
        self._triggers[index] += 1
        self.events.append(InjectionEvent(
            step=batch_index, op_name=f"replica:{replica_id}",
            kind=spec.kind, spec_index=index))

    # -- server hook points --------------------------------------------------

    def before_batch(self, replica_id: int, batch_index: int) -> None:
        """Inject stalls and crashes before a batch executes."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind == "slow_replica" \
                    and self._matches(index, spec, replica_id, batch_index):
                self._fire(index, spec, replica_id, batch_index)
                self._sleep(spec.latency_seconds)
            elif spec.kind == "replica_crash" \
                    and self._matches(index, spec, replica_id, batch_index):
                self._fire(index, spec, replica_id, batch_index)
                raise ReplicaCrashError(
                    f"replica:{replica_id}",
                    f"injected replica crash (spec {index}, "
                    f"batch {batch_index})", injection_step=batch_index)

    def after_batch(self, replica_id: int, batch_index: int, output):
        """Possibly poison a batch's floating-point output."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != "poisoned_batch" \
                    or not self._matches(index, spec, replica_id,
                                         batch_index):
                continue
            value = np.asarray(output)
            if np.issubdtype(value.dtype, np.floating) and value.size:
                self._fire(index, spec, replica_id, batch_index)
                value = value.copy()
                value.reshape(-1)[0] = spec.poison_value
                output = value
        return output

    @property
    def num_injected(self) -> int:
        return len(self.events)

    def signature(self) -> tuple:
        """Hashable summary of everything injected, for determinism checks."""
        return tuple((e.step, e.op_name, e.kind, e.spec_index)
                     for e in self.events)
