"""Recurrent cells and static sequence unrolling.

Built from primitive operations exactly the way TensorFlow v0.8 models
were: an LSTM step is a Concat, a MatMul, a BiasAdd, four Slices, and a
handful of Sigmoid/Tanh/Mul/Add nodes, statically unrolled over the
sequence. The elementwise multiplies this generates are what the paper
attributes seq2seq's elementwise-heavy profile to (Section V-C).
"""

from __future__ import annotations

import numpy as np

from . import initializers
from .graph import Tensor, name_scope
from .ops import array_ops, math_ops, nn_ops, state_ops

LSTMState = tuple[Tensor, Tensor]


class LSTMCell:
    """A long short-term memory cell (Hochreiter & Schmidhuber)."""

    def __init__(self, num_units: int, input_size: int,
                 rng: np.random.Generator, forget_bias: float = 1.0,
                 name: str = "lstm"):
        self.num_units = num_units
        self.input_size = input_size
        self.forget_bias = forget_bias
        self.name = name
        with name_scope(name):
            self.kernel = state_ops.variable(
                initializers.glorot_uniform(
                    rng, (input_size + num_units, 4 * num_units)),
                name="kernel")
            self.bias = state_ops.variable(
                np.zeros(4 * num_units, dtype=np.float32), name="bias")

    def zero_state(self, batch_size: int) -> LSTMState:
        zeros = np.zeros((batch_size, self.num_units), dtype=np.float32)
        return (state_ops.constant(zeros, name=f"{self.name}/c0"),
                state_ops.constant(zeros, name=f"{self.name}/h0"))

    def __call__(self, x: Tensor, state: LSTMState) -> tuple[Tensor, LSTMState]:
        cell, hidden = state
        with name_scope(self.name):
            joined = array_ops.concat([x, hidden], axis=1)
            gates = nn_ops.bias_add(math_ops.matmul(joined, self.kernel),
                                    self.bias)
            in_gate, new_input, forget_gate, out_gate = array_ops.split(
                gates, 4, axis=1)
            new_cell = math_ops.add(
                math_ops.multiply(
                    cell,
                    math_ops.sigmoid(
                        math_ops.add(forget_gate, self.forget_bias))),
                math_ops.multiply(math_ops.sigmoid(in_gate),
                                  math_ops.tanh(new_input)))
            new_hidden = math_ops.multiply(math_ops.tanh(new_cell),
                                           math_ops.sigmoid(out_gate))
        return new_hidden, (new_cell, new_hidden)


class BasicRNNCell:
    """A vanilla recurrent cell with a clipped-ReLU activation.

    Deep Speech deliberately uses this instead of LSTM ("we do not use
    LSTM circuits... by using a homogeneous model we have made the
    computation of the recurrent activations as efficient as possible").
    The activation is min(max(x, 0), clip), clip=20 in the paper.
    """

    def __init__(self, num_units: int, input_size: int,
                 rng: np.random.Generator, clip: float = 20.0,
                 name: str = "rnn"):
        self.num_units = num_units
        self.clip = clip
        self.name = name
        with name_scope(name):
            self.kernel = state_ops.variable(
                initializers.glorot_uniform(
                    rng, (input_size + num_units, num_units)),
                name="kernel")
            self.bias = state_ops.variable(
                np.zeros(num_units, dtype=np.float32), name="bias")

    def zero_state(self, batch_size: int) -> Tensor:
        zeros = np.zeros((batch_size, self.num_units), dtype=np.float32)
        return state_ops.constant(zeros, name=f"{self.name}/h0")

    def __call__(self, x: Tensor, state: Tensor) -> tuple[Tensor, Tensor]:
        with name_scope(self.name):
            joined = array_ops.concat([x, state], axis=1)
            raw = nn_ops.bias_add(math_ops.matmul(joined, self.kernel),
                                  self.bias)
            hidden = math_ops.minimum(math_ops.relu(raw), self.clip)
        return hidden, hidden


class FusedLSTMCell:
    """An LSTM cell backed by the fused ``LSTMBlockCell`` operation.

    Drop-in interchangeable with :class:`LSTMCell` (same gate order,
    forget bias, and state layout) but each step is a single fused
    operation instead of ~15 primitives — the kernel-fusion answer to
    the overhead-bound recurrent profiles of the paper's Figs. 3/6b.
    See ``benchmarks/bench_ablation_fusion.py``.
    """

    def __init__(self, num_units: int, input_size: int,
                 rng: np.random.Generator, forget_bias: float = 1.0,
                 name: str = "fused_lstm"):
        self.num_units = num_units
        self.input_size = input_size
        self.forget_bias = forget_bias
        self.name = name
        with name_scope(name):
            self.kernel = state_ops.variable(
                initializers.glorot_uniform(
                    rng, (input_size + num_units, 4 * num_units)),
                name="kernel")
            self.bias = state_ops.variable(
                np.zeros(4 * num_units, dtype=np.float32), name="bias")

    def zero_state(self, batch_size: int) -> LSTMState:
        zeros = np.zeros((batch_size, self.num_units), dtype=np.float32)
        return (state_ops.constant(zeros, name=f"{self.name}/c0"),
                state_ops.constant(zeros, name=f"{self.name}/h0"))

    def __call__(self, x: Tensor, state: LSTMState) -> tuple[Tensor, LSTMState]:
        from .ops.rnn_ops import lstm_block_cell
        cell, hidden = state
        with name_scope(self.name):
            new_c, new_h = lstm_block_cell(x, cell, hidden, self.kernel,
                                           self.bias,
                                           forget_bias=self.forget_bias)
        return new_h, (new_c, new_h)


class GRUCell:
    """A gated recurrent unit (Cho et al., 2014).

    Not used by the eight reference workloads, but part of the framework's
    recurrent vocabulary so new "living suite" workloads can adopt it.
    """

    def __init__(self, num_units: int, input_size: int,
                 rng: np.random.Generator, name: str = "gru"):
        self.num_units = num_units
        self.name = name
        with name_scope(name):
            self.gate_kernel = state_ops.variable(
                initializers.glorot_uniform(
                    rng, (input_size + num_units, 2 * num_units)),
                name="gate_kernel")
            self.gate_bias = state_ops.variable(
                np.ones(2 * num_units, dtype=np.float32), name="gate_bias")
            self.candidate_kernel = state_ops.variable(
                initializers.glorot_uniform(
                    rng, (input_size + num_units, num_units)),
                name="candidate_kernel")
            self.candidate_bias = state_ops.variable(
                np.zeros(num_units, dtype=np.float32),
                name="candidate_bias")

    def zero_state(self, batch_size: int) -> Tensor:
        zeros = np.zeros((batch_size, self.num_units), dtype=np.float32)
        return state_ops.constant(zeros, name=f"{self.name}/h0")

    def __call__(self, x: Tensor, state: Tensor) -> tuple[Tensor, Tensor]:
        with name_scope(self.name):
            joined = array_ops.concat([x, state], axis=1)
            gates = math_ops.sigmoid(nn_ops.bias_add(
                math_ops.matmul(joined, self.gate_kernel), self.gate_bias))
            reset, update = array_ops.split(gates, 2, axis=1)
            candidate_in = array_ops.concat(
                [x, math_ops.multiply(reset, state)], axis=1)
            candidate = math_ops.tanh(nn_ops.bias_add(
                math_ops.matmul(candidate_in, self.candidate_kernel),
                self.candidate_bias))
            new_state = math_ops.add(
                math_ops.multiply(update, state),
                math_ops.multiply(math_ops.subtract(1.0, update), candidate))
        return new_state, new_state


def static_rnn(cell, inputs: list[Tensor], initial_state=None):
    """Unroll ``cell`` over a python list of per-timestep inputs.

    Returns (outputs per step, final state). This is static unrolling, as
    in the paper's TensorFlow version: every timestep contributes its own
    operations to the graph.
    """
    if not inputs:
        raise ValueError("static_rnn needs at least one timestep")
    state = initial_state
    if state is None:
        state = cell.zero_state(inputs[0].shape[0])
    outputs = []
    for x in inputs:
        out, state = cell(x, state)
        outputs.append(out)
    return outputs, state


def bidirectional_rnn(forward_cell, backward_cell, inputs: list[Tensor]):
    """Run two cells over the sequence in opposite directions, concat outputs."""
    forward_out, _ = static_rnn(forward_cell, inputs)
    backward_out, _ = static_rnn(backward_cell, list(reversed(inputs)))
    backward_out = list(reversed(backward_out))
    return [array_ops.concat([f, b], axis=1)
            for f, b in zip(forward_out, backward_out)]
