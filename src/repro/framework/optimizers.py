"""Gradient-descent optimizers and their parameter-update operations.

Each optimizer emits one ``Apply*`` operation per variable, matching
TensorFlow's design; those nodes are what the paper's Fig. 3 taxonomy
calls the "Optimization" class (group F), and their limited intra-op
parallelism — one small, data-dependent update per parameter tensor —
is why the optimizer's share of runtime *grows* with thread count in
Fig. 6a.
"""

from __future__ import annotations

import numpy as np

from .autodiff import gradients
from .cost_model import WorkEstimate
from .errors import DifferentiationError
from .graph import Operation, OpClass, Tensor
from .ops import state_ops
from .ops.state_ops import VariableOp


class _ApplyOp(Operation):
    """Base for in-place parameter updates; outputs the updated value."""

    op_class = OpClass.OPTIMIZATION
    _flops_per_element = 2.0

    def _output_specs(self):
        return [(self.inputs[0].shape, self.inputs[0].dtype)]

    def _estimate_work(self):
        n = self.output.size
        # Read-modify-write on the variable plus slot state; updates are
        # data-dependent, so parallelism is limited to the tensor size.
        return WorkEstimate(flops=self._flops_per_element * n,
                            bytes_moved=12.0 * n, trip_count=float(n))

    def _var(self, ctx, key: str = "variable") -> np.ndarray:
        return ctx.read_variable(self.attrs[key])

    def _store(self, ctx, value: np.ndarray, key: str = "variable") -> None:
        ctx.write_variable(self.attrs[key], value)


class ApplyGradientDescent(_ApplyOp):
    type_name = "ApplyGradientDescent"

    def compute(self, inputs, ctx):
        grad = inputs[0]
        updated = self._var(ctx) - self.attrs["learning_rate"] * grad
        self._store(ctx, updated)
        return (updated,)


class ApplyMomentum(_ApplyOp):
    type_name = "ApplyMomentum"
    _flops_per_element = 4.0

    def compute(self, inputs, ctx):
        grad = inputs[0]
        accum = self._var(ctx, "accumulator")
        accum = self.attrs["momentum"] * accum + grad
        updated = self._var(ctx) - self.attrs["learning_rate"] * accum
        self._store(ctx, accum, "accumulator")
        self._store(ctx, updated)
        return (updated,)


class ApplyRMSProp(_ApplyOp):
    """RMSProp, the optimizer the original DQN used (Fig. 6a's profile)."""

    type_name = "ApplyRMSProp"
    _flops_per_element = 8.0

    def compute(self, inputs, ctx):
        grad = inputs[0]
        decay = self.attrs["decay"]
        mean_square = self._var(ctx, "mean_square")
        mean_square = decay * mean_square + (1.0 - decay) * np.square(grad)
        denom = np.sqrt(mean_square) + self.attrs["epsilon"]
        momentum = self._var(ctx, "momentum_slot")
        momentum = (self.attrs["momentum"] * momentum
                    + self.attrs["learning_rate"] * grad / denom)
        updated = self._var(ctx) - momentum
        self._store(ctx, mean_square, "mean_square")
        self._store(ctx, momentum, "momentum_slot")
        self._store(ctx, updated)
        return (updated,)


class ApplyAdam(_ApplyOp):
    type_name = "ApplyAdam"
    _flops_per_element = 10.0

    def compute(self, inputs, ctx):
        grad = inputs[0]
        beta1, beta2 = self.attrs["beta1"], self.attrs["beta2"]
        step = float(self._var(ctx, "step")) + 1.0
        first = self._var(ctx, "first_moment")
        second = self._var(ctx, "second_moment")
        first = beta1 * first + (1.0 - beta1) * grad
        second = beta2 * second + (1.0 - beta2) * np.square(grad)
        # Plain python float: a numpy float64 scalar here would promote
        # every float32 array it touches to float64.
        corrected_lr = float(self.attrs["learning_rate"]
                             * (1.0 - beta2 ** step) ** 0.5
                             / (1.0 - beta1 ** step))
        updated = self._var(ctx) - corrected_lr * first / (
            np.sqrt(second) + self.attrs["epsilon"])
        self._store(ctx, np.float32(step), "step")
        self._store(ctx, first, "first_moment")
        self._store(ctx, second, "second_moment")
        self._store(ctx, updated)
        return (updated,)


class Optimizer:
    """Base optimizer: pairs symbolic gradients with Apply* update nodes."""

    def minimize(self, loss: Tensor,
                 var_list: list[Tensor] | None = None) -> Tensor:
        """Build a single fetchable training-step node for ``loss``."""
        if var_list is None:
            var_list = state_ops.trainable_variables(loss.graph)
        if not var_list:
            raise DifferentiationError("no trainable variables to optimize")
        grads = gradients(loss, var_list)
        pairs = [(g, v) for g, v in zip(grads, var_list) if g is not None]
        if not pairs:
            raise DifferentiationError(
                "loss does not depend on any trainable variable")
        return self.apply_gradients(pairs)

    def apply_gradients(self, grads_and_vars: list[tuple[Tensor, Tensor]]) -> Tensor:
        updates = [self._apply_dense(grad, var)
                   for grad, var in grads_and_vars]
        return state_ops.group(*updates, name="train_step")

    def _apply_dense(self, grad: Tensor, var: Tensor) -> Tensor:
        raise NotImplementedError

    @staticmethod
    def _variable_op(var: Tensor) -> VariableOp:
        if not isinstance(var.op, VariableOp):
            raise DifferentiationError(
                f"can only optimize variables, got {var.op.type_name}")
        return var.op

    @staticmethod
    def _slot(var: Tensor, slot_name: str, shape=None) -> VariableOp:
        """Create a non-trainable accumulator shaped like ``var``."""
        shape = var.shape if shape is None else shape
        slot = state_ops.variable(np.zeros(shape, dtype=np.float32),
                                  name=f"{var.op.name}/{slot_name}",
                                  trainable=False)
        return slot.op


class GradientDescentOptimizer(Optimizer):
    def __init__(self, learning_rate: float):
        self.learning_rate = float(learning_rate)

    def _apply_dense(self, grad, var):
        return ApplyGradientDescent(
            [grad],
            attrs={"variable": self._variable_op(var),
                   "learning_rate": self.learning_rate},
            name=f"{var.op.name}/update").output


class MomentumOptimizer(Optimizer):
    def __init__(self, learning_rate: float, momentum: float = 0.9):
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)

    def _apply_dense(self, grad, var):
        return ApplyMomentum(
            [grad],
            attrs={"variable": self._variable_op(var),
                   "accumulator": self._slot(var, "momentum"),
                   "learning_rate": self.learning_rate,
                   "momentum": self.momentum},
            name=f"{var.op.name}/update").output


class RMSPropOptimizer(Optimizer):
    def __init__(self, learning_rate: float, decay: float = 0.9,
                 momentum: float = 0.0, epsilon: float = 1e-10):
        self.learning_rate = float(learning_rate)
        self.decay = float(decay)
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)

    def _apply_dense(self, grad, var):
        return ApplyRMSProp(
            [grad],
            attrs={"variable": self._variable_op(var),
                   "mean_square": self._slot(var, "rms"),
                   "momentum_slot": self._slot(var, "rms_momentum"),
                   "learning_rate": self.learning_rate,
                   "decay": self.decay,
                   "momentum": self.momentum,
                   "epsilon": self.epsilon},
            name=f"{var.op.name}/update").output


class AdamOptimizer(Optimizer):
    def __init__(self, learning_rate: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8):
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)

    def _apply_dense(self, grad, var):
        return ApplyAdam(
            [grad],
            attrs={"variable": self._variable_op(var),
                   "first_moment": self._slot(var, "adam_m"),
                   "second_moment": self._slot(var, "adam_v"),
                   "step": self._slot(var, "adam_t", shape=()),
                   "learning_rate": self.learning_rate,
                   "beta1": self.beta1,
                   "beta2": self.beta2,
                   "epsilon": self.epsilon},
            name=f"{var.op.name}/update").output
