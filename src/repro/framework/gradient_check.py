"""Numerical gradient verification as a public utility.

The paper's workloads are "standard, verified" reference implementations;
for a from-scratch framework the verification that matters most is that
symbolic gradients match finite differences. This utility packages the
check the test suite applies to every op family so users extending the
framework (new ops, new workloads) can verify their gradients in one
call::

    report = check_gradients(loss, [weights], session,
                             feed_dict={x: batch})
    assert report.max_relative_error < 1e-2
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .autodiff import gradients
from .errors import DifferentiationError
from .graph import Tensor
from .ops.state_ops import Placeholder, VariableOp
from .session import Session


@dataclass(frozen=True)
class GradientCheckEntry:
    """One checked coordinate of one differentiated tensor."""

    tensor_name: str
    index: tuple[int, ...]
    analytic: float
    numeric: float

    @property
    def relative_error(self) -> float:
        scale = max(abs(self.analytic), abs(self.numeric), 1e-8)
        return abs(self.analytic - self.numeric) / scale


@dataclass(frozen=True)
class GradientCheckReport:
    entries: list[GradientCheckEntry]

    @property
    def max_relative_error(self) -> float:
        return max((e.relative_error for e in self.entries), default=0.0)

    def worst(self, n: int = 3) -> list[GradientCheckEntry]:
        return sorted(self.entries, key=lambda e: -e.relative_error)[:n]

    def render(self) -> str:
        lines = [f"gradient check: {len(self.entries)} coordinates, "
                 f"max relative error {self.max_relative_error:.2e}"]
        for entry in self.worst():
            lines.append(f"  {entry.tensor_name}{list(entry.index)}: "
                         f"analytic {entry.analytic:+.5e} vs numeric "
                         f"{entry.numeric:+.5e} "
                         f"(rel {entry.relative_error:.2e})")
        return "\n".join(lines)


def _perturbed_loss(session: Session, loss: Tensor, target: Tensor,
                    base_value: np.ndarray, index, delta: float,
                    feed_dict) -> float:
    bumped = base_value.copy()
    bumped[index] += delta
    if isinstance(target.op, VariableOp):
        session.set_variable(target, bumped)
        value = float(session.run(loss, feed_dict=feed_dict))
        session.set_variable(target, base_value)
        return value
    feeds = dict(feed_dict)
    feeds[target] = bumped
    return float(session.run(loss, feed_dict=feeds))


def check_gradients(loss: Tensor, targets: list[Tensor], session: Session,
                    feed_dict=None, samples_per_tensor: int = 3,
                    epsilon: float = 1e-3,
                    seed: int = 0) -> GradientCheckReport:
    """Compare symbolic and central-difference gradients.

    Args:
        loss: a scalar tensor.
        targets: placeholders or variables to differentiate with respect
            to. For placeholders the checked base value comes from
            ``feed_dict``; for variables, from the session state.
        samples_per_tensor: random coordinates checked per target.
    """
    if loss.shape != ():
        raise DifferentiationError(
            f"gradient check needs a scalar loss, got shape {loss.shape}")
    feed_dict = dict(feed_dict or {})
    rng = np.random.default_rng(seed)
    symbolic = gradients(loss, targets)
    entries: list[GradientCheckEntry] = []
    for target, grad in zip(targets, symbolic):
        if grad is None:
            raise DifferentiationError(
                f"loss does not depend on {target.name!r}")
        if isinstance(target.op, VariableOp):
            base = session.variable_value(target).copy()
        elif isinstance(target.op, Placeholder):
            base = np.array(feed_dict[target], dtype=target.dtype)
        else:
            raise DifferentiationError(
                "targets must be placeholders or variables, got "
                f"{target.op.type_name}")
        analytic = session.run(grad, feed_dict=feed_dict)
        count = min(samples_per_tensor, target.size)
        flat_choices = rng.choice(target.size, size=count, replace=False)
        for flat in flat_choices:
            index = np.unravel_index(int(flat), target.shape or (1,))
            if target.shape == ():
                index = ()
            plus = _perturbed_loss(session, loss, target, base, index,
                                   epsilon, feed_dict)
            minus = _perturbed_loss(session, loss, target, base, index,
                                    -epsilon, feed_dict)
            numeric = (plus - minus) / (2.0 * epsilon)
            entries.append(GradientCheckEntry(
                tensor_name=target.name, index=tuple(int(i) for i in index),
                analytic=float(np.asarray(analytic)[index]),
                numeric=numeric))
    return GradientCheckReport(entries=entries)
