"""The codegen backend: plan regions become generated numpy kernels.

The interpreter dispatches one :class:`CompiledStep` per scheduled op —
a Python-loop iteration, two injector probes, a tracer probe, and a
tuple build per step. Section V-A's framework-overhead measurement shows
that on fine-grained graphs (seq2seq's thousands of unrolled ops) that
dispatch costs up to 22% of wall time. This module removes it the way
deferred-execution frameworks do: it partitions a compiled schedule into
*regions* of consecutive pure compute steps and emits one Python
function per region — elementwise/activation chains collapsed into
single numpy expressions, im2col+GEMM convolutions inlined, the static
schedule unrolled into straight-line code — compiled once with ``exec``
and cached on the plan.

Correctness contract (the same bar the optimization passes meet):

* **Bit-for-bit numerics.** Inline expression templates exist only for
  ops whose kernels are verbatim numpy expressions (``Add`` is
  ``a + b``); every other op is called through its own bound
  ``compute`` inside the kernel, so a generated region performs exactly
  the float operations, in exactly the order, the interpreter would.
* **Provenance survives.** Every generated line maps back to its
  :class:`CompiledStep` (``CompiledRegion.line_steps``), so a failure
  inside a kernel is blamed on the op the user wrote, guardrails name
  real ops, and the healing ladder's quarantine logic sees the same
  ``origin_pass`` chain it sees under interpretation.
* **De-optimization is local.** When a kernel raises, the session marks
  just that region ``deoptimized`` and subsequent runs execute its
  member steps op-by-op; other regions keep their kernels. Safe mode
  compiles structural interpreter plans, which disables codegen
  entirely.

Known, documented divergences from op-at-a-time interpretation: fault
injector hooks fire at statement boundaries (an op collapsed into a
consumer's expression gets its ``before_op`` probe at the consumer's
statement, and no ``after_op`` probe); guardrails screen the values a
region materializes, not collapsed intermediates; the tracer receives
one record per region, attributed to a synthetic ``CodegenRegion`` op
whose work estimate is the sum of its members'; and live-byte
accounting samples at region boundaries, so the measured peak can sit
below the interpreter's planned peak.
"""

from __future__ import annotations

import numpy as np

from .cost_model import WorkEstimate
from .graph import Operation, OpClass
from .memory import K_COMPUTE, K_CONST, K_REGION
from .ops.nn_ops import _im2col
from .rewrite import _is_pure

#: most member steps a single generated kernel may cover (keeps the
#: exec-compiled functions a debuggable size on huge unrolled graphs)
MAX_REGION_STEPS = 512
#: fewest compute steps worth a kernel; below this, interpreter
#: dispatch is already negligible
MIN_REGION_COMPUTE = 2
#: longest inline subexpression; chains past this are cut with a local
MAX_EXPR_CHARS = 120


class RegionOp(Operation):
    """Synthetic op standing in for one generated region.

    Lives in the plan's scratch graph. The tracer attributes the whole
    kernel's wall time to this op; its work estimate is the sum of the
    member ops', so roofline/efficiency analyses stay meaningful.
    """

    type_name = "CodegenRegion"
    op_class = OpClass.CONTROL

    def compute(self, inputs, ctx):  # pragma: no cover - never dispatched
        raise NotImplementedError("regions execute their generated kernel")

    def _output_specs(self):
        return []

    def _estimate_work(self):
        total = WorkEstimate.zero()
        for op in getattr(self, "member_ops", ()):
            total = total + op.work()
        return total


class CompiledRegion:
    """One generated kernel covering a run of consecutive plan steps.

    Duck-types the parts of :class:`CompiledStep` the executor looks at
    (``kind``, ``op``, ``free_slots``) and adds the kernel itself.

    Attributes:
        steps: the member CompiledSteps, in schedule order. These stay
            fully executable — de-optimization just iterates them.
        fn: the generated function, ``fn(V, ctx, H)`` where ``V`` is the
            executor's slot table, ``ctx`` the RunContext, and ``H`` the
            fault injector (or None).
        source: the generated Python source, for ``--dump-kernels``.
        outputs: ``(slot, tensor, member_step)`` for every value the
            region materializes into ``V`` (consumed downstream or
            fetched); the producing member carries the blame links.
        free_slots: slots produced *outside* the region whose last use
            is inside it; the executor drops them after the region runs.
        line_steps: generated source line number -> member CompiledStep,
            the provenance map used to blame kernel failures.
        collapsed: member ops inlined into a consumer's expression.
        deoptimized: once True, the session interprets the member steps
            op-by-op instead of calling ``fn``.
    """

    kind = K_REGION

    __slots__ = ("op", "steps", "fn", "source", "filename", "label",
                 "output_slots", "free_slots", "outputs", "line_steps",
                 "collapsed", "deoptimized", "validated")

    def __init__(self, op, steps, fn, source, filename, label, outputs,
                 free_slots, line_steps, collapsed):
        self.op = op
        self.steps = steps
        self.fn = fn
        self.source = source
        self.filename = filename
        self.label = label
        self.outputs = outputs
        self.output_slots = tuple(slot for slot, _, _ in outputs)
        self.free_slots = free_slots
        self.line_steps = line_steps
        self.collapsed = collapsed
        self.deoptimized = False
        self.validated = False

    def __repr__(self) -> str:
        return (f"<CompiledRegion {self.label} steps={len(self.steps)} "
                f"collapsed={self.collapsed} "
                f"deoptimized={self.deoptimized}>")


def blame_step(region: CompiledRegion, exc: BaseException):
    """The member step a kernel exception is blamed on (or None).

    Walks the traceback to the *deepest* frame inside the region's
    generated file and looks its line up in the provenance map.
    """
    step = None
    tb = exc.__traceback__
    while tb is not None:
        if tb.tb_frame.f_code.co_filename == region.filename:
            step = region.line_steps.get(tb.tb_lineno, step)
        tb = tb.tb_next
    return step


# -- inline expression templates --------------------------------------------
#
# An op may appear here only if its compute() body is *verbatim* the
# produced expression — same numpy calls, same order — so collapsing it
# into a consumer cannot perturb a single bit. Anything else (Sigmoid's
# two-branch masked kernel, reductions, data movement) is invoked
# through its own bound compute inside the kernel instead.


def _fmt(template: str):
    return lambda op, args: template.format(*args)


def _matmul_expr(op, args):
    a = args[0] + (".T" if op.attrs["transpose_a"] else "")
    b = args[1] + (".T" if op.attrs["transpose_b"] else "")
    return f"({a} @ {b})"


def _conv2d_expr(op, args):
    f_h, f_w, in_c, out_c = op.inputs[1].shape
    s_h, s_w = op.attrs["strides"]
    pads = tuple(op.attrs["pads"])
    return (f"(_im2col({args[0]}, {f_h}, {f_w}, {s_h}, {s_w}, {pads!r})"
            f" @ {args[1]}.reshape({f_h * f_w * in_c}, {out_c}))"
            f".reshape({tuple(op.output.shape)!r})")


INLINE_TEMPLATES = {
    "Add": _fmt("({0} + {1})"),
    "Sub": _fmt("({0} - {1})"),
    "Mul": _fmt("({0} * {1})"),
    "Div": _fmt("({0} / {1})"),
    "Pow": _fmt("np.power({0}, {1})"),
    "Maximum": _fmt("np.maximum({0}, {1})"),
    "Minimum": _fmt("np.minimum({0}, {1})"),
    "Neg": _fmt("(-{0})"),
    "Exp": _fmt("np.exp({0})"),
    "Log": _fmt("np.log({0})"),
    "Sqrt": _fmt("np.sqrt({0})"),
    "Square": _fmt("np.square({0})"),
    "Abs": _fmt("np.abs({0})"),
    "Sign": _fmt("np.sign({0})"),
    "Tanh": _fmt("np.tanh({0})"),
    "Relu": _fmt("np.maximum({0}, 0.0)"),
    "ReluGrad": _fmt("({0} * ({1} > 0.0))"),
    "Equal": _fmt("(({0} == {1}).astype(np.float32))"),
    "Greater": _fmt("(({0} > {1}).astype(np.float32))"),
    "GreaterEqual": _fmt("(({0} >= {1}).astype(np.float32))"),
    "Less": _fmt("(({0} < {1}).astype(np.float32))"),
    "LessEqual": _fmt("(({0} <= {1}).astype(np.float32))"),
    "BiasAdd": _fmt("({0} + {1})"),
    "MatMul": _matmul_expr,
    "Conv2D": _conv2d_expr,
}


def _region_eligible(step) -> bool:
    """Can this step live inside a generated kernel?

    Pure compute and plan constants only: placeholders need the feed
    path, and impure ops (state writes, optimizer updates, RNG draws,
    control) must keep their exact interpreter-visible ordering and
    per-op hooks.
    """
    if step.kind == K_CONST:
        return True
    return step.kind == K_COMPUTE and _is_pure(step.op)


def _emit_region(members, pinned, plan_graph, index) -> CompiledRegion:
    """Generate, compile, and wrap one region kernel."""
    produced: dict[int, object] = {}
    member_index: dict[int, int] = {}
    for k, step in enumerate(members):
        member_index[id(step)] = k
        for slot in step.output_slots:
            produced[slot] = step
    freed_inside: set[int] = set()
    refs: dict[int, int] = {}
    for step in members:
        freed_inside.update(step.free_slots)
        for slot in step.input_slots:
            refs[slot] = refs.get(slot, 0) + 1
    internal = {slot for slot in produced
                if slot in freed_inside and slot not in pinned}
    free_slots = tuple(sorted(slot for slot in freed_inside
                              if slot not in produced))

    lines: list[str] = []
    line_steps: dict[int, object] = {}
    namespace: dict[str, object] = {"np": np, "_im2col": _im2col,
                                    "OPS": [step.op for step in members]}
    pending_expr: dict[int, str] = {}
    pending_hooks: dict[int, list[int]] = {}
    names: dict[int, str] = {}
    collapsed = 0
    outputs: list[tuple] = []

    def emit(text: str, step) -> None:
        lines.append("    " + text)
        # +1 for the def line, +1 because linenos are 1-based
        line_steps[len(lines) + 1] = step

    def take(slot: int) -> tuple[str, list[int]]:
        """The expression for a slot plus any pending hook probes."""
        if slot in pending_expr:
            return pending_expr.pop(slot), pending_hooks.pop(slot)
        if slot in names:
            return names[slot], []
        return f"V[{slot}]", []

    for k, step in enumerate(members):
        op = step.op
        if step.kind == K_CONST:
            name = f"C{step.output_slots[0]}"
            namespace[name] = step.const_value
            names[step.output_slots[0]] = name
            if step.output_slots[0] not in internal:
                emit(f"V[{step.output_slots[0]}] = {name}", step)
                outputs.append((step.output_slots[0], op.outputs[0], step))
            continue

        args: list[str] = []
        hooks: list[int] = []
        for slot in step.input_slots:
            expr, chain = take(slot)
            args.append(expr)
            hooks.extend(chain)
        hooks.append(k)
        template = INLINE_TEMPLATES.get(op.type_name)
        single = len(step.output_slots) == 1

        if template is not None and single:
            text = template(op, args)
            slot = step.output_slots[0]
            if (slot in internal and refs.get(slot, 0) == 1
                    and len(text) <= MAX_EXPR_CHARS):
                # Collapse into the consumer's expression; the before_op
                # probes ride along to the consuming statement.
                pending_expr[slot] = text
                pending_hooks[slot] = hooks
                collapsed += 1
                continue
            for h in sorted(hooks):
                emit(f"if H is not None: H.before_op(OPS[{h}])",
                     members[h])
            emit(f"t{slot} = {text}", step)
            emit(f"if H is not None: "
                 f"t{slot} = H.after_op(OPS[{k}], (t{slot},))[0]", step)
            names[slot] = f"t{slot}"
        else:
            for h in sorted(hooks):
                emit(f"if H is not None: H.before_op(OPS[{h}])",
                     members[h])
            namespace[f"K{k}"] = op.compute
            arg_list = ", ".join(args) + ("," if len(args) == 1 else "")
            if single:
                slot = step.output_slots[0]
                emit(f"t{slot} = K{k}(({arg_list}), ctx)[0]", step)
                emit(f"if H is not None: "
                     f"t{slot} = H.after_op(OPS[{k}], (t{slot},))[0]",
                     step)
                names[slot] = f"t{slot}"
            else:
                emit(f"_t = K{k}(({arg_list}), ctx)", step)
                emit(f"if H is not None: _t = H.after_op(OPS[{k}], _t)",
                     step)
                for i, slot in enumerate(step.output_slots):
                    emit(f"t{slot} = _t[{i}]", step)
                    names[slot] = f"t{slot}"
        for i, slot in enumerate(step.output_slots):
            if slot not in internal:
                emit(f"V[{slot}] = {names[slot]}", step)
                outputs.append((slot, op.outputs[i], step))

    label = f"region{index}"
    filename = f"<codegen:{label}>"
    first, last = members[0].op.name, members[-1].op.name
    source = (f"def __region_kernel__(V, ctx, H):\n"
              f"    # {label}: steps {first!r} .. {last!r}\n"
              + "\n".join(lines) + "\n")
    # The comment line shifted every body line down by one.
    line_steps = {lineno + 1: step for lineno, step in line_steps.items()}
    code = compile(source, filename, "exec")
    exec(code, namespace)
    fn = namespace["__region_kernel__"]

    region_op = RegionOp([], name=f"codegen/{label}", graph=plan_graph)
    region_op.member_ops = tuple(
        step.op for step in members if step.kind == K_COMPUTE)
    return CompiledRegion(
        op=region_op, steps=list(members), fn=fn, source=source,
        filename=filename, label=label, outputs=tuple(outputs),
        free_slots=free_slots, line_steps=line_steps, collapsed=collapsed)


def build_program(steps, pinned, plan_graph) -> list:
    """Partition a compiled schedule into a codegen program.

    Returns a mixed list of the original :class:`CompiledStep` objects
    and :class:`CompiledRegion` wrappers covering maximal runs of
    eligible steps. The step list itself is untouched — regions hold
    references, and de-optimization falls back to them.
    """
    program: list = []
    run: list = []
    index = 0

    def flush() -> None:
        nonlocal index
        while run:
            chunk, rest = run[:MAX_REGION_STEPS], run[MAX_REGION_STEPS:]
            compute = sum(1 for step in chunk if step.kind == K_COMPUTE)
            if compute >= MIN_REGION_COMPUTE:
                program.append(
                    _emit_region(chunk, pinned, plan_graph, index))
                index += 1
            else:
                program.extend(chunk)
            run[:] = rest

    for step in steps:
        if _region_eligible(step):
            run.append(step)
        else:
            flush()
            program.append(step)
    flush()
    return program
