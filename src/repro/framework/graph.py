"""The dataflow graph: tensors, operations, and graphs.

This module is the structural core of the framework. Following the design
of the TensorFlow runtime the paper builds on, a model is a coarse-grained
dataflow graph whose nodes are *operations* — the smallest schedulable
unit — and whose edges are *tensors*. Every analysis in the paper
(Sections V-A through V-E) treats operations as the primary abstraction,
so this reproduction does too: each operation carries a type name
(``MatMul``, ``Conv2D``, ``Tile``, ...), an operation class for the
Fig. 3 taxonomy, a shape-inferred set of output tensors, a ``compute``
kernel, a symbolic ``gradient`` rule, and an analytic work estimate used
by the device models.

Graphs are append-only DAGs: an operation's inputs must already exist when
the operation is constructed, so the construction order is always a valid
topological order. The executor exploits this for deterministic scheduling.
"""

from __future__ import annotations

import contextlib
import threading
from enum import Enum
from math import prod
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np

from .cost_model import WorkEstimate
from .errors import GraphError, ShapeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .session import RunContext


class OpClass(Enum):
    """Operation classes used by the paper's Fig. 3 breakdown.

    The first seven members correspond to the figure's groups A-G. The
    remaining members cover structural operations (constants, placeholders,
    variable reads) whose runtime contribution the paper reports as
    negligible (<1-2% framework overhead, Section V-A).
    """

    MATRIX = "Matrix Operations"
    CONVOLUTION = "Convolution"
    ELEMENTWISE = "Elementwise Arithmetic"
    REDUCTION_EXPANSION = "Reduction and Expansion"
    RANDOM_SAMPLING = "Random Sampling"
    OPTIMIZATION = "Optimization"
    DATA_MOVEMENT = "Data Movement"
    STATE = "State"
    CONTROL = "Control"


Shape = tuple[int, ...]


def check_shape(shape: Iterable[int]) -> Shape:
    """Validate and normalize a static shape to a tuple of ints."""
    out = tuple(int(d) for d in shape)
    if any(d < 0 for d in out):
        raise ShapeError(f"shape {out} has a negative dimension")
    return out


class Tensor:
    """A symbolic value produced by an operation.

    Tensors are edges in the dataflow graph. They carry a fully static
    shape and dtype, inferred at graph-construction time. Arithmetic
    operators build new operations in the tensor's graph, so model code
    reads like numpy.
    """

    __slots__ = ("op", "index", "shape", "dtype")

    def __init__(self, op: "Operation", index: int, shape: Iterable[int],
                 dtype: np.dtype):
        self.op = op
        self.index = index
        self.shape = check_shape(shape)
        self.dtype = np.dtype(dtype)

    @property
    def name(self) -> str:
        return f"{self.op.name}:{self.index}"

    @property
    def graph(self) -> "Graph":
        return self.op.graph

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(prod(self.shape, start=1))

    def __repr__(self) -> str:
        return (f"<Tensor {self.name!r} shape={self.shape} "
                f"dtype={self.dtype.name} op={self.op.type_name}>")

    # Arithmetic sugar. Imports are deferred to avoid a cycle with the ops
    # package, which itself imports Tensor.
    def _math(self):
        from .ops import math_ops
        return math_ops

    def __add__(self, other):
        return self._math().add(self, other)

    def __radd__(self, other):
        return self._math().add(other, self)

    def __sub__(self, other):
        return self._math().subtract(self, other)

    def __rsub__(self, other):
        return self._math().subtract(other, self)

    def __mul__(self, other):
        return self._math().multiply(self, other)

    def __rmul__(self, other):
        return self._math().multiply(other, self)

    def __truediv__(self, other):
        return self._math().divide(self, other)

    def __rtruediv__(self, other):
        return self._math().divide(other, self)

    def __pow__(self, other):
        return self._math().power(self, other)

    def __neg__(self):
        return self._math().negative(self)

    def __matmul__(self, other):
        return self._math().matmul(self, other)


# Registry of operation types, used by the profiling taxonomy and tests to
# enumerate the primitive vocabulary of the framework.
OP_TYPE_REGISTRY: dict[str, type] = {}


class Operation:
    """A node in the dataflow graph: the smallest schedulable unit.

    Subclasses define:

    * ``type_name`` — the operation type shown in profiles (``MatMul``...).
    * ``op_class`` — the Fig. 3 taxonomy class.
    * ``_output_specs`` — static shape/dtype inference, run at construction.
    * ``compute`` — the numpy kernel.
    * ``gradient`` — symbolic gradient construction (optional).
    * ``work`` — analytic :class:`WorkEstimate` for the device models.
    """

    type_name: str = "Operation"
    op_class: OpClass = OpClass.CONTROL

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if "type_name" in cls.__dict__:
            OP_TYPE_REGISTRY[cls.type_name] = cls

    def __init__(self, inputs: Sequence[Tensor] = (), attrs: dict | None = None,
                 name: str | None = None, graph: "Graph | None" = None):
        self.graph = graph if graph is not None else get_default_graph()
        self.inputs: tuple[Tensor, ...] = tuple(inputs)
        for tensor in self.inputs:
            if not isinstance(tensor, Tensor):
                raise GraphError(
                    f"op inputs must be Tensors, got {type(tensor).__name__}; "
                    "wrap raw values with ops.constant()")
            if tensor.graph is not self.graph:
                raise GraphError(
                    f"input {tensor.name!r} belongs to a different graph")
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.name = self.graph.unique_name(name or self.type_name)
        specs = self._output_specs()
        self.outputs: tuple[Tensor, ...] = tuple(
            Tensor(self, i, shape, dtype) for i, (shape, dtype) in enumerate(specs))
        self.graph._add(self)
        self._work_cache: WorkEstimate | None = None

    # -- interface for subclasses ------------------------------------------

    def _output_specs(self) -> list[tuple[Shape, np.dtype]]:
        raise NotImplementedError

    def compute(self, inputs: tuple[np.ndarray, ...],
                ctx: "RunContext") -> tuple[np.ndarray, ...]:
        raise NotImplementedError

    def gradient(self, grad_outputs: list["Tensor | None"]) -> list["Tensor | None"]:
        from .errors import DifferentiationError
        raise DifferentiationError(
            f"operation type {self.type_name!r} is not differentiable")

    def work(self) -> WorkEstimate:
        """Analytic work for one execution; memoized since shapes are static."""
        if self._work_cache is None:
            self._work_cache = self._estimate_work()
        return self._work_cache

    def _estimate_work(self) -> WorkEstimate:
        return WorkEstimate.zero()

    # -- conveniences -------------------------------------------------------

    @property
    def output(self) -> Tensor:
        """The sole output tensor; raises if the op has several."""
        if len(self.outputs) != 1:
            raise GraphError(
                f"op {self.name!r} has {len(self.outputs)} outputs; "
                "use .outputs[i]")
        return self.outputs[0]

    def __repr__(self) -> str:
        return f"<Operation {self.name!r} type={self.type_name}>"


class Graph:
    """An append-only dataflow DAG with scoped, unique operation names."""

    def __init__(self):
        self._ops: list[Operation] = []
        self._ops_by_name: dict[str, Operation] = {}
        self._name_counts: dict[str, int] = {}
        self._scope_stack: list[str] = []
        self._consumers: dict[str, list[Operation]] = {}
        self._version = 0

    # -- construction -------------------------------------------------------

    def _add(self, op: Operation) -> None:
        self._ops.append(op)
        self._ops_by_name[op.name] = op
        self._version += 1
        for tensor in op.inputs:
            self._consumers.setdefault(tensor.name, []).append(op)

    def unique_name(self, base: str) -> str:
        scope = "/".join(self._scope_stack)
        full = f"{scope}/{base}" if scope else base
        count = self._name_counts.get(full, 0)
        self._name_counts[full] = count + 1
        return full if count == 0 else f"{full}_{count}"

    @contextlib.contextmanager
    def name_scope(self, name: str):
        """Prefix operation names, e.g. ``with g.name_scope('conv1'): ...``."""
        self._scope_stack.append(name)
        try:
            yield
        finally:
            self._scope_stack.pop()

    # -- inspection ----------------------------------------------------------

    @property
    def operations(self) -> list[Operation]:
        return list(self._ops)

    @property
    def version(self) -> int:
        """Monotone mutation counter; bumped on every added operation.

        Cached execution plans record the version they were compiled
        against, so a plan over a graph that has since gained operations
        is recognized as stale instead of silently reused.
        """
        return self._version

    def __len__(self) -> int:
        return len(self._ops)

    def get_operation(self, name: str) -> Operation:
        try:
            return self._ops_by_name[name]
        except KeyError:
            raise GraphError(f"no operation named {name!r}") from None

    def consumers(self, tensor: Tensor) -> list[Operation]:
        """Operations that consume ``tensor`` as an input."""
        return list(self._consumers.get(tensor.name, []))

    def subgraph(self, fetches: Sequence[Tensor]) -> list[Operation]:
        """Operations needed to compute ``fetches``, in topological order.

        Because the graph is append-only and inputs exist before their
        consumers, filtering the construction order by reachability yields
        a deterministic topological order.
        """
        needed: set[int] = set()
        stack = [t.op for t in fetches]
        while stack:
            op = stack.pop()
            if id(op) in needed:
                continue
            needed.add(id(op))
            stack.extend(t.op for t in op.inputs)
        return [op for op in self._ops if id(op) in needed]

    def as_default(self):
        """Context manager installing this graph as the construction target."""
        return _default_graph_stack.scoped(self)


class _DefaultGraphStack(threading.local):
    """Thread-local stack of default graphs (mirrors TF's design)."""

    def __init__(self):
        self.stack: list[Graph] = [Graph()]

    @property
    def current(self) -> Graph:
        return self.stack[-1]

    @contextlib.contextmanager
    def scoped(self, graph: Graph):
        self.stack.append(graph)
        try:
            yield graph
        finally:
            self.stack.pop()

    def reset(self):
        self.stack = [Graph()]


_default_graph_stack = _DefaultGraphStack()


def get_default_graph() -> Graph:
    """The graph new operations are added to."""
    return _default_graph_stack.current


def reset_default_graph() -> Graph:
    """Replace the default graph with a fresh one and return it."""
    _default_graph_stack.reset()
    return _default_graph_stack.current


@contextlib.contextmanager
def name_scope(name: str):
    """Name-scope on the current default graph."""
    with get_default_graph().name_scope(name):
        yield
