"""Command-line interface to the Fathom reproduction.

Every capability of the standard model interface is reachable from the
shell::

    python -m repro list
    python -m repro run alexnet --config tiny --steps 5
    python -m repro run speech --resume ckpt.npz --max-retries 3
    python -m repro profile speech --device cpu1 --classes
    python -m repro sweep deepq --threads 1 2 4 8
    python -m repro tables
    python -m repro figures
    python -m repro graph memnet --stats
    python -m repro timeline autoenc --output trace.json
    python -m repro compile seq2seq --mode infer --report
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np


#: serving-fault presets for ``repro serve --fault`` (name -> one-line
#: description; the specs are built in :func:`_serve_preset_specs`)
SERVE_FAULT_PRESETS = {
    "crash": "replica 0 crashes on its second batch "
             "(restart + hedged-retry path)",
    "slow": "replica 0 stalls 50 ms per batch, 5 times "
            "(straggler detection)",
    "poison": "replica 0 returns NaN-poisoned outputs, 3 times "
              "(output screening)",
    "storm": "crash + straggler + fleet-wide poison in one run",
}

#: cluster-fault presets for ``repro train --cluster-faults`` (name ->
#: one-line description; the specs are built in
#: :func:`_cluster_preset_specs`)
CLUSTER_FAULT_PRESETS = {
    "crash": "worker 1 dies mid-step at global step 1 "
             "(checkpoint restart + replay)",
    "straggler": "worker 0 runs 0.5 s slow for 3 steps "
                 "(backup-worker / drop-slowest path)",
    "partition": "the 0->1 link drops everything for one step "
                 "(retransmit + degradation path)",
    "storm": "crash + straggler + corrupt gradient + partition "
             "in one run",
    "byzantine": "worker 1 sends 64x-scaled gradients every step and "
                 "worker 2 replays a stale gradient at step 2 "
                 "(attestation -> quarantine -> eviction path; pair "
                 "with --aggregation screened_mean)",
}

#: fleet-fault presets for ``repro fleet --fault`` (name -> one-line
#: description; the specs are built in :func:`_fleet_preset_specs`)
FLEET_FAULT_PRESETS = {
    "outage": "one zone goes dark at t=50 ms for 100 ms; queued work "
              "re-routes to surviving zones",
    "crash": "the two lowest-id active servers crash together at "
             "t=40 ms (correlated failure)",
    "blackhole": "the balancer's favourite link silently eats traffic "
                 "for 150 ms; probes must discover it",
    "badrollout": "the next deploy is poisoned; the canary must "
                  "convict it and roll back",
    "storm": "blackhole + zone outage + correlated crash + a slow "
             "bad rollout, all in one run",
}


def _serve_preset_specs(name: str):
    from repro.framework.faults import ServingFaultSpec
    return {
        "crash": [ServingFaultSpec("replica_crash", replica=0,
                                   batch=1)],
        "slow": [ServingFaultSpec("slow_replica", replica=0,
                                  latency_seconds=0.05,
                                  max_triggers=5)],
        "poison": [ServingFaultSpec("poisoned_batch", replica=0,
                                    max_triggers=3)],
        "storm": [ServingFaultSpec("replica_crash", replica=0,
                                   batch=1),
                  ServingFaultSpec("slow_replica", replica=1,
                                   latency_seconds=0.05,
                                   max_triggers=5),
                  ServingFaultSpec("poisoned_batch", max_triggers=3)],
    }[name]


def _cluster_preset_specs(name: str):
    from repro.framework.faults import ClusterFaultSpec
    return {
        "crash": [ClusterFaultSpec("worker_crash", worker=1, step=1)],
        "straggler": [ClusterFaultSpec("straggler", worker=0, step=1,
                                       delay_seconds=0.5,
                                       max_triggers=3)],
        "partition": [ClusterFaultSpec("partition", link=(0, 1),
                                       step=1, duration_steps=1)],
        "storm": [ClusterFaultSpec("worker_crash", worker=1, step=1),
                  ClusterFaultSpec("straggler", worker=0, step=2,
                                   delay_seconds=0.5, max_triggers=2),
                  ClusterFaultSpec("corrupt_gradient", link=(1, 0),
                                   step=2, max_triggers=1),
                  ClusterFaultSpec("partition", link=(0, 1), step=3,
                                   duration_steps=1)],
        # Both byzantine detectors here are geometry-independent (norm
        # ratio and digest repeat), so the preset convicts on any
        # workload; run >= 4 steps to see the eviction land.
        "byzantine": [ClusterFaultSpec("byzantine_scale", worker=1,
                                       scale_factor=64.0,
                                       max_triggers=None),
                      ClusterFaultSpec("byzantine_stale", worker=2,
                                       step=2, max_triggers=1)],
    }[name]


def _fleet_preset_specs(name: str, zones: tuple[str, ...]):
    from repro.framework.faults import FleetFaultSpec
    second = zones[1] if len(zones) > 1 else zones[0]
    return {
        "outage": [FleetFaultSpec("zone_outage", zone=second,
                                  at_seconds=0.05,
                                  duration_seconds=0.1)],
        "crash": [FleetFaultSpec("correlated_crash", count=2,
                                 at_seconds=0.04)],
        "blackhole": [FleetFaultSpec("lb_blackhole", at_seconds=0.02,
                                     duration_seconds=0.15)],
        "badrollout": [FleetFaultSpec("bad_rollout", at_seconds=0.0,
                                      defect="poison")],
        "storm": [FleetFaultSpec("lb_blackhole", at_seconds=0.02,
                                 duration_seconds=0.15),
                  FleetFaultSpec("zone_outage", zone=second,
                                 at_seconds=0.05,
                                 duration_seconds=0.1),
                  FleetFaultSpec("correlated_crash", count=2,
                                 at_seconds=0.12),
                  FleetFaultSpec("bad_rollout", at_seconds=0.0,
                                 defect="slow")],
    }[name]


def _print_presets(title: str, presets: dict[str, str]) -> int:
    print(f"{title}:")
    for name, description in presets.items():
        print(f"  {name:<12s} {description}")
    return 0


def _check_preset(name: str, presets: dict[str, str],
                  command: str) -> bool:
    """Friendly validation: list what exists instead of a bare error."""
    if name == "none" or name in presets:
        return True
    print(f"error: unknown fault preset {name!r} for 'repro "
          f"{command}'. Available presets:", file=sys.stderr)
    for known, description in presets.items():
        print(f"  {known:<12s} {description}", file=sys.stderr)
    return False


def _parse_tenants(text: str):
    """Parse ``name[:max_outstanding[:deadline_ms]],...`` tenant specs."""
    from repro.serving import TenantSpec
    tenants = []
    for chunk in text.split(","):
        parts = chunk.strip().split(":")
        if not parts[0]:
            raise argparse.ArgumentTypeError(
                f"empty tenant name in {text!r}")
        max_outstanding = int(parts[1]) if len(parts) > 1 and parts[1] \
            else 64
        deadline_ms = float(parts[2]) if len(parts) > 2 and parts[2] \
            else None
        tenants.append(TenantSpec(parts[0],
                                  max_outstanding=max_outstanding,
                                  deadline_ms=deadline_ms))
    return tuple(tenants)


def _parse_device(text: str):
    from repro.framework.device_model import cpu, gpu
    if text == "measured":
        return None
    if text == "gpu":
        return gpu()
    if text.startswith("cpu"):
        return cpu(int(text[3:] or "1"))
    raise argparse.ArgumentTypeError(
        f"device must be 'measured', 'gpu', or 'cpuN', got {text!r}")


def cmd_list(args) -> int:
    from repro.workloads import WORKLOADS
    print(f"{'name':<10s} {'year':<5s} {'style':<22s} {'layers':<7s} "
          f"{'task':<14s} dataset")
    for name, cls in WORKLOADS.items():
        meta = cls.metadata
        print(f"{name:<10s} {meta.year:<5d} {meta.neuronal_style:<22s} "
              f"{meta.layers:<7d} {meta.learning_task:<14s} {meta.dataset}")
    return 0


def _build(args):
    from repro.workloads import create
    model = create(args.workload, config=args.config, seed=args.seed,
                   backend=getattr(args, "backend", None))
    print(f"{model!r}", file=sys.stderr)
    return model


def _probe_writable_dir(directory: str, flag: str) -> bool:
    """Fail fast on an unusable checkpoint location, before step 0.

    Creates the directory if needed and proves writability with a probe
    file, so a typo'd or read-only path costs one friendly line instead
    of an exception mid-training.
    """
    import tempfile
    try:
        os.makedirs(directory or ".", exist_ok=True)
        fd, probe = tempfile.mkstemp(dir=directory or ".",
                                     prefix=".repro-probe-")
        os.close(fd)
        os.unlink(probe)
    except OSError as exc:
        print(f"error: {flag} path {directory!r} is not writable: "
              f"{exc.strerror or exc}", file=sys.stderr)
        return False
    return True


def cmd_run(args) -> int:
    checkpoint_replicas = getattr(args, "checkpoint_replicas", 1)
    if args.checkpoint is not None:
        # A replicated store roots a directory at the path; a plain
        # checkpoint writes a file into its parent directory.
        target = (args.checkpoint if checkpoint_replicas > 1
                  else os.path.dirname(os.fspath(args.checkpoint)))
        if not _probe_writable_dir(target, "--checkpoint"):
            return 2
    model = _build(args)
    if getattr(args, "safe_mode", False):
        # Start at the lowest tier: op-at-a-time exception capture with
        # forced zero-and-record numeric screening.
        model.session.safe_mode = True
    if args.mode == "train":
        healing = getattr(args, "healing", False)
        resilient = (args.resume is not None or args.max_retries is not None
                     or args.checkpoint is not None or healing)
        if resilient:
            from repro.framework.resilience import (ResilienceConfig,
                                                    ResilientRunner)
            checkpoint_store = None
            checkpoint_path = args.checkpoint
            if args.checkpoint is not None and checkpoint_replicas > 1:
                from repro.storage import open_local_store
                checkpoint_store = open_local_store(
                    args.checkpoint, replicas=checkpoint_replicas,
                    scrub_interval=getattr(args, "scrub_interval", None))
                checkpoint_path = None
            config = ResilienceConfig(
                max_retries=(args.max_retries
                             if args.max_retries is not None else 2),
                backoff_base=0.05,
                resume_from=args.resume,
                checkpoint_path=checkpoint_path,
                checkpoint_store=checkpoint_store,
                checkpoint_every=(args.checkpoint_every
                                  or (10 if args.checkpoint else 0)),
                healing=healing or None)
            runner = ResilientRunner(model, config=config)
            losses = runner.run(args.steps)
            for event in runner.events:
                print(f"[{event.kind}] step {event.step}: {event.detail}",
                      file=sys.stderr)
            for event in runner.degradations:
                where = f" at {event.op_name}" if event.op_name else ""
                print(f"[healing:{event.kind}] step {event.step}{where}: "
                      f"{event.detail}", file=sys.stderr)
            if healing:
                print(f"final execution tier: "
                      f"{model.session.execution_tier}", file=sys.stderr)
        else:
            losses = model.run_training(steps=args.steps)
        for step, loss in enumerate(losses, start=1):
            print(f"step {step:3d}  loss {loss:.6f}")
    else:
        if args.resume is not None:
            from repro.framework import checkpoint
            checkpoint.restore(model.session, args.resume)
        output = model.run_inference(steps=args.steps)
        print(f"inference output shape {output.shape}, "
              f"mean {float(np.mean(output)):.6f}")
    return 0


def cmd_train(args) -> int:
    from repro.distributed import (ClusterConfig, ClusterRuntime,
                                   single_worker_reference)
    from repro.framework.faults import ClusterFaultPlan
    from repro.profiling.tracer import Tracer
    from repro.workloads import create
    if not _check_preset(args.cluster_faults, CLUSTER_FAULT_PRESETS,
                         "train"):
        return 2
    if args.checkpoint_dir is not None \
            and not _probe_writable_dir(os.fspath(args.checkpoint_dir),
                                        "--checkpoint-dir"):
        return 2
    model = _build(args)
    tracer = Tracer()
    try:
        config = ClusterConfig(
            workers=args.workers, strategy=args.strategy,
            backup_workers=args.backup_workers, staleness=args.staleness,
            seed=args.seed, aggregation=args.aggregation, trim=args.trim,
            checkpoint_every=(args.checkpoint_every
                              or (10 if args.checkpoint_dir else 0)),
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_replicas=args.checkpoint_replicas,
            scrub_interval=args.scrub_interval)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    faults = None
    if args.cluster_faults != "none":
        faults = ClusterFaultPlan(
            _cluster_preset_specs(args.cluster_faults), seed=args.seed)
        print(f"armed {args.cluster_faults!r} cluster-fault plan",
              file=sys.stderr)
    runtime = ClusterRuntime(model, config=config, faults=faults,
                             tracer=tracer)
    result = runtime.run(args.steps)
    for step, loss in enumerate(result.losses, start=1):
        print(f"step {step:3d}  loss {loss:.6f}")
    for event in result.events:
        where = f" worker {event.worker}" if event.worker is not None else ""
        where += f" link {event.link}" if event.link is not None else ""
        print(f"[{event.kind}] step {event.step}{where}: {event.detail}",
              file=sys.stderr)
    print(f"{result.workers} workers ({config.strategy}), "
          f"{len(result.events)} cluster events, virtual elapsed "
          f"{result.elapsed_seconds:.4f}s", file=sys.stderr)
    if args.verify_identity:
        reference = create(args.workload, config=args.config,
                           seed=args.seed)
        ref_losses, _worker = single_worker_reference(
            reference, args.steps, args.workers, seed=args.seed)
        identical = ref_losses == result.losses
        print(f"single-worker bit-identity: "
              f"{'PASS' if identical else 'FAIL'}", file=sys.stderr)
        if not identical:
            return 1
    if args.report_json:
        import json as json_lib
        with open(args.report_json, "w") as handle:
            json_lib.dump(result.to_json(), handle, indent=2)
        print(f"wrote {args.report_json}", file=sys.stderr)
    if args.trace:
        from repro.profiling.serialize import save_trace
        count = save_trace(tracer, args.trace,
                           metadata={"workload": args.workload,
                                     "config": args.config,
                                     "mode": "distributed-train",
                                     "workers": args.workers,
                                     "strategy": args.strategy,
                                     "seed": args.seed})
        print(f"wrote {args.trace}: {count} op records, "
              f"{len(tracer.cluster_events())} cluster events",
              file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    from repro.framework.faults import ServingFaultPlan
    from repro.profiling.tracer import Tracer
    from repro.serving import (LoadConfig, LoadGenerator, ServingConfig,
                               VirtualClock)
    if args.list_presets:
        return _print_presets("serving-fault presets (repro serve "
                              "--fault NAME)", SERVE_FAULT_PRESETS)
    if args.workload is None:
        print("error: a workload is required (see 'repro list'), or "
              "use --list-presets", file=sys.stderr)
        return 2
    if not _check_preset(args.fault, SERVE_FAULT_PRESETS, "serve"):
        return 2
    model = _build(args)
    tracer = Tracer()
    clock = VirtualClock() if args.virtual_clock else None
    config = ServingConfig(
        replicas=args.replicas, max_batch=args.max_batch,
        queue_limit=args.queue_limit,
        default_deadline_ms=args.deadline_ms,
        max_hedges=args.max_hedges, slow_batch_ms=args.slow_batch_ms,
        seed=args.seed)
    server = model.serve(config=config, tracer=tracer, clock=clock)
    injector = None
    if args.fault != "none":
        injector = server.install_faults(
            ServingFaultPlan(_serve_preset_specs(args.fault),
                             seed=args.seed))
        print(f"armed {args.fault!r} serving-fault plan", file=sys.stderr)
    generator = LoadGenerator(server, LoadConfig(
        requests=args.requests, qps=args.qps, seed=args.seed))
    report = generator.run()
    print(report.render())
    if injector is not None:
        print(f"injected {injector.num_injected} serving faults",
              file=sys.stderr)
    if args.report_json:
        report.save(args.report_json)
        print(f"wrote {args.report_json}", file=sys.stderr)
    if args.trace:
        from repro.profiling.serialize import save_trace
        count = save_trace(tracer, args.trace,
                           metadata={"workload": args.workload,
                                     "config": args.config,
                                     "mode": "serve", "seed": args.seed})
        print(f"wrote {args.trace}: {count} op records, "
              f"{len(tracer.serving_events())} serving events",
              file=sys.stderr)
    return 0


def cmd_fleet(args) -> int:
    from repro.framework.faults import FleetFaultPlan
    from repro.profiling.tracer import Tracer
    from repro.serving import (AutoscaleConfig, FleetConfig, LoadConfig,
                               LoadGenerator, ServingConfig,
                               ServingFleet, VirtualClock)
    if args.list_presets:
        return _print_presets("fleet-fault presets (repro fleet "
                              "--fault NAME)", FLEET_FAULT_PRESETS)
    if args.workload is None:
        print("error: a workload is required (see 'repro list'), or "
              "use --list-presets", file=sys.stderr)
        return 2
    if not _check_preset(args.fault, FLEET_FAULT_PRESETS, "fleet"):
        return 2
    model = _build(args)
    tracer = Tracer()
    clock = VirtualClock() if args.virtual_clock else None
    zones = tuple(f"z{index}" for index in range(args.zones))
    rollout_at = args.rollout_at
    if rollout_at is None and args.fault in ("badrollout", "storm"):
        # The bad_rollout fault only bites when a deploy happens; the
        # presets that arm one also schedule one.
        rollout_at = 0.08
    config = FleetConfig(
        zones=zones, servers_per_zone=args.servers_per_zone,
        server=ServingConfig(
            replicas=args.replicas, queue_limit=args.queue_limit,
            default_deadline_ms=args.deadline_ms,
            max_hedges=args.max_hedges, seed=args.seed),
        tenants=_parse_tenants(args.tenants),
        autoscale=AutoscaleConfig(min_servers=args.min_servers,
                                  max_servers=args.max_servers),
        rollout_at_seconds=rollout_at,
        rollout_version=args.rollout_version,
        seed=args.seed)
    fleet = ServingFleet(model, config, tracer=tracer, clock=clock)
    injector = None
    if args.fault != "none":
        injector = fleet.install_faults(FleetFaultPlan(
            _fleet_preset_specs(args.fault, zones), seed=args.seed))
        print(f"armed {args.fault!r} fleet-fault plan", file=sys.stderr)
    generator = LoadGenerator(fleet, LoadConfig(
        requests=args.requests, qps=args.qps, seed=args.seed))
    report = generator.run()
    print(report.render())
    if injector is not None:
        print(f"injected {injector.num_injected} fleet faults: "
              f"{injector.signature()}", file=sys.stderr)
    if args.report_json:
        report.save(args.report_json)
        print(f"wrote {args.report_json}", file=sys.stderr)
    if args.trace:
        from repro.profiling.serialize import save_trace
        count = save_trace(tracer, args.trace,
                           metadata={"workload": args.workload,
                                     "config": args.config,
                                     "mode": "fleet",
                                     "zones": list(zones),
                                     "seed": args.seed})
        print(f"wrote {args.trace}: {count} op records, "
              f"{len(tracer.fleet_events())} fleet events",
              file=sys.stderr)
    return 0


def _campaign_preset_plans(harness):
    """The shipped CLI fault presets, as plans for ``harness``.

    Lets ``repro chaos run --include-presets`` hold every preset a user
    can type at the CLI to the same oracle bar as the searched space.
    The training harness has no shipped presets (op-level faults are
    composed, not preset) so it contributes none.
    """
    if harness.name == "cluster":
        specs = [_cluster_preset_specs(name)
                 for name in CLUSTER_FAULT_PRESETS]
    elif harness.name == "serving":
        specs = [_serve_preset_specs(name)
                 for name in SERVE_FAULT_PRESETS]
    elif harness.name == "fleet":
        specs = [_fleet_preset_specs(name, harness.zones)
                 for name in FLEET_FAULT_PRESETS]
    else:
        specs = []
    return tuple(harness.make_plan(s) for s in specs)


def cmd_chaos_run(args) -> int:
    from repro.chaos import (HARNESSES, ORACLES, CampaignSpec,
                             run_campaign, write_reproducer)
    from repro.profiling.tracer import Tracer
    if args.list_oracles:
        print("invariant oracles (repro chaos run --oracle NAME):")
        for name, oracle in ORACLES.items():
            harnesses = ",".join(oracle.harnesses)
            print(f"  {name:<20s} [{harnesses}] {oracle.summary}")
        return 0
    if args.list_harnesses:
        print("campaign harnesses (repro chaos run --harness NAME):")
        for name, cls in HARNESSES.items():
            print(f"  {name:<10s} {cls.__doc__.splitlines()[0]}")
        return 0
    spec = CampaignSpec(
        harness=args.harness, workload=args.workload,
        config=args.config, steps=args.steps, requests=args.requests,
        budget=args.budget, max_faults=args.max_faults,
        seeds=tuple(int(s) for s in args.seeds.split(",")),
        oracles=tuple(args.oracle) if args.oracle else None,
        sample_seed=args.sample_seed, replicas=args.replicas)
    harness = spec.build_harness()
    extra_plans = (_campaign_preset_plans(harness)
                   if args.include_presets else ())
    tracer = Tracer()
    result = run_campaign(
        spec, harness=harness, extra_plans=extra_plans, tracer=tracer,
        minimize=not args.no_minimize,
        log=lambda msg: print(msg, file=sys.stderr))
    print(f"campaign: {result.executed} schedule(s) executed "
          f"(space {result.schedule_space}), {result.verdicts} "
          f"verdicts from {len(result.oracle_names)} oracle(s) "
          f"[{', '.join(result.oracle_names)}]")
    for violation in result.violations:
        plan = violation.minimized or violation.plan
        kinds = ",".join(s.kind for s in plan.specs)
        print(f"violation: {violation.oracle} on schedule "
              f"{violation.schedule_index} -> minimal reproducer "
              f"{len(plan.specs)} fault(s) [{kinds}]: "
              f"{violation.detail}")
    if result.violations and args.reproducer_dir:
        os.makedirs(args.reproducer_dir, exist_ok=True)
        for index, violation in enumerate(result.violations):
            path = os.path.join(
                args.reproducer_dir,
                f"repro-{harness.name}-{violation.oracle}-"
                f"{violation.schedule_index}.json")
            write_reproducer(path, harness, violation)
            print(f"wrote {path} (replay: python -m repro chaos "
                  f"replay {path})", file=sys.stderr)
    if args.report_json:
        with open(args.report_json, "w") as handle:
            json.dump(result.to_json(), handle, indent=2)
        print(f"wrote {args.report_json}", file=sys.stderr)
    if args.trace:
        from repro.profiling.serialize import save_trace
        save_trace(tracer, args.trace,
                   metadata={"mode": "chaos-campaign",
                             "harness": harness.name,
                             "workload": args.workload})
        print(f"wrote {args.trace}: "
              f"{len(tracer.campaign_events())} campaign events",
              file=sys.stderr)
    if result.ok:
        print("all oracles held on every schedule")
        return 0
    return 1


def cmd_chaos_minimize(args) -> int:
    from repro.chaos import (Violation, load_reproducer,
                             minimize_violation, write_reproducer)
    from repro.chaos.campaign import build_harness
    from repro.framework.faults import plan_from_json
    blob = load_reproducer(args.reproducer)
    kw = {}
    if blob.get("replicas") is not None:
        kw["replicas"] = blob["replicas"]
    harness = build_harness(
        blob["harness"], workload=blob["workload"],
        config=blob["config"], seed=blob["seed"], steps=blob["steps"],
        requests=blob["requests"], **kw)
    plan = plan_from_json(blob["plan"])
    violation = Violation(schedule_index=0, plan=plan,
                          oracle=blob["oracle"], detail=blob["detail"])
    try:
        minimize_violation(harness, violation)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    stats = violation.minimize_stats
    out = args.output or args.reproducer
    write_reproducer(out, harness, violation)
    print(f"minimized {len(plan.specs)} -> {stats.size} fault(s) in "
          f"{stats.tests_run} runs ({stats.cache_hits} cached); "
          f"wrote {out}")
    return 0


def cmd_chaos_replay(args) -> int:
    from repro.chaos import replay_reproducer
    from repro.profiling.tracer import Tracer
    tracer = Tracer() if args.trace else None
    verdicts, blob = replay_reproducer(args.reproducer, tracer=tracer)
    kinds = ",".join(s["kind"] for s in blob["plan"]["specs"])
    print(f"replayed {len(blob['plan']['specs'])} fault(s) [{kinds}] "
          f"on {blob['harness']}/{blob['workload']}")
    failed = False
    for verdict in verdicts:
        status = "ok" if verdict.ok else "VIOLATED"
        detail = f": {verdict.detail}" if verdict.detail else ""
        print(f"  {verdict.oracle:<20s} {status}{detail}")
        failed = failed or not verdict.ok
    if args.trace:
        from repro.profiling.serialize import save_trace
        save_trace(tracer, args.trace,
                   metadata={"mode": "chaos-replay",
                             "harness": blob["harness"],
                             "workload": blob["workload"]})
        print(f"wrote {args.trace}", file=sys.stderr)
    return 1 if failed else 0


def cmd_profile(args) -> int:
    model = _build(args)
    profile = model.profile(mode=args.mode.replace("train", "training")
                            .replace("infer", "inference"),
                            steps=args.steps, device=args.device)
    print(f"seconds per step: {profile.seconds_per_step():.6f} "
          f"({'modeled' if args.device else 'measured'})")
    if args.classes:
        for letter, fraction in profile.class_breakdown().items():
            from repro.profiling.taxonomy import GROUP_NAMES
            print(f"  {letter} {GROUP_NAMES[letter]:<24s} {fraction:7.2%}")
    else:
        for op_type, fraction in profile.top_types(args.top):
            print(f"  {op_type:<28s} {fraction:7.2%}")
    print(f"{profile.types_for_coverage(0.9)} op types cover 90% of time")
    return 0


def cmd_sweep(args) -> int:
    from repro.analysis.parallelism import sweep_threads
    model = _build(args)
    sweep = sweep_threads(model, steps=args.steps,
                          thread_counts=tuple(args.threads))
    print(sweep.render(top_n=args.top))
    print(f"overall speedup at {args.threads[-1]} threads: "
          f"{sweep.speedup(args.threads[-1]):.2f}x")
    return 0


def cmd_evaluate(args) -> int:
    model = _build(args)
    if args.train_steps:
        print(f"training for {args.train_steps} steps...", file=sys.stderr)
        model.run_training(steps=args.train_steps)
    metrics = model.evaluate(batches=args.batches)
    for name, value in metrics.items():
        print(f"{name:<24s} {value:.4f}")
    return 0


def cmd_placement(args) -> int:
    from repro.analysis.placement_study import (latency_sweep,
                                                render_placement_table,
                                                study_workload)
    model = _build(args)
    print(render_placement_table([study_workload(model)]))
    sweep = latency_sweep(model)
    print("\nfall-back penalty vs boundary-sync cost:")
    for latency, point in sweep.items():
        print(f"  {latency * 1e6:5.0f}us  {point.fallback_penalty:5.2f}x "
              f"vs gpu, {point.fallback_vs_cpu:5.2f}x vs cpu")
    return 0


def cmd_compare(args) -> int:
    from repro.profiling.comparison import compare_profiles
    base = _build(args)
    base_profile = base.profile(mode="training", steps=args.steps,
                                device=args.device)
    from repro.workloads import create
    other = create(args.other, config=args.config, seed=args.seed)
    other_profile = other.profile(mode="training", steps=args.steps,
                                  device=args.device)
    print(compare_profiles(base_profile, other_profile).render())
    return 0


def cmd_whatif(args) -> int:
    from repro.analysis.accelerator import PRESETS, render_what_if, what_if
    model = _build(args)
    classes = PRESETS[args.preset]
    result = what_if(model, classes, factors=tuple(args.factors),
                     steps=args.steps)
    print(render_what_if([result], args.preset))
    return 0


def cmd_compile(args) -> int:
    model = _build(args)
    mode = args.mode.replace("train", "training").replace("infer",
                                                          "inference")
    plan = model.compile_plan(mode=mode)
    if args.report:
        print(plan.report())
    else:
        saved = plan.stats.ops_in - plan.num_steps
        print(f"{args.workload} {mode}: {plan.stats.ops_in} ops -> "
              f"{plan.num_steps} steps ({saved} eliminated, "
              f"{plan.fused_cells} LSTM cells fused); planned peak "
              f"{plan.planned_peak_bytes / 1e6:.2f} MB; arena hit rate "
              f"{plan.memory.hit_rate:.2f}; compiled in "
              f"{plan.compile_seconds * 1e3:.2f} ms")
    if getattr(args, "dump_kernels", False):
        kernels = plan.kernel_sources()
        if not kernels:
            print("no generated kernels "
                  "(compiled with the interpreter backend)")
        for label, source in kernels:
            print(f"# --- {label} " + "-" * max(0, 56 - len(label)))
            print(source)
    return 0


def cmd_memory(args) -> int:
    from repro.framework.graph_export import static_peak_bytes
    model = _build(args)
    train_peak = static_peak_bytes(model.graph,
                                   fetches=[model.loss, model.train_step],
                                   options=model.session.options)
    infer_peak = static_peak_bytes(model.graph,
                                   fetches=[model.inference_output],
                                   options=model.session.options)
    params = model.num_parameters() * 4
    print(f"parameters:          {params / 1e6:8.2f} MB")
    print(f"training step peak:  {train_peak / 1e6:8.2f} MB "
          "(live intermediates)")
    print(f"inference step peak: {infer_peak / 1e6:8.2f} MB")
    return 0


def cmd_trace(args) -> int:
    from repro.profiling.serialize import save_trace
    from repro.profiling.tracer import Tracer
    model = _build(args)
    tracer = Tracer()
    if args.mode == "train":
        model.run_training(steps=args.steps, tracer=tracer)
    else:
        model.run_inference(steps=args.steps, tracer=tracer)
    count = save_trace(tracer, args.output,
                       metadata={"workload": args.workload,
                                 "config": args.config,
                                 "mode": args.mode, "seed": args.seed})
    print(f"wrote {args.output}: {count} op records over "
          f"{tracer.num_steps} steps")
    return 0


def cmd_census(args) -> int:
    from repro.analysis.census import census, render_census
    model = _build(args)
    print(render_census([census(model)]))
    return 0


def cmd_roofline(args) -> int:
    from repro.analysis.roofline import render_roofline, roofline
    model = _build(args)
    device = args.device if args.device is not None else None
    if device is None:
        from repro.framework.device_model import cpu
        device = cpu(1)
    print(render_roofline([roofline(model, steps=args.steps,
                                    device=device)]))
    return 0


def cmd_phases(args) -> int:
    from repro.analysis.phases import render_phase_table, split_phases
    model = _build(args)
    print(render_phase_table([split_phases(model, steps=args.steps)]))
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import full_report
    text = full_report(config=args.config, steps=args.steps)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_tables(args) -> int:
    from repro.analysis.survey import render_table1
    from repro.analysis.workload_table import render_table2
    print(render_table1())
    print()
    print(render_table2())
    return 0


def cmd_figures(args) -> int:
    from repro.analysis import suite
    from repro.analysis.dominance import (dominance_curves,
                                          render_dominance_table)
    from repro.framework.device_model import cpu
    profiles = suite.profile_suite(config=args.config, steps=args.steps,
                                   device=cpu(1))
    print(render_dominance_table(dominance_curves(profiles)))
    print()
    print(suite.suite_breakdown(config=args.config, steps=args.steps,
                                device=cpu(1)).render())
    return 0


def cmd_graph(args) -> int:
    from repro.framework.graph_export import graph_stats, to_dot
    model = _build(args)
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(to_dot(model.graph, max_ops=args.max_ops))
        print(f"wrote {args.dot}")
    stats = graph_stats(model.graph)
    print(f"operations:          {stats.num_ops}")
    print(f"edges:               {stats.num_edges}")
    print(f"critical path:       {stats.critical_path_length}")
    print(f"max width:           {stats.max_width}")
    print(f"avg parallelism:     {stats.average_parallelism:.2f}")
    print(f"total FLOPs/step:    {stats.total_work.flops:.3g}")
    top = sorted(stats.op_type_histogram.items(), key=lambda kv: -kv[1])
    for op_type, count in top[:args.top]:
        print(f"  {op_type:<28s} x{count}")
    return 0


def cmd_timeline(args) -> int:
    from repro.profiling.timeline import to_chrome_trace
    from repro.profiling.tracer import Tracer
    model = _build(args)
    tracer = Tracer()
    if args.mode == "train":
        model.run_training(steps=args.steps, tracer=tracer)
    else:
        model.run_inference(steps=args.steps, tracer=tracer)
    with open(args.output, "w") as handle:
        handle.write(to_chrome_trace(tracer, process_name=args.workload))
    print(f"wrote {args.output} ({len(tracer.records)} events, "
          f"{tracer.num_steps} steps); open in chrome://tracing")
    return 0


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", help="workload name (see 'list')")
    parser.add_argument("--config", default="default",
                        choices=["tiny", "default", "paper"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--steps", type=int, default=2)
    parser.add_argument("--backend", default=None,
                        choices=["interp", "codegen"],
                        help="execution backend: the plan interpreter "
                             "(default) or generated region kernels")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Fathom reference workloads (reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the eight workloads") \
        .set_defaults(handler=cmd_list)

    run_parser = commands.add_parser("run", help="train or infer")
    _add_model_args(run_parser)
    run_parser.add_argument("--mode", default="train",
                            choices=["train", "infer"])
    run_parser.add_argument("--resume", metavar="CKPT",
                            help="restore variables from this checkpoint "
                                 "before running (or 'latest' to restore "
                                 "the newest intact archive when "
                                 "--checkpoint-replicas > 1)")
    run_parser.add_argument("--max-retries", type=int, default=None,
                            help="retry failed training steps this many "
                                 "times (enables the resilient runner)")
    run_parser.add_argument("--checkpoint", metavar="PATH",
                            help="write periodic atomic checkpoints here "
                                 "while training")
    run_parser.add_argument("--checkpoint-every", type=int, default=0,
                            metavar="N",
                            help="checkpoint cadence in steps "
                                 "(default 10 when --checkpoint is set)")
    run_parser.add_argument("--checkpoint-replicas", type=int, default=1,
                            metavar="N",
                            help="quorum-write each checkpoint to N "
                                 "replica stores rooted at --checkpoint "
                                 "(digest-verified, self-repairing; "
                                 "default 1 = a single plain file)")
    run_parser.add_argument("--scrub-interval", type=float, default=None,
                            metavar="SECONDS",
                            help="background scrub cadence for the "
                                 "replicated checkpoint archive "
                                 "(detects and heals bit rot)")
    run_parser.add_argument("--healing", action="store_true",
                            help="self-heal failed steps: blame-localize, "
                                 "de-optimize to safer plan tiers, "
                                 "quarantine offending compiler passes "
                                 "(enables the resilient runner)")
    run_parser.add_argument("--safe-mode", action="store_true",
                            help="start in op-at-a-time safe mode "
                                 "(per-op exception capture + numeric "
                                 "screening; the slowest, safest tier)")
    run_parser.set_defaults(handler=cmd_run)

    train_parser = commands.add_parser(
        "train", help="fault-tolerant data-parallel training")
    _add_model_args(train_parser)
    train_parser.add_argument("--workers", type=int, default=2,
                              help="data-parallel worker count")
    train_parser.add_argument("--strategy", default="ps",
                              choices=["ps", "allreduce"],
                              help="gradient exchange: parameter server "
                                   "or ring all-reduce")
    train_parser.add_argument("--backup-workers", type=int, default=0,
                              metavar="K",
                              help="extra shard mirrors (drop-slowest "
                                   "straggler tolerance)")
    train_parser.add_argument("--staleness", type=int, default=0,
                              metavar="S",
                              help="bounded-staleness async PS: workers "
                                   "pull params after lagging S versions "
                                   "(0 = synchronous)")
    train_parser.add_argument("--aggregation", default="mean",
                              choices=["mean", "trimmed_mean",
                                       "coordinate_median",
                                       "screened_mean"],
                              help="gradient aggregation; screened_mean "
                                   "turns on gradient attestation with "
                                   "recompute audits and "
                                   "reputation-driven eviction")
    train_parser.add_argument("--trim", type=int, default=None,
                              metavar="T",
                              help="per-coordinate trim count for "
                                   "--aggregation trimmed_mean "
                                   "(default (K-1)//2)")
    train_parser.add_argument("--cluster-faults", default="none",
                              metavar="PRESET",
                              help="arm a deterministic cluster-fault "
                                   "preset (crash, straggler, partition, "
                                   "storm, byzantine)")
    train_parser.add_argument("--checkpoint-dir", metavar="DIR",
                              help="persist coordinated checkpoints here")
    train_parser.add_argument("--checkpoint-every", type=int, default=0,
                              metavar="N",
                              help="coordinated checkpoint cadence "
                                   "(default 10 when --checkpoint-dir "
                                   "is set)")
    train_parser.add_argument("--checkpoint-replicas", type=int,
                              default=1, metavar="N",
                              help="quorum-write each coordinated "
                                   "checkpoint to N replica stores under "
                                   "--checkpoint-dir (default 1 = a "
                                   "single plain archive)")
    train_parser.add_argument("--scrub-interval", type=float,
                              default=None, metavar="SECONDS",
                              help="background scrub cadence for the "
                                   "replicated checkpoint archive")
    train_parser.add_argument("--verify-identity", action="store_true",
                              help="also run the single-worker reference "
                                   "and assert bit-identical losses")
    train_parser.add_argument("--report-json", metavar="PATH",
                              help="write the cluster run result as JSON")
    train_parser.add_argument("--trace", metavar="PATH",
                              help="save the training trace (op records + "
                                   "cluster events) as JSONL")
    train_parser.set_defaults(handler=cmd_train)

    serve_parser = commands.add_parser(
        "serve", help="robust inference serving under synthetic load")
    serve_parser.add_argument("workload", nargs="?", default=None,
                              help="workload name (see 'list')")
    serve_parser.add_argument("--config", default="default",
                              choices=["tiny", "default", "paper"])
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument("--requests", type=int, default=64,
                              help="total requests to generate")
    serve_parser.add_argument("--qps", type=float, default=0.0,
                              help="open-loop arrival rate "
                                   "(0 = closed loop)")
    serve_parser.add_argument("--deadline-ms", type=float, default=100.0,
                              help="per-request deadline (0 disables)")
    serve_parser.add_argument("--replicas", type=int, default=2)
    serve_parser.add_argument("--max-batch", type=int, default=None,
                              help="coalesce at most this many requests "
                                   "(default: the plan batch size)")
    serve_parser.add_argument("--max-hedges", type=int, default=1,
                              help="retries for requests on failed "
                                   "batches")
    serve_parser.add_argument("--queue-limit", type=int, default=64)
    serve_parser.add_argument("--slow-batch-ms", type=float, default=None,
                              help="breaker-count batches slower than "
                                   "this (straggler detection)")
    serve_parser.add_argument("--fault", default="none",
                              metavar="PRESET",
                              help="arm a deterministic serving-fault "
                                   "preset (see --list-presets)")
    serve_parser.add_argument("--list-presets", action="store_true",
                              help="print the fault presets and exit")
    serve_parser.add_argument("--virtual-clock", action="store_true",
                              help="drive the server on a virtual clock "
                                   "(deterministic latencies; injected "
                                   "stalls cost no wall time)")
    serve_parser.add_argument("--report-json", metavar="PATH",
                              help="write the ServingReport as JSON")
    serve_parser.add_argument("--trace", metavar="PATH",
                              help="save the serving trace (op records + "
                                   "SLO/healing events) as JSONL")
    serve_parser.set_defaults(handler=cmd_serve)

    fleet_parser = commands.add_parser(
        "fleet", help="fault-domain-aware serving fleet under chaos")
    fleet_parser.add_argument("workload", nargs="?", default=None,
                              help="workload name (see 'list')")
    fleet_parser.add_argument("--config", default="default",
                              choices=["tiny", "default", "paper"])
    fleet_parser.add_argument("--seed", type=int, default=0)
    fleet_parser.add_argument("--requests", type=int, default=96,
                              help="total requests to generate")
    fleet_parser.add_argument("--qps", type=float, default=300.0,
                              help="open-loop arrival rate "
                                   "(0 = closed loop)")
    fleet_parser.add_argument("--deadline-ms", type=float, default=100.0,
                              help="default per-request deadline "
                                   "(0 disables)")
    fleet_parser.add_argument("--zones", type=int, default=3,
                              help="fault domains (named z0..zN-1)")
    fleet_parser.add_argument("--servers-per-zone", type=int, default=1)
    fleet_parser.add_argument("--replicas", type=int, default=1,
                              help="replicas per fleet server")
    fleet_parser.add_argument("--queue-limit", type=int, default=32,
                              help="per-server queue bound")
    fleet_parser.add_argument("--max-hedges", type=int, default=1)
    fleet_parser.add_argument("--min-servers", type=int, default=2,
                              help="autoscaler floor")
    fleet_parser.add_argument("--max-servers", type=int, default=9,
                              help="autoscaler ceiling")
    fleet_parser.add_argument("--tenants", default="default",
                              metavar="SPECS",
                              help="comma-separated "
                                   "name[:max_outstanding[:deadline_ms]]"
                                   " tenant specs")
    fleet_parser.add_argument("--fault", default="none",
                              metavar="PRESET",
                              help="arm a deterministic fleet-fault "
                                   "preset (see --list-presets)")
    fleet_parser.add_argument("--list-presets", action="store_true",
                              help="print the fault presets and exit")
    fleet_parser.add_argument("--rollout-at", type=float, default=None,
                              metavar="SECONDS",
                              help="start a rolling deploy at this "
                                   "fleet-clock time")
    fleet_parser.add_argument("--rollout-version", default="v2",
                              help="version label the scripted rollout "
                                   "deploys")
    fleet_parser.add_argument("--virtual-clock", action="store_true",
                              help="drive the fleet on a virtual clock "
                                   "(deterministic chaos timelines)")
    fleet_parser.add_argument("--report-json", metavar="PATH",
                              help="write the FleetReport as JSON")
    fleet_parser.add_argument("--trace", metavar="PATH",
                              help="save the fleet trace (op records + "
                                   "fleet events) as JSONL")
    fleet_parser.set_defaults(handler=cmd_fleet)

    chaos_parser = commands.add_parser(
        "chaos", help="fault-space search with invariant oracles")
    chaos_commands = chaos_parser.add_subparsers(dest="chaos_command",
                                                required=True)

    chaos_run = chaos_commands.add_parser(
        "run", help="enumerate fault schedules, judge every oracle, "
                    "minimize violations")
    chaos_run.add_argument("--harness", default="training",
                           metavar="NAME",
                           help="training, cluster, serving, fleet, or "
                                "storage (see --list-harnesses)")
    chaos_run.add_argument("--workload", default="memnet")
    chaos_run.add_argument("--config", default="tiny")
    chaos_run.add_argument("--steps", type=int, default=None,
                           help="training steps per run "
                                "(default: harness default)")
    chaos_run.add_argument("--requests", type=int, default=None,
                           help="load-generator requests per run "
                                "(default: harness default)")
    chaos_run.add_argument("--budget", type=int, default=24,
                           help="max schedules to execute (the space "
                                "is sampled deterministically beyond "
                                "this)")
    chaos_run.add_argument("--max-faults", type=int, default=2,
                           help="largest schedule size to compose")
    chaos_run.add_argument("--seeds", default="0",
                           help="comma-separated plan seeds each "
                                "schedule is crossed with")
    chaos_run.add_argument("--sample-seed", type=int, default=0)
    chaos_run.add_argument("--replicas", type=int, default=None,
                           metavar="N",
                           help="replication factor for the storage "
                                "harness (default: harness default)")
    chaos_run.add_argument("--oracle", action="append", default=None,
                           metavar="NAME",
                           help="restrict to this oracle (repeatable; "
                                "see --list-oracles)")
    chaos_run.add_argument("--include-presets", action="store_true",
                           help="also judge the shipped CLI fault "
                                "presets for this harness")
    chaos_run.add_argument("--no-minimize", action="store_true",
                           help="report violations without "
                                "delta-debugging them")
    chaos_run.add_argument("--reproducer-dir", default=None,
                           metavar="DIR",
                           help="write a replayable reproducer file "
                                "per violation here")
    chaos_run.add_argument("--report-json", default=None,
                           metavar="PATH",
                           help="write the campaign report here")
    chaos_run.add_argument("--trace", default=None, metavar="PATH",
                           help="save the campaign event trace here")
    chaos_run.add_argument("--list-oracles", action="store_true")
    chaos_run.add_argument("--list-harnesses", action="store_true")
    chaos_run.set_defaults(handler=cmd_chaos_run)

    chaos_minimize = chaos_commands.add_parser(
        "minimize", help="delta-debug a reproducer file's schedule to "
                         "its minimum")
    chaos_minimize.add_argument("reproducer",
                                help="reproducer JSON from "
                                     "'chaos run --reproducer-dir'")
    chaos_minimize.add_argument("--output", "-o", default=None,
                                help="write the minimized reproducer "
                                     "here (default: in place)")
    chaos_minimize.set_defaults(handler=cmd_chaos_minimize)

    chaos_replay = chaos_commands.add_parser(
        "replay", help="re-run a reproducer and re-judge its oracle")
    chaos_replay.add_argument("reproducer")
    chaos_replay.add_argument("--trace", default=None, metavar="PATH",
                              help="save the replay event trace here")
    chaos_replay.set_defaults(handler=cmd_chaos_replay)

    profile_parser = commands.add_parser("profile",
                                         help="operation-type profile")
    _add_model_args(profile_parser)
    profile_parser.add_argument("--mode", default="train",
                                choices=["train", "infer"])
    profile_parser.add_argument("--device", type=_parse_device,
                                default="cpu1",
                                help="measured | gpu | cpuN (default cpu1)")
    profile_parser.add_argument("--classes", action="store_true",
                                help="aggregate to Fig. 3 classes")
    profile_parser.add_argument("--top", type=int, default=10)
    profile_parser.set_defaults(handler=cmd_profile)

    sweep_parser = commands.add_parser("sweep",
                                       help="Fig. 6 thread sweep")
    _add_model_args(sweep_parser)
    sweep_parser.add_argument("--threads", type=int, nargs="+",
                              default=[1, 2, 4, 8])
    sweep_parser.add_argument("--top", type=int, default=8)
    sweep_parser.set_defaults(handler=cmd_sweep)

    evaluate_parser = commands.add_parser(
        "evaluate", help="task-quality metrics (accuracy, PER, ...)")
    _add_model_args(evaluate_parser)
    evaluate_parser.add_argument("--train-steps", type=int, default=0,
                                 help="train before evaluating")
    evaluate_parser.add_argument("--batches", type=int, default=4)
    evaluate_parser.set_defaults(handler=cmd_evaluate)

    placement_parser = commands.add_parser(
        "placement", help="Section V-A CPU-fallback simulation")
    _add_model_args(placement_parser)
    placement_parser.set_defaults(handler=cmd_placement)

    compare_parser = commands.add_parser(
        "compare", help="diff two workloads' operation profiles")
    _add_model_args(compare_parser)
    compare_parser.add_argument("other", help="second workload name")
    compare_parser.add_argument("--device", type=_parse_device,
                                default="cpu1")
    compare_parser.set_defaults(handler=cmd_compare)

    whatif_parser = commands.add_parser(
        "whatif", help="end-to-end speedup from a hypothetical accelerator")
    _add_model_args(whatif_parser)
    whatif_parser.add_argument("--preset", default="conv+gemm",
                               choices=["conv-engine", "gemm-engine",
                                        "conv+gemm"])
    whatif_parser.add_argument("--factors", type=float, nargs="+",
                               default=[10.0, 100.0])
    whatif_parser.set_defaults(handler=cmd_whatif)

    compile_parser = commands.add_parser(
        "compile", help="compile an execution plan and report the passes")
    _add_model_args(compile_parser)
    compile_parser.add_argument("--mode", default="train",
                                choices=["train", "infer"])
    compile_parser.add_argument("--report", action="store_true",
                                help="pass-by-pass report (op counts, "
                                     "planned peak, arena reuse)")
    compile_parser.add_argument("--dump-kernels", action="store_true",
                                help="print the generated source of every "
                                     "codegen region kernel")
    compile_parser.set_defaults(handler=cmd_compile)

    memory_parser = commands.add_parser(
        "memory", help="static memory plan (no execution)")
    _add_model_args(memory_parser)
    memory_parser.set_defaults(handler=cmd_memory)

    trace_parser = commands.add_parser(
        "trace", help="save an op-level trace as JSONL for offline use")
    _add_model_args(trace_parser)
    trace_parser.add_argument("--mode", default="train",
                              choices=["train", "infer"])
    trace_parser.add_argument("--output", "-o", default="trace.jsonl")
    trace_parser.set_defaults(handler=cmd_trace)

    census_parser = commands.add_parser(
        "census", help="static graph structure (ops, FLOPs, depth)")
    _add_model_args(census_parser)
    census_parser.set_defaults(handler=cmd_census)

    roofline_parser = commands.add_parser(
        "roofline", help="compute/memory/overhead-bound time split")
    _add_model_args(roofline_parser)
    roofline_parser.add_argument("--device", type=_parse_device,
                                 default=None, help="gpu | cpuN")
    roofline_parser.set_defaults(handler=cmd_roofline)

    phases_parser = commands.add_parser(
        "phases", help="forward/loss/backward/optimizer time split")
    _add_model_args(phases_parser)
    phases_parser.set_defaults(handler=cmd_phases)

    report_parser = commands.add_parser(
        "report", help="full characterization report (markdown)")
    report_parser.add_argument("--config", default="default")
    report_parser.add_argument("--steps", type=int, default=2)
    report_parser.add_argument("--output", "-o")
    report_parser.set_defaults(handler=cmd_report)

    commands.add_parser("tables", help="print Tables I and II") \
        .set_defaults(handler=cmd_tables)

    figures_parser = commands.add_parser(
        "figures", help="print the Fig. 2/3 characterization")
    figures_parser.add_argument("--config", default="default")
    figures_parser.add_argument("--steps", type=int, default=2)
    figures_parser.set_defaults(handler=cmd_figures)

    graph_parser = commands.add_parser("graph",
                                       help="dataflow graph statistics")
    _add_model_args(graph_parser)
    graph_parser.add_argument("--dot", help="write Graphviz DOT here")
    graph_parser.add_argument("--max-ops", type=int, default=500)
    graph_parser.add_argument("--top", type=int, default=10)
    graph_parser.set_defaults(handler=cmd_graph)

    timeline_parser = commands.add_parser(
        "timeline", help="write a Chrome-trace execution timeline")
    _add_model_args(timeline_parser)
    timeline_parser.add_argument("--mode", default="train",
                                 choices=["train", "infer"])
    timeline_parser.add_argument("--output", "-o", default="timeline.json")
    timeline_parser.set_defaults(handler=cmd_timeline)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.framework.errors import FrameworkError
    try:
        return args.handler(args)
    except FrameworkError as exc:
        # One line, no traceback: framework errors are user-diagnosable
        # (bad checkpoint, failed op, invalid feed), not CLI bugs.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
