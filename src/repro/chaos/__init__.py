"""Chaos campaign engine: systematic fault-space search with oracles.

The package turns the stack's five fault-injection families into a
search problem: enumerate schedules, execute them on a harness adapter,
judge every run against invariant oracles, and delta-debug violations
down to minimal, replayable reproducers. See docs/robustness.md
("Chaos campaigns") and ``python -m repro chaos --help``.
"""

from .campaign import (CampaignResult, CampaignSpec, Violation,
                       enumerate_schedules, load_reproducer,
                       minimize_violation, replay_reproducer,
                       run_campaign, write_reproducer)
from .events import CAMPAIGN_EVENT_KINDS, CampaignEvent
from .harnesses import (HARNESSES, CampaignHarness, ClusterHarness,
                        FleetHarness, RunOutcome, ServingHarness,
                        StorageHarness, TrainingHarness, build_harness)
from .minimize import MinimizeResult, ddmin
from .oracles import ORACLES, Oracle, Verdict, oracles_for

__all__ = [
    "CAMPAIGN_EVENT_KINDS",
    "CampaignEvent",
    "CampaignHarness",
    "CampaignResult",
    "CampaignSpec",
    "ClusterHarness",
    "FleetHarness",
    "HARNESSES",
    "MinimizeResult",
    "ORACLES",
    "Oracle",
    "RunOutcome",
    "ServingHarness",
    "StorageHarness",
    "TrainingHarness",
    "Verdict",
    "Violation",
    "build_harness",
    "ddmin",
    "enumerate_schedules",
    "load_reproducer",
    "minimize_violation",
    "oracles_for",
    "replay_reproducer",
    "run_campaign",
    "write_reproducer",
]
