"""Campaign events: the fifth tracer event family.

A chaos campaign narrates itself into the shared tracer stream the same
way the resilient runner, healing policy, serving layer, and cluster
runtime do — one frozen dataclass per occurrence, duck-typed apart from
the other families by its marker field (here ``oracle``; see
:meth:`repro.profiling.tracer.Tracer.campaign_events`). Campaign events
persist through :mod:`repro.profiling.serialize` like every other
family, so a saved campaign trace replays its verdict history exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

#: every campaign event kind, in lifecycle order
CAMPAIGN_EVENT_KINDS = (
    "baseline",   # the fault-free reference run completed
    "schedule",   # one fault schedule executed against the harness
    "verdict",    # one oracle's pass/fail on one schedule
    "violation",  # an oracle failed: the schedule is a counterexample
    "minimized",  # delta debugging shrank a violation to its minimum
)


@dataclass(frozen=True)
class CampaignEvent:
    """One chaos-campaign occurrence.

    Args:
        step: the campaign's schedule index (-1 for baseline events).
        kind: one of :data:`CAMPAIGN_EVENT_KINDS`.
        oracle: the oracle being judged, for verdict/violation/minimized
            events (``None`` for schedule/baseline events — the field
            must exist on every instance: it is the duck-typing marker
            that routes campaign events in the tracer).
        harness: the harness name the campaign is driving.
        ok: the verdict, for verdict events (``None`` otherwise).
        seconds_lost: virtual seconds the schedule's run consumed.
        detail: human-readable specifics (schedule summary, oracle
            failure detail, minimization stats).
    """

    step: int
    kind: str
    oracle: str | None = None
    harness: str | None = None
    ok: bool | None = None
    seconds_lost: float = 0.0
    detail: str = ""

    def signature(self) -> tuple:
        """Timing-free identity, for determinism assertions."""
        return (self.step, self.kind, self.oracle, self.harness,
                self.ok, self.detail)
