"""Uniform campaign adapters over the five fault-injectable runtimes.

The campaign engine needs to treat "run this fault schedule against
that system" as one operation, whatever the system — resilient
single-process training, the data-parallel cluster, one inference
server, the multi-zone fleet, or the replicated checkpoint store. Each
adapter here wraps one runtime behind the same three-method surface:

* :meth:`CampaignHarness.run` — execute one fault plan (or none) on a
  fresh instance, entirely on the virtual clock, returning a
  :class:`RunOutcome`;
* :meth:`CampaignHarness.baseline` — the cached fault-free reference
  outcome the oracles compare against;
* :meth:`CampaignHarness.atomic_specs` — the deterministic list of
  single-fault candidates the campaign composes schedules from.

Every underlying runtime advertises its fault family and accepts plans
through the same ``install_faults`` method (``ResilientRunner``,
``ClusterRuntime``, ``InferenceServer``, ``ServingFleet`` — the
``FAULT_FAMILY`` attribute), so adapters stay thin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.framework.faults import (BaseFaultPlan, BaseFaultSpec,
                                    ClusterFaultPlan, ClusterFaultSpec,
                                    FaultPlan, FaultSpec, FleetFaultPlan,
                                    FleetFaultSpec, ServingFaultPlan,
                                    ServingFaultSpec, StorageFaultPlan,
                                    StorageFaultSpec)


@dataclass
class RunOutcome:
    """What one harness execution produced, normalized across harnesses.

    Attributes:
        harness: the adapter's name.
        plan: the fault plan executed (``None`` for the baseline).
        losses: per-step training losses (training/cluster harnesses).
        replies: request id -> terminal reply (serving/fleet harnesses).
        counters: the server/fleet counter dict (serving/fleet).
        requests: how many requests were submitted (serving/fleet).
        report: the harness's own report object, when it has one.
        tracer: the run's private tracer (failure/degradation/serving/
            cluster events for the trace-well-formedness oracle).
        injected: the injector's ``signature()`` — everything that
            actually fired, in order.
        error: ``"Type: message"`` if the run itself raised (a crashed
            harness is an outcome, not a campaign abort).
        elapsed: virtual-clock seconds the run consumed.
        model: the workload instance (training harness; lets the
            checkpoint-restore oracle round-trip end state).
    """

    harness: str
    plan: BaseFaultPlan | None
    losses: list | None = None
    replies: dict | None = None
    counters: dict | None = None
    requests: int = 0
    report: object | None = None
    tracer: object | None = None
    injected: tuple = ()
    error: str | None = None
    elapsed: float = 0.0
    model: object | None = None
    extras: dict = field(default_factory=dict)


class CampaignHarness:
    """Base adapter: one fault-injectable runtime behind one surface."""

    #: adapter name, used by CampaignSpec.harness and the CLI
    name = ""
    #: the fault family this harness's plans belong to
    family = ""
    #: the plan class schedules are built with
    PLAN_CLASS: type[BaseFaultPlan] = BaseFaultPlan

    def __init__(self, workload: str = "memnet", config: str = "tiny",
                 seed: int = 0, steps: int = 4, requests: int = 24):
        self.workload = workload
        self.config = config
        self.seed = seed
        self.steps = steps
        self.requests = requests
        self._baseline: RunOutcome | None = None

    def describe(self) -> dict:
        """The constructor arguments, for reproducer files."""
        return {"harness": self.name, "workload": self.workload,
                "config": self.config, "seed": self.seed,
                "steps": self.steps, "requests": self.requests}

    def make_plan(self, specs, seed: int | None = None) -> BaseFaultPlan:
        """Build this harness's plan class around ``specs``."""
        return self.PLAN_CLASS(
            specs, seed=self.seed if seed is None else seed)

    def baseline(self) -> RunOutcome:
        """The fault-free reference outcome (computed once, cached)."""
        if self._baseline is None:
            self._baseline = self.run(None)
        return self._baseline

    def run(self, plan: BaseFaultPlan | None) -> RunOutcome:
        raise NotImplementedError

    def atomic_specs(self) -> list[BaseFaultSpec]:
        """Deterministic single-fault candidates for schedule search."""
        raise NotImplementedError

    def _model(self):
        from repro import workloads
        return workloads.create(self.workload, config=self.config,
                                seed=self.seed)


class TrainingHarness(CampaignHarness):
    """Resilient single-process training under op-level faults.

    The runner is configured so every injectable fault is survivable by
    design — aggressive retries, op-level NaN/Inf guardrails, and the
    non-finite-loss guard — which makes *bit-identity against the
    fault-free run* the invariant the campaign hunts violations of.
    """

    name = "training"
    family = "op"
    PLAN_CLASS = FaultPlan

    def resilience_config(self, **overrides):
        from repro.framework.resilience import ResilienceConfig
        base = dict(max_retries=4, retry_all_execution_errors=True,
                    nan_guard=True, guardrails="raise", seed=self.seed)
        base.update(overrides)
        return ResilienceConfig(**base)

    def run(self, plan, **config_overrides) -> RunOutcome:
        from repro.framework.clock import VirtualClock
        from repro.framework.resilience import ResilientRunner
        from repro.profiling.tracer import Tracer
        model = self._model()
        tracer = Tracer()
        clock = VirtualClock()
        runner = ResilientRunner(
            model, config=self.resilience_config(**config_overrides),
            tracer=tracer, clock=clock)
        if plan is not None:
            runner.install_faults(plan)
        losses, error = None, None
        try:
            losses = runner.run(self.steps)
        except Exception as exc:  # a dead harness is itself an outcome
            error = f"{type(exc).__name__}: {exc}"
        injector = model.session.fault_injector
        return RunOutcome(
            harness=self.name, plan=plan, losses=losses, tracer=tracer,
            injected=injector.signature() if injector is not None else (),
            error=error, elapsed=clock.now(), model=model)

    def atomic_specs(self) -> list[FaultSpec]:
        # The optimizer's fused update node is named train_step in every
        # workload, so these target only training runs. Steps 1 and 2
        # land mid-run (step 0 would also exercise cold-start paths but
        # doubles the schedule space for little coverage).
        return [
            FaultSpec("exception", name_pattern="train_step", step=1),
            FaultSpec("exception", name_pattern="train_step", step=2),
            FaultSpec("nan", name_pattern="train_step", step=1),
            FaultSpec("nan", name_pattern="train_step", step=2),
            FaultSpec("latency", name_pattern="train_step", step=1,
                      latency_seconds=0.002),
            FaultSpec("feed", step=2),
        ]


class ClusterHarness(CampaignHarness):
    """Data-parallel cluster training under cluster faults.

    The cluster guarantees bit-identical losses under every supported
    fault (checkpoint replay, retransmits, guardrail screens, strategy
    fallback — and, with ``screened_mean``, attestation-replaced
    byzantine shards), so *convergence to the fault-free trajectory* is
    the invariant.
    """

    name = "cluster"
    family = "cluster"
    PLAN_CLASS = ClusterFaultPlan

    workers = 3
    strategy = "allreduce"
    aggregation = "screened_mean"
    #: attestation thresholds the cluster campaign runs under
    #: (None = the runtime defaults); broken-fixture subclasses weaken
    #: this to hand the campaign something to find
    attestation = None

    def run(self, plan) -> RunOutcome:
        from repro.distributed import ClusterConfig, ClusterRuntime
        from repro.profiling.tracer import Tracer
        model = self._model()
        tracer = Tracer()
        runtime = ClusterRuntime(
            model,
            config=ClusterConfig(workers=self.workers,
                                 strategy=self.strategy, seed=self.seed,
                                 aggregation=self.aggregation,
                                 attestation=self.attestation),
            tracer=tracer)
        if plan is not None:
            runtime.install_faults(plan)
        losses, error, elapsed = None, None, 0.0
        try:
            result = runtime.run(self.steps)
            losses = result.losses
            elapsed = result.elapsed_seconds
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        return RunOutcome(
            harness=self.name, plan=plan, losses=losses, tracer=tracer,
            injected=(runtime.injector.signature()
                      if runtime.injector is not None else ()),
            error=error, elapsed=elapsed, model=model)

    def atomic_specs(self) -> list[ClusterFaultSpec]:
        return [
            ClusterFaultSpec("worker_crash", worker=1, step=1),
            ClusterFaultSpec("worker_crash", worker=2, step=2),
            ClusterFaultSpec("straggler", worker=0, step=1,
                             delay_seconds=0.5, max_triggers=2),
            ClusterFaultSpec("partition", link=(0, 1), step=1,
                             duration_steps=1),
            ClusterFaultSpec("lost_gradient", link=(1, 0), step=2),
            ClusterFaultSpec("corrupt_gradient", link=(2, 0), step=2),
            # Byzantine atoms sit at pairwise-distinct steps so paired
            # schedules never corrupt a majority of one step's shards
            # (which would poison the peer statistics themselves). Each
            # is same-step detectable: scale/drift trip the norm-ratio
            # screen, stale trips the digest screen, and the signflip
            # lands where the honest leave-one-out cosine is strongly
            # positive (memnet step 3, shard 0: +0.72), so flipping it
            # drives the cosine below the floor.
            ClusterFaultSpec("byzantine_drift", worker=2, step=0,
                             drift_rate=31.0),
            ClusterFaultSpec("byzantine_scale", worker=1, step=1,
                             scale_factor=64.0),
            ClusterFaultSpec("byzantine_stale", worker=1, step=2),
            ClusterFaultSpec("byzantine_signflip", worker=0, step=3),
        ]


class ServingHarness(CampaignHarness):
    """One inference server under saturating load and serving faults.

    The server's contract is *exactly one terminal reply per accepted
    request, zero hangs* — whatever crashes, stalls, or poison land
    mid-load.
    """

    name = "serving"
    family = "serving"
    PLAN_CLASS = ServingFaultPlan

    #: constructed per run; tests substitute a broken subclass here
    SERVER_CLASS = None  # default: InferenceServer

    qps = 500.0
    load_seed = 4

    def serving_config(self):
        from repro.serving import ServingConfig
        return ServingConfig(replicas=2, default_deadline_ms=2000.0,
                             max_hedges=2, slow_batch_ms=25.0,
                             seed=self.seed + 1)

    def run(self, plan) -> RunOutcome:
        from repro.profiling.tracer import Tracer
        from repro.serving import (LoadConfig, LoadGenerator,
                                   VirtualClock)
        from repro.serving.server import InferenceServer
        model = self._model()
        tracer = Tracer()
        clock = VirtualClock()
        server_cls = self.SERVER_CLASS or InferenceServer
        server = server_cls(model, self.serving_config(),
                            tracer=tracer, clock=clock)
        injector = None
        if plan is not None:
            injector = server.install_faults(plan)
        report, error = None, None
        try:
            report = LoadGenerator(server, LoadConfig(
                requests=self.requests, qps=self.qps,
                seed=self.load_seed)).run()
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        return RunOutcome(
            harness=self.name, plan=plan, replies=dict(server.replies),
            counters=dict(server.counters), requests=self.requests,
            report=report, tracer=tracer,
            injected=injector.signature() if injector is not None else (),
            error=error, elapsed=clock.now(), model=model)

    def atomic_specs(self) -> list[ServingFaultSpec]:
        return [
            ServingFaultSpec("replica_crash", replica=0, batch=1),
            ServingFaultSpec("replica_crash", replica=1, batch=2),
            ServingFaultSpec("slow_replica", replica=0,
                             latency_seconds=0.05, max_triggers=3),
            ServingFaultSpec("slow_replica", replica=1,
                             latency_seconds=0.05, max_triggers=3),
            ServingFaultSpec("poisoned_batch", replica=0,
                             max_triggers=2),
            ServingFaultSpec("poisoned_batch", max_triggers=2),
        ]


class FleetHarness(CampaignHarness):
    """The multi-zone autoscaling fleet under fleet-scoped faults.

    Same terminal-reply contract as the single server, but the faults
    take out whole fault domains — zones, correlated server groups,
    balancer links, and the deploy pipeline.
    """

    name = "fleet"
    family = "fleet"
    PLAN_CLASS = FleetFaultPlan

    zones = ("z0", "z1", "z2")
    qps = 300.0
    load_seed = 3

    def __init__(self, workload: str = "memnet", config: str = "tiny",
                 seed: int = 0, steps: int = 4, requests: int = 96):
        super().__init__(workload, config, seed, steps, requests)

    def fleet_config(self):
        from repro.serving import (AutoscaleConfig, FleetConfig,
                                   ServingConfig, TenantSpec)
        return FleetConfig(
            zones=self.zones, servers_per_zone=1,
            server=ServingConfig(replicas=1, queue_limit=32,
                                 default_deadline_ms=100.0,
                                 est_batch_ms=5.0, seed=self.seed + 2),
            tenants=(TenantSpec("gold", max_outstanding=24,
                                deadline_ms=80.0),
                     TenantSpec("std", max_outstanding=48)),
            autoscale=AutoscaleConfig(min_servers=2, max_servers=9,
                                      cooldown_seconds=0.02),
            rollout_at_seconds=0.08, rollout_version="v2",
            seed=self.seed)

    def run(self, plan) -> RunOutcome:
        from repro.profiling.tracer import Tracer
        from repro.serving import (LoadConfig, LoadGenerator,
                                   ServingFleet, VirtualClock)
        model = self._model()
        tracer = Tracer()
        clock = VirtualClock()
        fleet = ServingFleet(model, self.fleet_config(),
                             tracer=tracer, clock=clock)
        injector = None
        if plan is not None:
            injector = fleet.install_faults(plan)
        report, error = None, None
        try:
            report = LoadGenerator(fleet, LoadConfig(
                requests=self.requests, qps=self.qps,
                seed=self.load_seed)).run()
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        return RunOutcome(
            harness=self.name, plan=plan, replies=dict(fleet.replies),
            counters=dict(fleet.counters), requests=self.requests,
            report=report, tracer=tracer,
            injected=injector.signature() if injector is not None else (),
            error=error, elapsed=clock.now(), model=model,
            extras={"outstanding": fleet.outstanding()})

    def atomic_specs(self) -> list[FleetFaultSpec]:
        return [
            FleetFaultSpec("zone_outage", zone="z1", at_seconds=0.05,
                           duration_seconds=0.1),
            FleetFaultSpec("correlated_crash", count=2,
                           at_seconds=0.04),
            FleetFaultSpec("lb_blackhole", at_seconds=0.02,
                           duration_seconds=0.15),
            FleetFaultSpec("bad_rollout", at_seconds=0.0,
                           defect="slow"),
            FleetFaultSpec("bad_rollout", at_seconds=0.0,
                           defect="poison"),
        ]


class StorageHarness(CampaignHarness):
    """Replicated checkpoint storage under storage faults.

    Trains a workload while checkpointing every step through a
    :class:`~repro.storage.ReplicatedCheckpointStore` over ``replicas``
    in-memory blob stores, then — with the fault plan still armed —
    restores every checkpoint that *committed* and checks it reproduces
    the exact variable state it captured (per-variable SHA-256
    digests). The durability contract the ``durability`` oracle judges:

    * every committed checkpoint restores bitwise, whatever storage
      faults fired (failover + read-repair must absorb them);
    * a restore never yields *partial* state — the restored digests
      match some checkpoint attempt exactly or the restore raises;
    * restore-latest lands on a committed checkpoint at least as new
      as the newest committed one.

    Atomic faults deliberately spare the last store (id ``replicas-1``),
    so with the default three replicas every single fault *and* every
    fault pair leaves at least one intact copy — the campaign proves
    the store survives them all. Rebuild with ``replicas=1`` and the
    same atoms become violations (bit rot and torn writes defeat an
    unreplicated archive), which is exactly the contrast the durability
    matrix in the tests pins down.
    """

    name = "storage"
    family = "storage"
    PLAN_CLASS = StorageFaultPlan

    #: per-blob-operation cost on the virtual clock
    op_seconds = 0.001
    #: scrub cadence in virtual seconds (~every other training step)
    scrub_interval = 0.015

    def __init__(self, workload: str = "memnet", config: str = "tiny",
                 seed: int = 0, steps: int = 4, requests: int = 24,
                 replicas: int = 3):
        super().__init__(workload, config, seed, steps, requests)
        self.replicas = replicas

    def describe(self) -> dict:
        blob = super().describe()
        blob["replicas"] = self.replicas
        return blob

    def run(self, plan) -> RunOutcome:
        from repro.framework.clock import VirtualClock
        from repro.framework.checkpoint import CheckpointError
        from repro.framework.errors import StorageError
        from repro.profiling.tracer import Tracer
        from repro.storage import (CheckpointQuorumError, MemoryStore,
                                   ReplicatedCheckpointStore,
                                   state_digests)
        model = self._model()
        tracer = Tracer()
        clock = VirtualClock()
        store = ReplicatedCheckpointStore(
            [MemoryStore(i, clock, op_seconds=self.op_seconds)
             for i in range(self.replicas)],
            scrub_interval=self.scrub_interval, tracer=tracer)
        injector = None
        if plan is not None:
            injector = store.install_faults(plan)
        losses: list[float] = []
        attempts: list[dict] = []
        restores: list[dict] = []
        latest: dict = {}
        error = None
        try:
            for step in range(self.steps):
                feed = model.sample_feed(training=True)
                loss, _ = model.session.run(
                    [model.loss, model.train_step], feed_dict=feed,
                    tracer=tracer)
                losses.append(float(loss))
                digests = state_digests(model.session)
                try:
                    record = store.save(model.session, step=step)
                except CheckpointQuorumError as exc:
                    attempts.append(
                        {"id": exc.record.checkpoint_id,
                         "committed": False, "digests": digests,
                         "detail": str(exc)})
                except StorageError as exc:
                    attempts.append(
                        {"id": None, "committed": False,
                         "digests": digests, "detail": str(exc)})
                else:
                    attempts.append(
                        {"id": record.checkpoint_id, "committed": True,
                         "digests": digests})
            # Verification phase, faults still armed: every committed
            # checkpoint must restore to the exact state it captured.
            probe = self._model()
            for attempt in attempts:
                if not attempt["committed"]:
                    continue
                entry = {"id": attempt["id"], "ok": False, "detail": ""}
                try:
                    store.restore(probe.session, attempt["id"])
                except (StorageError, CheckpointError) as exc:
                    entry["detail"] = f"{type(exc).__name__}: {exc}"
                else:
                    if state_digests(probe.session) == attempt["digests"]:
                        entry["ok"] = True
                    else:
                        entry["detail"] = ("restored state differs from "
                                           "the state at save time")
                restores.append(entry)
            # Restore-latest must land exactly on some attempt's state.
            latest = {"ok": False, "id": None, "matches": None,
                      "detail": ""}
            try:
                record = store.restore(probe.session)
            except (StorageError, CheckpointError) as exc:
                latest["detail"] = f"{type(exc).__name__}: {exc}"
            else:
                latest["ok"] = True
                latest["id"] = record.checkpoint_id
                restored = state_digests(probe.session)
                for attempt in attempts:
                    if attempt["digests"] == restored:
                        latest["matches"] = attempt["id"]
                        break
        except Exception as exc:  # a dead harness is itself an outcome
            error = f"{type(exc).__name__}: {exc}"
        finally:
            store.uninstall_faults()
        return RunOutcome(
            harness=self.name, plan=plan, losses=losses, tracer=tracer,
            counters=dict(store.counters),
            injected=injector.signature() if injector is not None else (),
            error=error, elapsed=clock.now(), model=model,
            extras={"durability": {
                "replicas": self.replicas,
                "attempts": attempts,
                "restores": restores,
                "latest": latest,
                "scrub_heals": store.counters["scrub_heals"],
                "unrecoverable": store.counters["unrecoverable"]}})

    def atomic_specs(self) -> list[StorageFaultSpec]:
        # Every atom targets stores 0 or 1, never the last store — so
        # at N=3 replication each single fault and each fault pair
        # leaves one clean replica and the durability contract must
        # hold. 8 atoms -> 8 + C(8,2) = 36 schedules, within the
        # standard budget of 40.
        return [
            StorageFaultSpec("torn_write", store=0,
                             key_pattern="payload", fraction=0.5),
            StorageFaultSpec("torn_write", store=1,
                             key_pattern="payload", fraction=0.25),
            StorageFaultSpec("bit_rot", store=0, key_pattern="payload"),
            StorageFaultSpec("bit_rot", store=1, key_pattern="payload"),
            StorageFaultSpec("stale_read", store=0),
            StorageFaultSpec("disk_full", store=1),
            StorageFaultSpec("slow_io", store=0, latency_seconds=0.01,
                             max_triggers=4),
            StorageFaultSpec("store_down", store=1, duration_ops=6),
        ]


#: harness name -> adapter class (the CLI's --harness choices)
HARNESSES: dict[str, type[CampaignHarness]] = {
    cls.name: cls
    for cls in (TrainingHarness, ClusterHarness, ServingHarness,
                FleetHarness, StorageHarness)
}


def build_harness(name: str, **kw) -> CampaignHarness:
    """Instantiate the adapter registered under ``name``."""
    try:
        harness_cls = HARNESSES[name]
    except KeyError:
        raise ValueError(
            f"unknown harness {name!r}; expected one of "
            f"{sorted(HARNESSES)}") from None
    return harness_cls(**kw)
