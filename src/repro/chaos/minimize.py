"""Delta-debugging minimization of failing fault schedules.

A campaign violation usually fires on a multi-fault schedule where most
of the faults are innocent bystanders. Zeller's ddmin algorithm shrinks
the schedule to a *1-minimal* reproducer — removing any single remaining
fault makes the violation disappear — by repeatedly re-running the
harness on subsets and complements of the current schedule.

Everything here is deterministic: the subset order is a pure function
of the input schedule, and each candidate subset is executed at most
once (results are cached on the spec tuple), so the same violation
always minimizes to the same reproducer in the same number of runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.framework.faults import BaseFaultSpec


@dataclass
class MinimizeResult:
    """The minimal failing schedule plus search statistics."""

    specs: tuple
    tests_run: int
    cache_hits: int

    @property
    def size(self) -> int:
        return len(self.specs)


def ddmin(specs: Sequence[BaseFaultSpec],
          fails: Callable[[list], bool]) -> MinimizeResult:
    """Shrink ``specs`` to a 1-minimal subset on which ``fails`` holds.

    Args:
        specs: the failing schedule (``fails(list(specs))`` must be
            True; raises ValueError otherwise — a "violation" that does
            not reproduce is a determinism bug worth failing loudly on).
        fails: run the harness on a candidate sub-schedule and report
            whether the violation still occurs.

    Returns the minimal schedule (original order preserved) with run
    statistics. The empty schedule is never tested: a fault-free run
    violating an oracle is a baseline defect, not a fault reproducer.
    """
    cache: dict[tuple, bool] = {}
    stats = {"tests": 0, "hits": 0}

    def test(subset: list) -> bool:
        key = tuple(subset)
        if key in cache:
            stats["hits"] += 1
            return cache[key]
        stats["tests"] += 1
        result = bool(fails(list(subset)))
        cache[key] = result
        return result

    current = list(specs)
    if not current:
        raise ValueError("cannot minimize an empty schedule")
    if not test(current):
        raise ValueError(
            "the full schedule does not reproduce the violation — "
            "non-deterministic harness or stale violation")

    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        subsets = [current[i:i + chunk]
                   for i in range(0, len(current), chunk)]
        reduced = False
        # Try each subset alone: the classic fast path.
        for subset in subsets:
            if len(subset) < len(current) and test(subset):
                current = subset
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        # Try each complement: drop one chunk at a time.
        if len(subsets) > 2:
            for index in range(len(subsets)):
                complement = [spec for j, subset in enumerate(subsets)
                              if j != index for spec in subset]
                if complement and test(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if reduced:
            continue
        if granularity >= len(current):
            break
        granularity = min(len(current), granularity * 2)

    # 1-minimality sweep: ddmin guarantees it at loop exit, but the
    # sweep is cheap insurance (cache absorbs repeats) and makes the
    # guarantee locally obvious.
    changed = True
    while changed and len(current) > 1:
        changed = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1:]
            if test(candidate):
                current = candidate
                changed = True
                break

    return MinimizeResult(specs=tuple(current), tests_run=stats["tests"],
                          cache_hits=stats["hits"])
