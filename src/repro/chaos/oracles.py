"""Invariant oracles: what "survived the faults" means, mechanically.

Each oracle states one system-wide invariant the stack promises to hold
under *any* injectable fault schedule, and checks it against a
:class:`~repro.chaos.harnesses.RunOutcome` (usually by comparison with
the harness's cached fault-free baseline). The campaign engine runs
every applicable oracle after every schedule; a failed verdict is a
counterexample worth minimizing.

The registry (:data:`ORACLES`) maps names to instances; each oracle
declares which harnesses it applies to. Write the invariant once, get
every workload x harness x fault combination checked mechanically.
"""

from __future__ import annotations

import math
import os
import tempfile
from dataclasses import dataclass

from .harnesses import CampaignHarness, RunOutcome


@dataclass(frozen=True)
class Verdict:
    """One oracle's judgement of one schedule's outcome."""

    oracle: str
    ok: bool
    detail: str = ""


class Oracle:
    """Base: one named invariant over run outcomes."""

    #: registry key and CLI name
    name = ""
    #: harness names this oracle applies to
    harnesses: tuple[str, ...] = ()
    #: one-line summary for ``repro chaos run --list-oracles``
    summary = ""

    def applies_to(self, harness_name: str) -> bool:
        return harness_name in self.harnesses

    def check(self, outcome: RunOutcome, baseline: RunOutcome,
              harness: CampaignHarness) -> Verdict:
        raise NotImplementedError

    def _verdict(self, ok: bool, detail: str = "") -> Verdict:
        return Verdict(oracle=self.name, ok=ok,
                       detail="" if ok else detail)


def _losses_equal(a: list | None, b: list | None) -> bool:
    if a is None or b is None or len(a) != len(b):
        return False
    # NaN != NaN, and a skipped step's nan loss IS a divergence from a
    # clean baseline — plain equality is exactly the bit-identity bar.
    return all(x == y for x, y in zip(a, b))


class TerminalRepliesOracle(Oracle):
    """Every submitted request reaches exactly one terminal reply.

    The serving contract since PR 4: requests are shed at admission or
    answered (ok/deadline/error) — never lost, never answered twice,
    never left hanging once the load generator drains.
    """

    name = "terminal_replies"
    harnesses = ("serving", "fleet")
    summary = ("each request gets exactly one terminal reply; "
               "counters account for all of them")

    def check(self, outcome, baseline, harness):
        if outcome.error is not None:
            return self._verdict(False, f"run died: {outcome.error}")
        replies = outcome.replies or {}
        expected = list(range(outcome.requests))
        if sorted(replies) != expected:
            missing = sorted(set(expected) - set(replies))
            extra = sorted(set(replies) - set(expected))
            return self._verdict(
                False, f"replies diverge: missing {missing[:8]}"
                       f"{'...' if len(missing) > 8 else ''}, "
                       f"unexpected {extra[:8]}")
        counters = outcome.counters or {}
        terminal = sum(counters.get(key, 0)
                       for key in ("ok", "shed", "deadline", "error"))
        if terminal != outcome.requests:
            return self._verdict(
                False, f"outcome counters sum to {terminal}, "
                       f"expected {outcome.requests}")
        outstanding = outcome.extras.get("outstanding", 0)
        if outstanding:
            return self._verdict(
                False, f"{outstanding} requests still outstanding "
                       f"after drain")
        return self._verdict(True)


class BitIdentityOracle(Oracle):
    """Training recovers to the exact fault-free loss trajectory.

    The resilience contract since PR 1: rollback + retry (and guardrail
    screening) make every transient fault invisible in the final
    numbers — bit-for-bit, not approximately.
    """

    name = "bit_identity"
    harnesses = ("training",)
    summary = "faulted training losses == fault-free losses, bitwise"

    def check(self, outcome, baseline, harness):
        if outcome.error is not None:
            return self._verdict(False, f"run died: {outcome.error}")
        if _losses_equal(outcome.losses, baseline.losses):
            return self._verdict(True)
        diverged = [i for i, (x, y) in enumerate(
            zip(outcome.losses or [], baseline.losses or []))
            if x != y]
        return self._verdict(
            False, f"loss trajectory diverged at steps {diverged[:6]} "
                   f"(faulted {outcome.losses} vs fault-free "
                   f"{baseline.losses})")


class ConvergenceOracle(Oracle):
    """Cluster training converges to the fault-free trajectory.

    The distributed contract since PR 5: checkpoint replay, retransmits,
    and strategy fallback keep the global model bit-identical to the
    undisturbed run, whatever the cluster faults.
    """

    name = "convergence"
    harnesses = ("cluster",)
    summary = "faulted cluster losses == fault-free losses, bitwise"

    def check(self, outcome, baseline, harness):
        if outcome.error is not None:
            return self._verdict(False, f"run died: {outcome.error}")
        if _losses_equal(outcome.losses, baseline.losses):
            return self._verdict(True)
        return self._verdict(
            False, f"cluster trajectory diverged (faulted "
                   f"{outcome.losses} vs fault-free {baseline.losses})")


class ByzantineDetectionOracle(Oracle):
    """Every injected byzantine fault is detected, and training holds.

    Two promises, checked per injected ``byzantine_*`` firing: the
    offending worker is named by a ``gradient_suspect`` (or ``evict``)
    event within ``max_detection_steps`` of the firing, and the final
    loss stays within ``loss_rtol`` of the fault-free baseline. A
    corruption that slips past attestation *silently* fails the first
    check; one that is caught but still wrecks the trajectory fails the
    second. Vacuously true for schedules that injected nothing
    byzantine — the nightly campaign uses this to hunt for corruptions
    that evade attestation.
    """

    name = "byzantine_detection"
    harnesses = ("cluster",)
    summary = ("every injected byzantine fault draws a suspect/evict "
               "event in bounded steps; final loss near baseline")

    #: steps allowed between a byzantine firing and its conviction (the
    #: round-robin audit probe covers every shard within workers-1
    #: steps, so the bound tracks the campaign harness's worker count)
    max_detection_steps = 3
    #: relative tolerance on the final loss vs the fault-free baseline
    loss_rtol = 0.05

    def check(self, outcome, baseline, harness):
        fired = [(step, target) for step, target, kind, _index
                 in outcome.injected if kind.startswith("byzantine_")]
        if not fired:
            return self._verdict(True)
        if outcome.error is not None:
            return self._verdict(False, f"run died: {outcome.error}")
        convictions = [
            (event.step, event.worker)
            for kind in ("gradient_suspect", "evict")
            for event in outcome.tracer.cluster_events(kind)]
        for step, target in fired:
            worker = int(target.split(":", 1)[1])
            caught = any(c_worker == worker
                         and step <= c_step <= step
                         + self.max_detection_steps
                         for c_step, c_worker in convictions)
            if not caught:
                return self._verdict(
                    False,
                    f"byzantine fault on worker {worker} at step {step} "
                    f"was never convicted within "
                    f"{self.max_detection_steps} steps "
                    f"(convictions: {convictions})")
        if not outcome.losses or not baseline.losses:
            return self._verdict(False, "no losses to compare")
        final, ref = outcome.losses[-1], baseline.losses[-1]
        if not math.isfinite(final) \
                or abs(final - ref) > self.loss_rtol * max(abs(ref), 1e-12):
            return self._verdict(
                False, f"final loss {final} strayed from fault-free "
                       f"{ref} (rtol {self.loss_rtol})")
        return self._verdict(True)


class CheckpointRestoreOracle(Oracle):
    """Post-fault state survives a checkpoint round-trip bit-exactly.

    Whatever the schedule did, saving the end state and restoring it
    into a fresh session must reproduce every variable exactly
    (save -> restore -> save is a fixed point). Catches recovery paths
    that leave sessions in states checkpoints cannot represent.
    """

    name = "checkpoint_restore"
    harnesses = ("training",)
    summary = "save -> restore -> save of post-fault state is a fixed point"

    def check(self, outcome, baseline, harness):
        import numpy as np
        from repro.framework import checkpoint
        if outcome.error is not None:
            return self._verdict(False, f"run died: {outcome.error}")
        if outcome.model is None:
            return self._verdict(True, "")
        with tempfile.TemporaryDirectory() as tmp:
            first = os.path.join(tmp, "end-state.npz")
            second = os.path.join(tmp, "round-trip.npz")
            checkpoint.save(outcome.model.session, first)
            fresh = harness._model()
            checkpoint.restore(fresh.session, first)
            checkpoint.save(fresh.session, second)
            with np.load(first) as a, np.load(second) as b:
                if sorted(a.files) != sorted(b.files):
                    return self._verdict(
                        False, f"variable sets differ: {sorted(a.files)}"
                               f" vs {sorted(b.files)}")
                for name in a.files:
                    if not np.array_equal(a[name], b[name]):
                        return self._verdict(
                            False,
                            f"variable {name!r} did not survive the "
                            f"checkpoint round-trip bit-exactly")
        return self._verdict(True)


class LivelockOracle(Oracle):
    """The run terminates: no stuck clock, no infinite retry loop.

    Every harness runs on the virtual clock with bounded work; a
    schedule that drives pump/retry cycles forever surfaces either as a
    raised error (the server's drain bail-out) or as runaway virtual
    time. Also catches short-counts: a training run that silently
    produced fewer steps than asked.
    """

    name = "livelock"
    harnesses = ("training", "cluster", "serving", "fleet", "storage")
    summary = "the run terminates with bounded virtual time and full output"

    #: virtual-seconds ceiling, far above any healthy run on these
    #: tiny configs (healthy fleet storms finish in < 1 virtual second)
    max_virtual_seconds = 120.0

    def check(self, outcome, baseline, harness):
        if outcome.error is not None:
            return self._verdict(False, f"run died: {outcome.error}")
        if not math.isfinite(outcome.elapsed) \
                or outcome.elapsed > self.max_virtual_seconds:
            return self._verdict(
                False, f"virtual clock ran to {outcome.elapsed:.1f}s "
                       f"(budget {self.max_virtual_seconds:.0f}s)")
        if outcome.losses is not None \
                and len(outcome.losses) != harness.steps:
            return self._verdict(
                False, f"{len(outcome.losses)} steps completed, "
                       f"{harness.steps} requested")
        return self._verdict(True)


class TraceWellFormedOracle(Oracle):
    """Every injected fault left its recovery visible in the trace.

    Injection without a matching recovery/degradation/restart trail
    means a fault was absorbed silently — the failure mode where a
    recovery path rots because nothing notices it is never exercised.
    Only fault kinds that *must* provoke a visible reaction are held to
    this (e.g. latency injections legitimately pass unremarked).
    """

    name = "trace_well_formed"
    harnesses = ("training", "cluster", "serving", "fleet")
    summary = "every injected fault has a matching recovery event"

    def check(self, outcome, baseline, harness):
        if outcome.error is not None:
            return self._verdict(False, f"run died: {outcome.error}")
        kinds = [kind for _, _, kind, _ in outcome.injected]
        tracer = outcome.tracer
        if harness.name == "training":
            # exception/nan/feed injections must each have provoked a
            # rollback-retry (or skip/giveup) FailureEvent.
            provoking = sum(1 for k in kinds
                            if k in ("exception", "nan", "feed"))
            seen = len(tracer.failure_events())
            if seen < provoking:
                return self._verdict(
                    False, f"{provoking} recovery-demanding injections "
                           f"but only {seen} failure events")
        elif harness.name == "cluster":
            crashes = sum(1 for k in kinds if k == "worker_crash")
            seen = len(tracer.cluster_events("crash"))
            recovered = len(tracer.cluster_events("recover"))
            if seen < crashes or recovered < crashes:
                return self._verdict(
                    False, f"{crashes} injected crashes but trace shows "
                           f"{seen} crash / {recovered} recover events")
        elif harness.name == "serving":
            crashes = sum(1 for k in kinds if k == "replica_crash")
            restarts = len(tracer.serving_events("replica_restart"))
            if restarts < crashes:
                return self._verdict(
                    False, f"{crashes} injected replica crashes but "
                           f"only {restarts} restart events")
        elif harness.name == "fleet":
            report = outcome.report
            outages = sum(1 for k in kinds if k == "zone_outage")
            if report is not None and report.zone_outages < outages:
                return self._verdict(
                    False, f"{outages} injected zone outages but report "
                           f"counts {report.zone_outages}")
            # Multiple bad_rollout specs can all hit the same deploy, so
            # the bar is per started rollout: every rollout that any
            # defect injection fired on must have been rolled back.
            defected = sum(1 for k in kinds if k == "bad_rollout")
            if report is not None and defected \
                    and report.rollbacks < report.rollouts:
                return self._verdict(
                    False, f"{report.rollouts} defective rollout(s) "
                           f"started but only {report.rollbacks} "
                           f"rolled back")
        return self._verdict(True)


class DurabilityOracle(Oracle):
    """Committed checkpoints restore bitwise; commits are atomic.

    The storage contract the tentpole promises (judged against the
    ``durability`` extras the storage harness records):

    * every checkpoint that *committed* (reached its write quorum)
      restores to the exact per-variable state it captured — whatever
      torn writes, bit rot, stale reads, or outages the schedule threw
      at the replicas;
    * a restore never exposes partial state: restore-latest lands
      bitwise on *some* checkpoint attempt (old state or new state,
      nothing in between);
    * restore-latest never silently falls back *behind* the newest
      committed checkpoint.

    Uncommitted attempts carry no durability promise — a failed quorum
    raised at save time, which is the contract working as designed.
    """

    name = "durability"
    harnesses = ("storage",)
    summary = ("every committed checkpoint restores bitwise under "
               "injected storage faults; commits are all-or-nothing")

    def check(self, outcome, baseline, harness):
        if outcome.error is not None:
            return self._verdict(False, f"run died: {outcome.error}")
        durability = outcome.extras.get("durability")
        if durability is None:
            return self._verdict(False, "no durability record in outcome")
        for entry in durability["restores"]:
            if not entry["ok"]:
                return self._verdict(
                    False, f"committed checkpoint {entry['id']} did not "
                           f"restore bitwise: {entry['detail']}")
        committed = [a["id"] for a in durability["attempts"]
                     if a["committed"]]
        latest = durability["latest"]
        if committed:
            if not latest["ok"]:
                return self._verdict(
                    False, f"restore-latest failed with "
                           f"{len(committed)} committed checkpoints "
                           f"available: {latest['detail']}")
            if latest["matches"] is None:
                return self._verdict(
                    False, f"restore-latest (checkpoint {latest['id']}) "
                           f"produced state matching no checkpoint "
                           f"attempt — partial restore")
            if latest["matches"] < max(committed):
                return self._verdict(
                    False, f"restore-latest landed on state of attempt "
                           f"{latest['matches']}, behind the newest "
                           f"committed checkpoint {max(committed)}")
        elif latest["ok"] and latest["matches"] is None:
            return self._verdict(
                False, "restore-latest succeeded with nothing committed "
                       "but matches no attempt's state — partial restore")
        return self._verdict(True)


#: oracle name -> instance (the CLI's --oracle choices)
ORACLES: dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (TerminalRepliesOracle(), BitIdentityOracle(),
                   ConvergenceOracle(), ByzantineDetectionOracle(),
                   CheckpointRestoreOracle(), LivelockOracle(),
                   TraceWellFormedOracle(), DurabilityOracle())
}


def oracles_for(harness_name: str,
                names: tuple[str, ...] | None = None) -> list[Oracle]:
    """The oracles applicable to ``harness_name``.

    Args:
        names: restrict to this subset (raises on unknown names);
            ``None`` selects every applicable oracle.
    """
    if names is not None:
        unknown = [n for n in names if n not in ORACLES]
        if unknown:
            raise ValueError(
                f"unknown oracle(s) {unknown}; expected a subset of "
                f"{sorted(ORACLES)}")
        selected = [ORACLES[n] for n in names]
    else:
        selected = list(ORACLES.values())
    return [o for o in selected if o.applies_to(harness_name)]
