"""The campaign engine: systematic fault-space search with oracles.

A campaign turns "imagine what could go wrong" into mechanical search:

1. **Enumerate** fault schedules from the harness's atomic candidates —
   all singletons, then pairs, triples, ... up to ``max_faults`` —
   crossed with the spec's seeds. When the space exceeds the budget,
   a seeded sample (without replacement) keeps the run deterministic.
2. **Execute** each schedule on a fresh harness instance, entirely on
   the virtual clock.
3. **Judge** every applicable invariant oracle on the outcome against
   the cached fault-free baseline.
4. **Minimize** any violation with delta debugging down to a 1-minimal
   reproducer, and emit it as a ready-to-run replay file.

The whole campaign narrates itself as
:class:`~repro.chaos.events.CampaignEvent` records through an optional
tracer, so a campaign trace replays its verdict history like any other
trace in the stack.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.framework.faults import (BaseFaultPlan, plan_from_json,
                                    plan_to_json)

from .events import CampaignEvent
from .harnesses import CampaignHarness, build_harness
from .minimize import MinimizeResult, ddmin
from .oracles import Oracle, Verdict, oracles_for

REPRODUCER_KIND = "repro-chaos-reproducer"
REPRODUCER_VERSION = 1


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one campaign.

    Args:
        harness: adapter name (``training``/``cluster``/``serving``/
            ``fleet``/``storage``).
        workload: Fathom workload to drive.
        config: workload config name.
        steps: training steps per run (training/cluster harnesses);
            ``None`` keeps the harness default.
        requests: load-generator requests per run (serving/fleet);
            ``None`` keeps the harness default (the fleet needs more
            requests than one server to carry its rollout through
            canary conviction).
        budget: max fault schedules to execute (the baseline run is
            free; minimization runs are separate).
        max_faults: largest schedule size to compose from atomic
            candidates.
        seeds: plan seeds each schedule is crossed with (distinct seeds
            re-draw every probabilistic trigger).
        oracles: restrict to these oracle names (``None`` = every
            applicable oracle).
        sample_seed: RNG seed used only when the schedule space
            overflows the budget and must be sampled.
        replicas: replica-store count (storage harness only); ``None``
            keeps the harness default.
    """

    harness: str = "training"
    workload: str = "memnet"
    config: str = "tiny"
    steps: int | None = None
    requests: int | None = None
    budget: int = 24
    max_faults: int = 2
    seeds: tuple[int, ...] = (0,)
    oracles: tuple[str, ...] | None = None
    sample_seed: int = 0
    replicas: int | None = None

    def build_harness(self) -> CampaignHarness:
        kw = {"workload": self.workload, "config": self.config}
        if self.steps is not None:
            kw["steps"] = self.steps
        if self.requests is not None:
            kw["requests"] = self.requests
        if self.replicas is not None:
            kw["replicas"] = self.replicas
        return build_harness(self.harness, **kw)

    def to_json(self) -> dict:
        return {"harness": self.harness, "workload": self.workload,
                "config": self.config, "steps": self.steps,
                "requests": self.requests, "budget": self.budget,
                "max_faults": self.max_faults,
                "seeds": list(self.seeds),
                "oracles": (list(self.oracles)
                            if self.oracles is not None else None),
                "sample_seed": self.sample_seed,
                "replicas": self.replicas}


@dataclass
class Violation:
    """One oracle failure on one executed schedule."""

    schedule_index: int
    plan: BaseFaultPlan
    oracle: str
    detail: str
    minimized: BaseFaultPlan | None = None
    minimize_stats: MinimizeResult | None = None

    def to_json(self) -> dict:
        blob = {"schedule_index": self.schedule_index,
                "oracle": self.oracle, "detail": self.detail,
                "plan": plan_to_json(self.plan)}
        if self.minimized is not None:
            blob["minimized"] = plan_to_json(self.minimized)
            blob["minimize_tests"] = self.minimize_stats.tests_run
        return blob


@dataclass
class CampaignResult:
    """Everything one campaign run established."""

    spec: CampaignSpec
    executed: int = 0
    schedule_space: int = 0
    verdicts: int = 0
    violations: list[Violation] = field(default_factory=list)
    oracle_names: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> dict:
        return {"kind": "repro-chaos-report",
                "spec": self.spec.to_json(),
                "executed": self.executed,
                "schedule_space": self.schedule_space,
                "verdicts": self.verdicts,
                "oracles": list(self.oracle_names),
                "ok": self.ok,
                "violations": [v.to_json() for v in self.violations]}


def enumerate_schedules(atoms: list, max_faults: int) -> list[tuple]:
    """All spec combinations of size 1..max_faults, deterministic order.

    Singletons first (cheapest reproducers), then pairs in index order,
    and so on — so a budget-truncated prefix still covers every atomic
    fault before exploring interactions.
    """
    from itertools import combinations
    schedules: list[tuple] = []
    for size in range(1, max(1, max_faults) + 1):
        schedules.extend(combinations(atoms, size))
    return schedules


def _plan_summary(plan: BaseFaultPlan) -> str:
    kinds = ",".join(spec.kind for spec in plan.specs)
    return f"{len(plan.specs)} fault(s) [{kinds}] seed={plan.seed}"


class _Narrator:
    """Routes campaign events to an optional tracer."""

    def __init__(self, tracer, harness_name: str):
        self.tracer = tracer
        self.harness_name = harness_name

    def emit(self, step: int, kind: str, *, oracle=None, ok=None,
             seconds_lost: float = 0.0, detail: str = "") -> None:
        if self.tracer is None:
            return
        record = getattr(self.tracer, "record_event", None)
        if record is not None:
            record(CampaignEvent(step=step, kind=kind, oracle=oracle,
                                 harness=self.harness_name, ok=ok,
                                 seconds_lost=seconds_lost,
                                 detail=detail))


def run_campaign(spec: CampaignSpec,
                 harness: CampaignHarness | None = None,
                 extra_plans: tuple[BaseFaultPlan, ...] = (),
                 tracer=None, minimize: bool = True,
                 log=None) -> CampaignResult:
    """Execute one campaign; returns its result (never raises on
    violations — they are the product).

    Args:
        harness: pre-built adapter (tests substitute broken fixtures);
            built from the spec when ``None``.
        extra_plans: schedules to check before the enumerated space
            (e.g. the shipped CLI presets) — they count against the
            budget.
        tracer: optional tracer receiving CampaignEvent narration.
        minimize: delta-debug each violation down to a minimal
            reproducer (skip when the caller only wants detection).
        log: optional ``print``-like callable for progress lines.
    """
    harness = harness if harness is not None else spec.build_harness()
    oracles = oracles_for(harness.name, spec.oracles)
    narrator = _Narrator(tracer, harness.name)
    say = log if log is not None else (lambda *_: None)

    baseline = harness.baseline()
    if baseline.error is not None:
        raise RuntimeError(
            f"the fault-free baseline itself failed: {baseline.error}")
    narrator.emit(-1, "baseline", seconds_lost=baseline.elapsed,
                  detail=f"fault-free reference on {spec.workload}")

    atoms = harness.atomic_specs()
    combos = enumerate_schedules(atoms, spec.max_faults)
    schedules: list[BaseFaultPlan] = list(extra_plans)
    schedules += [harness.make_plan(list(combo), seed=seed)
                  for combo in combos for seed in spec.seeds]
    space = len(schedules)
    if space > spec.budget:
        # Deterministic sample: keep the extra plans and the budget's
        # worth of enumerated schedules, chosen by the seeded RNG but
        # replayed in enumeration order.
        rng = np.random.default_rng(spec.sample_seed)
        keep = min(len(extra_plans), spec.budget)
        pool = range(keep, space)
        chosen = rng.choice(len(pool), size=spec.budget - keep,
                            replace=False)
        picked = sorted(int(pool[i]) for i in chosen)
        schedules = schedules[:keep] + [schedules[i] for i in picked]
        say(f"schedule space {space} exceeds budget {spec.budget}; "
            f"sampling deterministically (seed {spec.sample_seed})")

    result = CampaignResult(
        spec=spec, schedule_space=space,
        oracle_names=tuple(o.name for o in oracles))

    for index, plan in enumerate(schedules):
        outcome = harness.run(plan)
        result.executed += 1
        narrator.emit(index, "schedule", seconds_lost=outcome.elapsed,
                      detail=_plan_summary(plan))
        for oracle in oracles:
            verdict = oracle.check(outcome, baseline, harness)
            result.verdicts += 1
            narrator.emit(index, "verdict", oracle=oracle.name,
                          ok=verdict.ok, detail=verdict.detail)
            if verdict.ok:
                continue
            violation = Violation(schedule_index=index, plan=plan,
                                  oracle=oracle.name,
                                  detail=verdict.detail)
            result.violations.append(violation)
            narrator.emit(index, "violation", oracle=oracle.name,
                          ok=False, detail=verdict.detail)
            say(f"violation: schedule {index} "
                f"({_plan_summary(plan)}) broke {oracle.name}: "
                f"{verdict.detail}")
            if minimize:
                minimize_violation(harness, violation, narrator=narrator)
                say(f"  minimized to "
                    f"{_plan_summary(violation.minimized)} in "
                    f"{violation.minimize_stats.tests_run} runs")
    return result


def minimize_violation(harness: CampaignHarness, violation: Violation,
                       narrator: _Narrator | None = None) -> Violation:
    """Delta-debug a violation's schedule to a 1-minimal reproducer.

    Mutates (and returns) ``violation`` with the minimized plan and the
    search statistics. Deterministic: same violation, same harness ->
    same minimal schedule, always.
    """
    from .oracles import ORACLES
    oracle = ORACLES[violation.oracle]
    baseline = harness.baseline()
    plan = violation.plan

    def fails(specs) -> bool:
        if not specs:
            return False
        candidate = harness.make_plan(specs, seed=plan.seed)
        outcome = harness.run(candidate)
        return not oracle.check(outcome, baseline, harness).ok

    stats = ddmin(plan.specs, fails)
    violation.minimized = harness.make_plan(list(stats.specs),
                                            seed=plan.seed)
    violation.minimize_stats = stats
    if narrator is not None:
        narrator.emit(
            violation.schedule_index, "minimized",
            oracle=violation.oracle, ok=False,
            detail=f"{len(plan.specs)} -> {stats.size} fault(s) in "
                   f"{stats.tests_run} runs ({stats.cache_hits} cached)")
    return violation


# -- reproducer files --------------------------------------------------------


def write_reproducer(path: str | os.PathLike,
                     harness: CampaignHarness,
                     violation: Violation) -> dict:
    """Emit a violation as a ready-to-run replay file.

    The file carries everything needed to re-provoke the violation from
    a clean checkout: the harness recipe, the (minimized, if available)
    fault plan with its seed, the violated oracle, and the replay
    command. Returns the written blob.
    """
    plan = violation.minimized or violation.plan
    blob = {"kind": REPRODUCER_KIND, "version": REPRODUCER_VERSION,
            **harness.describe(),
            "oracle": violation.oracle,
            "detail": violation.detail,
            "plan": plan_to_json(plan),
            "replay": f"python -m repro chaos replay {os.fspath(path)}"}
    with open(path, "w") as handle:
        json.dump(blob, handle, indent=2)
        handle.write("\n")
    return blob


def load_reproducer(path: str | os.PathLike) -> dict:
    """Load and validate a reproducer/replay file."""
    with open(path) as handle:
        blob = json.load(handle)
    if blob.get("kind") != REPRODUCER_KIND:
        raise ValueError(f"{os.fspath(path)}: not a chaos reproducer "
                         f"file (kind {blob.get('kind')!r})")
    if blob.get("version") != REPRODUCER_VERSION:
        raise ValueError(f"{os.fspath(path)}: unsupported reproducer "
                         f"version {blob.get('version')!r}")
    return blob


def replay_reproducer(path: str | os.PathLike,
                      tracer=None) -> tuple[list[Verdict], dict]:
    """Re-run a reproducer file's schedule and judge its oracle.

    Returns ``(verdicts, blob)`` — one verdict for the recorded oracle
    (or every applicable oracle if the file predates oracle tagging).
    A failing verdict means the violation still reproduces.
    """
    blob = load_reproducer(path)
    kw = {}
    if blob.get("replicas") is not None:
        kw["replicas"] = blob["replicas"]
    harness = build_harness(blob["harness"], workload=blob["workload"],
                            config=blob["config"], seed=blob["seed"],
                            steps=blob["steps"],
                            requests=blob["requests"], **kw)
    plan = plan_from_json(blob["plan"])
    names = (blob["oracle"],) if blob.get("oracle") else None
    oracles = oracles_for(harness.name, names)
    narrator = _Narrator(tracer, harness.name)
    baseline = harness.baseline()
    outcome = harness.run(plan)
    narrator.emit(0, "schedule", seconds_lost=outcome.elapsed,
                  detail=_plan_summary(plan))
    verdicts = []
    for oracle in oracles:
        verdict = oracle.check(outcome, baseline, harness)
        verdicts.append(verdict)
        narrator.emit(0, "verdict", oracle=oracle.name, ok=verdict.ok,
                      detail=verdict.detail)
    return verdicts, blob
