"""Synthetic MNIST substitute for the variational autoencoder.

The VAE (Kingma & Welling, 2014) trains on 28x28 grayscale digits scaled
to [0, 1]. We generate digit-like images from ten fixed stroke templates
plus pixel noise — enough low-dimensional structure that a small VAE's
evidence lower bound measurably improves during the correctness tests.
"""

from __future__ import annotations

import numpy as np

from .synthetic import SyntheticDataset, class_templates


class SyntheticMNIST(SyntheticDataset):
    """Digit-like images in [0, 1], flattened to 784-vectors."""

    def __init__(self, image_size: int = 28, num_classes: int = 10,
                 noise: float = 0.15, seed: int = 0):
        super().__init__(seed)
        self.image_size = image_size
        self.num_classes = num_classes
        self.noise = noise
        template_rng = np.random.default_rng(seed + 7)
        raw = class_templates(template_rng, num_classes,
                              (image_size, image_size), smoothness=5)
        # Threshold the smooth fields into stroke-like binary masks.
        self._templates = (raw > 0.3).astype(np.float32)

    def sample_batch(self, batch_size: int) -> dict[str, np.ndarray]:
        labels = self.rng.integers(0, self.num_classes, size=batch_size)
        images = self._templates[labels].copy()
        images += self.noise * self.rng.standard_normal(
            images.shape).astype(np.float32)
        images = np.clip(images, 0.0, 1.0)
        flat = images.reshape(batch_size, self.image_size * self.image_size)
        return {"images": flat, "labels": labels.astype(np.int32)}
