"""Real-dataset loaders with synthetic fallback.

The paper runs on the original datasets "whenever possible". This
environment ships none of them, but users with local copies should not
be stuck with the synthetic substitutes, so this module implements the
relevant file formats from scratch:

* IDX (``train-images-idx3-ubyte`` etc.) — MNIST's container format.

:func:`mnist_dataset` returns a real-file-backed dataset when the files
are present and the synthetic substitute otherwise, behind the same
``sample_batch`` interface.

Real files also mean real corruption: a mislabeled row, a truncated
image, a stray float64 column. :class:`ResilientBatchIterator` hardens
batch iteration against such samples — a sample whose shape or dtype
does not match the expected feed spec is skipped and logged (bounded to
``max_consecutive_skips`` before raising) instead of crashing the epoch
mid-training, and skips are counted in the iterator's :class:`LoaderStats`.
"""

from __future__ import annotations

import gzip
import logging
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from .mnist import SyntheticMNIST
from .synthetic import SyntheticDataset

logger = logging.getLogger("repro.data")

_IDX_DTYPES = {
    0x08: np.uint8,
    0x09: np.int8,
    0x0B: np.dtype(">i2"),
    0x0C: np.dtype(">i4"),
    0x0D: np.dtype(">f4"),
    0x0E: np.dtype(">f8"),
}


class IdxFormatError(ValueError):
    """Raised for malformed IDX files."""


def load_idx(path: str | os.PathLike) -> np.ndarray:
    """Parse an IDX file (optionally gzipped) into a numpy array.

    The format: two zero bytes, a dtype code, the rank, then rank
    big-endian uint32 dimensions, then the row-major data.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rb") as handle:
        header = handle.read(4)
        if len(header) != 4 or header[0] != 0 or header[1] != 0:
            raise IdxFormatError(f"{path}: bad IDX magic {header!r}")
        dtype_code, rank = header[2], header[3]
        if dtype_code not in _IDX_DTYPES:
            raise IdxFormatError(
                f"{path}: unknown IDX dtype code 0x{dtype_code:02x}")
        dims = struct.unpack(f">{rank}I", handle.read(4 * rank))
        dtype = np.dtype(_IDX_DTYPES[dtype_code])
        count = int(np.prod(dims)) if dims else 1
        payload = handle.read(count * dtype.itemsize)
        if len(payload) != count * dtype.itemsize:
            raise IdxFormatError(
                f"{path}: truncated payload ({len(payload)} bytes for "
                f"shape {dims})")
        array = np.frombuffer(payload, dtype=dtype).reshape(dims)
        return array


def write_idx(path: str | os.PathLike, array: np.ndarray) -> None:
    """Write an array as an IDX file (used by tests and for round-trips)."""
    codes = {np.dtype(np.uint8): 0x08, np.dtype(np.int8): 0x09,
             np.dtype(">i2"): 0x0B, np.dtype(">i4"): 0x0C,
             np.dtype(">f4"): 0x0D, np.dtype(">f8"): 0x0E}
    if array.dtype == np.float32:
        array = array.astype(">f4")
    if array.dtype == np.int32:
        array = array.astype(">i4")
    if array.dtype not in codes:
        raise IdxFormatError(f"cannot encode dtype {array.dtype} as IDX")
    with open(path, "wb") as handle:
        handle.write(bytes([0, 0, codes[array.dtype], array.ndim]))
        handle.write(struct.pack(f">{array.ndim}I", *array.shape))
        handle.write(array.tobytes())


class FileMNIST(SyntheticDataset):
    """MNIST from real IDX files, behind the synthetic interface."""

    def __init__(self, images_path, labels_path, seed: int = 0):
        super().__init__(seed)
        raw_images = load_idx(images_path)
        raw_labels = load_idx(labels_path)
        if raw_images.ndim != 3:
            raise IdxFormatError(
                f"expected rank-3 image tensor, got {raw_images.shape}")
        if raw_labels.shape[0] != raw_images.shape[0]:
            raise IdxFormatError(
                f"{raw_images.shape[0]} images but "
                f"{raw_labels.shape[0]} labels")
        self.image_size = raw_images.shape[1]
        self._images = (raw_images.astype(np.float32) / 255.0).reshape(
            raw_images.shape[0], -1)
        self._labels = raw_labels.astype(np.int32)

    def __len__(self) -> int:
        return self._images.shape[0]

    def sample_batch(self, batch_size: int) -> dict[str, np.ndarray]:
        idx = self.rng.integers(0, len(self), size=batch_size)
        return {"images": self._images[idx].copy(),
                "labels": self._labels[idx].copy()}


class SampleSkipLimitError(ValueError):
    """Too many consecutive malformed samples; the stream is unusable.

    Raised by :class:`ResilientBatchIterator` when more than
    ``max_consecutive_skips`` samples in a row fail validation — at that
    point the mismatches are systematic (wrong file, wrong spec), not
    sporadic corruption, and silently skipping forever would hide it.
    """

    def __init__(self, message: str, skipped: int):
        super().__init__(message)
        self.skipped = skipped


@dataclass
class LoaderStats:
    """Counters a :class:`ResilientBatchIterator` maintains while iterating."""

    samples: int = 0          #: valid samples yielded into batches
    batches: int = 0          #: complete batches produced
    skipped: int = 0          #: malformed samples skipped (total)
    skip_reasons: list[str] = field(default_factory=list)


class ResilientBatchIterator:
    """Batch iteration that survives malformed samples.

    Wraps a stream of per-sample feed dicts (``name -> array``) and
    yields stacked batches of ``batch_size``. Each sample is validated
    against ``spec`` — a mapping from feed name to ``(shape, dtype)``
    where ``shape`` is the per-sample shape (no batch dimension). A
    sample with a missing key, a wrong shape, or an incompatible dtype
    is *skipped and logged* rather than crashing mid-epoch; int inputs
    are accepted for float specs (and safely cast), but lossy casts are
    rejected. More than ``max_consecutive_skips`` skips in a row raise
    :class:`SampleSkipLimitError`, so a systematically wrong stream
    still fails fast. Skips are counted in :attr:`stats`.
    """

    def __init__(self, samples: Iterable[Mapping[str, np.ndarray]],
                 spec: Mapping[str, tuple[tuple[int, ...], np.dtype]],
                 batch_size: int, max_consecutive_skips: int = 8,
                 drop_remainder: bool = True):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._samples = iter(samples)
        self.spec = {name: (tuple(shape), np.dtype(dtype))
                     for name, (shape, dtype) in spec.items()}
        self.batch_size = batch_size
        self.max_consecutive_skips = max_consecutive_skips
        self.drop_remainder = drop_remainder
        self.stats = LoaderStats()
        self._consecutive_skips = 0

    def _validate(self, sample: Mapping[str, np.ndarray]) -> \
            "dict[str, np.ndarray] | str":
        """A normalized sample dict, or a skip-reason string."""
        if not isinstance(sample, Mapping):
            return f"sample is {type(sample).__name__}, not a mapping"
        normalized = {}
        for name, (shape, dtype) in self.spec.items():
            if name not in sample:
                return f"missing feed {name!r}"
            value = np.asarray(sample[name])
            if value.shape != shape:
                return (f"feed {name!r} has shape {value.shape}, "
                        f"expected {shape}")
            if value.dtype != dtype:
                if not np.can_cast(value.dtype, dtype, casting="safe"):
                    return (f"feed {name!r} has dtype {value.dtype}, "
                            f"cannot safely cast to {dtype}")
                value = value.astype(dtype)
            normalized[name] = value
        return normalized

    def __iter__(self):
        batch: list[dict[str, np.ndarray]] = []
        for sample in self._samples:
            result = self._validate(sample)
            if isinstance(result, str):
                self.stats.skipped += 1
                self.stats.skip_reasons.append(result)
                self._consecutive_skips += 1
                logger.warning("skipping malformed sample: %s", result)
                if self._consecutive_skips > self.max_consecutive_skips:
                    raise SampleSkipLimitError(
                        f"gave up after {self._consecutive_skips} "
                        f"consecutive malformed samples (last: {result})",
                        skipped=self.stats.skipped)
                continue
            self._consecutive_skips = 0
            self.stats.samples += 1
            batch.append(result)
            if len(batch) == self.batch_size:
                self.stats.batches += 1
                yield {name: np.stack([s[name] for s in batch])
                       for name in self.spec}
                batch = []
        if batch and not self.drop_remainder:
            self.stats.batches += 1
            yield {name: np.stack([s[name] for s in batch])
                   for name in self.spec}


def mnist_dataset(data_dir: str | os.PathLike | None = None,
                  seed: int = 0):
    """Real MNIST if IDX files exist under ``data_dir``, else synthetic.

    Looks for ``train-images-idx3-ubyte[.gz]`` and
    ``train-labels-idx1-ubyte[.gz]``.
    """
    if data_dir is not None:
        directory = Path(data_dir)
        for suffix in ("", ".gz"):
            images = directory / f"train-images-idx3-ubyte{suffix}"
            labels = directory / f"train-labels-idx1-ubyte{suffix}"
            if images.exists() and labels.exists():
                return FileMNIST(images, labels, seed=seed)
    return SyntheticMNIST(seed=seed)
