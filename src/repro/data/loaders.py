"""Real-dataset loaders with synthetic fallback.

The paper runs on the original datasets "whenever possible". This
environment ships none of them, but users with local copies should not
be stuck with the synthetic substitutes, so this module implements the
relevant file formats from scratch:

* IDX (``train-images-idx3-ubyte`` etc.) — MNIST's container format.

:func:`mnist_dataset` returns a real-file-backed dataset when the files
are present and the synthetic substitute otherwise, behind the same
``sample_batch`` interface.
"""

from __future__ import annotations

import gzip
import os
import struct
from pathlib import Path

import numpy as np

from .mnist import SyntheticMNIST
from .synthetic import SyntheticDataset

_IDX_DTYPES = {
    0x08: np.uint8,
    0x09: np.int8,
    0x0B: np.dtype(">i2"),
    0x0C: np.dtype(">i4"),
    0x0D: np.dtype(">f4"),
    0x0E: np.dtype(">f8"),
}


class IdxFormatError(ValueError):
    """Raised for malformed IDX files."""


def load_idx(path: str | os.PathLike) -> np.ndarray:
    """Parse an IDX file (optionally gzipped) into a numpy array.

    The format: two zero bytes, a dtype code, the rank, then rank
    big-endian uint32 dimensions, then the row-major data.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rb") as handle:
        header = handle.read(4)
        if len(header) != 4 or header[0] != 0 or header[1] != 0:
            raise IdxFormatError(f"{path}: bad IDX magic {header!r}")
        dtype_code, rank = header[2], header[3]
        if dtype_code not in _IDX_DTYPES:
            raise IdxFormatError(
                f"{path}: unknown IDX dtype code 0x{dtype_code:02x}")
        dims = struct.unpack(f">{rank}I", handle.read(4 * rank))
        dtype = np.dtype(_IDX_DTYPES[dtype_code])
        count = int(np.prod(dims)) if dims else 1
        payload = handle.read(count * dtype.itemsize)
        if len(payload) != count * dtype.itemsize:
            raise IdxFormatError(
                f"{path}: truncated payload ({len(payload)} bytes for "
                f"shape {dims})")
        array = np.frombuffer(payload, dtype=dtype).reshape(dims)
        return array


def write_idx(path: str | os.PathLike, array: np.ndarray) -> None:
    """Write an array as an IDX file (used by tests and for round-trips)."""
    codes = {np.dtype(np.uint8): 0x08, np.dtype(np.int8): 0x09,
             np.dtype(">i2"): 0x0B, np.dtype(">i4"): 0x0C,
             np.dtype(">f4"): 0x0D, np.dtype(">f8"): 0x0E}
    if array.dtype == np.float32:
        array = array.astype(">f4")
    if array.dtype == np.int32:
        array = array.astype(">i4")
    if array.dtype not in codes:
        raise IdxFormatError(f"cannot encode dtype {array.dtype} as IDX")
    with open(path, "wb") as handle:
        handle.write(bytes([0, 0, codes[array.dtype], array.ndim]))
        handle.write(struct.pack(f">{array.ndim}I", *array.shape))
        handle.write(array.tobytes())


class FileMNIST(SyntheticDataset):
    """MNIST from real IDX files, behind the synthetic interface."""

    def __init__(self, images_path, labels_path, seed: int = 0):
        super().__init__(seed)
        raw_images = load_idx(images_path)
        raw_labels = load_idx(labels_path)
        if raw_images.ndim != 3:
            raise IdxFormatError(
                f"expected rank-3 image tensor, got {raw_images.shape}")
        if raw_labels.shape[0] != raw_images.shape[0]:
            raise IdxFormatError(
                f"{raw_images.shape[0]} images but "
                f"{raw_labels.shape[0]} labels")
        self.image_size = raw_images.shape[1]
        self._images = (raw_images.astype(np.float32) / 255.0).reshape(
            raw_images.shape[0], -1)
        self._labels = raw_labels.astype(np.int32)

    def __len__(self) -> int:
        return self._images.shape[0]

    def sample_batch(self, batch_size: int) -> dict[str, np.ndarray]:
        idx = self.rng.integers(0, len(self), size=batch_size)
        return {"images": self._images[idx].copy(),
                "labels": self._labels[idx].copy()}


def mnist_dataset(data_dir: str | os.PathLike | None = None,
                  seed: int = 0):
    """Real MNIST if IDX files exist under ``data_dir``, else synthetic.

    Looks for ``train-images-idx3-ubyte[.gz]`` and
    ``train-labels-idx1-ubyte[.gz]``.
    """
    if data_dir is not None:
        directory = Path(data_dir)
        for suffix in ("", ".gz"):
            images = directory / f"train-images-idx3-ubyte{suffix}"
            labels = directory / f"train-labels-idx1-ubyte{suffix}"
            if images.exists() and labels.exists():
                return FileMNIST(images, labels, seed=seed)
    return SyntheticMNIST(seed=seed)
