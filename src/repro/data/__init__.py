"""Seeded synthetic substitutes for the Fathom datasets.

======== ===================== =============================
Workload Paper's dataset       Substitute
======== ===================== =============================
seq2seq  WMT-15                :class:`~repro.data.wmt.SyntheticWMT`
memnet   bAbI                  :class:`~repro.data.babi.SyntheticBabi`
speech   TIMIT                 :class:`~repro.data.timit.SyntheticTIMIT`
autoenc  MNIST                 :class:`~repro.data.mnist.SyntheticMNIST`
residual ImageNet              :class:`~repro.data.imagenet.SyntheticImageNet`
vgg      ImageNet              :class:`~repro.data.imagenet.SyntheticImageNet`
alexnet  ImageNet              :class:`~repro.data.imagenet.SyntheticImageNet`
deepq    Atari ALE             :mod:`repro.rl.ale`
======== ===================== =============================

See DESIGN.md for why each substitution preserves the behaviour the
paper measures.
"""

from .babi import SyntheticBabi
from .imagenet import SyntheticImageNet
from .loaders import FileMNIST, load_idx, mnist_dataset, write_idx
from .mnist import SyntheticMNIST
from .ptb import SyntheticPTB
from .synthetic import SyntheticDataset, class_templates
from .timit import TIMIT_FOLDED_PHONES, SyntheticTIMIT
from .wmt import EOS_ID, FIRST_WORD_ID, GO_ID, PAD_ID, SyntheticWMT

__all__ = [
    "SyntheticBabi", "SyntheticImageNet", "SyntheticMNIST",
    "SyntheticDataset", "class_templates",
    "FileMNIST", "load_idx", "mnist_dataset", "write_idx",
    "SyntheticPTB",
    "TIMIT_FOLDED_PHONES", "SyntheticTIMIT",
    "EOS_ID", "FIRST_WORD_ID", "GO_ID", "PAD_ID", "SyntheticWMT",
]
