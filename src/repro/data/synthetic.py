"""Shared infrastructure for seeded synthetic datasets.

Each Fathom workload trains on a dataset we cannot redistribute
(ImageNet, WMT, TIMIT, ...) or that is impractical here. Performance
characterization depends on the *shapes and statistics* of the data
flowing through the operations, not on the semantic content, so every
dataset module in this package generates seeded synthetic data with the
original's dimensions — and, where cheap, with enough learnable structure
that training losses genuinely decrease (used by the correctness tests).
"""

from __future__ import annotations

import numpy as np


class SyntheticDataset:
    """Base class: a seeded generator of minibatches.

    Subclasses implement :meth:`sample_batch` returning a dict of numpy
    arrays keyed by the names their workload's placeholders expect.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def sample_batch(self, batch_size: int) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def batches(self, batch_size: int, count: int):
        """Yield ``count`` minibatches."""
        for _ in range(count):
            yield self.sample_batch(batch_size)


def class_templates(rng: np.random.Generator, num_classes: int,
                    shape: tuple[int, ...], smoothness: int = 4) -> np.ndarray:
    """Smooth per-class template patterns.

    Generates low-frequency noise by upsampling a coarse grid, giving each
    class a distinctive spatial signature that a small model can learn to
    separate — a stand-in for natural-image class structure.
    """
    if len(shape) < 2:
        raise ValueError(f"templates need a 2-D spatial shape, got {shape}")
    coarse_shape = tuple(max(1, d // smoothness) for d in shape[:2]) + shape[2:]
    templates = np.empty((num_classes,) + shape, dtype=np.float32)
    for cls in range(num_classes):
        coarse = rng.standard_normal(coarse_shape).astype(np.float32)
        templates[cls] = _upsample2d(coarse, shape[:2])
    return templates


def _upsample2d(coarse: np.ndarray, target_hw: tuple[int, int]) -> np.ndarray:
    """Nearest-neighbour upsample of the two leading spatial dims."""
    height, width = target_hw
    rows = np.linspace(0, coarse.shape[0] - 1, height).round().astype(int)
    cols = np.linspace(0, coarse.shape[1] - 1, width).round().astype(int)
    return coarse[np.ix_(rows, cols)]
