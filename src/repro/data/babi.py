"""Procedural bAbI-style question answering for end-to-end memory networks.

memnet trains on Facebook's bAbI tasks (Weston et al., 2015). We generate
the canonical task 1 ("single supporting fact") procedurally: a story is
a sequence of "<actor> moved to the <location>" statements, and the
question "where is <actor>?" is answered by the actor's most recent
location. This is a *real* reasoning task with the same memory-addressing
code path as bAbI — the model must learn to attend to the right statement
— not just shape-compatible noise.

Stories are encoded bag-of-words style as fixed-size integer tensors
``(memory_size, sentence_length)``, queries as ``(sentence_length,)``,
answers as a single class index, matching Sukhbaatar et al.'s input
representation.
"""

from __future__ import annotations

import numpy as np

from .synthetic import SyntheticDataset

PAD_ID = 0

_ACTORS = ["mary", "john", "sandra", "daniel", "emma", "liam", "olivia",
           "noah"]
_LOCATIONS = ["kitchen", "garden", "office", "bathroom", "hallway",
              "bedroom", "cellar", "balcony"]
_VERBS = ["moved", "went", "journeyed", "travelled"]
_OBJECTS = ["football", "apple", "milk", "book", "key", "lamp"]


class SyntheticBabi(SyntheticDataset):
    """Single-supporting-fact stories with answerable 'where is X' queries."""

    SENTENCE_LENGTH = 4  # actor, verb, "to-the", location

    def __init__(self, memory_size: int = 10, num_actors: int = 4,
                 num_locations: int = 6, seed: int = 0):
        super().__init__(seed)
        if not 1 <= num_actors <= len(_ACTORS):
            raise ValueError(f"num_actors must be in [1, {len(_ACTORS)}]")
        if not 2 <= num_locations <= len(_LOCATIONS):
            raise ValueError(
                f"num_locations must be in [2, {len(_LOCATIONS)}]")
        self.memory_size = memory_size
        self.actors = _ACTORS[:num_actors]
        self.locations = _LOCATIONS[:num_locations]
        self.verbs = _VERBS
        # Vocabulary: PAD, then actors, verbs, glue, locations, "where".
        self.vocab = (["<pad>"] + self.actors + self.verbs + ["to-the"]
                      + self.locations + ["where-is"])
        self.word_to_id = {word: i for i, word in enumerate(self.vocab)}
        self.vocab_size = len(self.vocab)
        # Answers are locations; the answer class index is the location
        # index (not its vocab id), matching the usual bAbI setup of a
        # softmax over candidate answers.
        self.num_answers = num_locations

    def _sentence_ids(self, actor: str, verb: str, location: str) -> list[int]:
        return [self.word_to_id[actor], self.word_to_id[verb],
                self.word_to_id["to-the"], self.word_to_id[location]]

    def sample_story(self) -> tuple[np.ndarray, np.ndarray, int]:
        """One (story, query, answer) triple.

        The story always contains at least one statement about the queried
        actor, so every question is answerable.
        """
        story = np.full((self.memory_size, self.SENTENCE_LENGTH), PAD_ID,
                        dtype=np.int32)
        num_statements = int(self.rng.integers(
            max(2, self.memory_size // 2), self.memory_size + 1))
        last_location: dict[str, str] = {}
        for line in range(num_statements):
            actor = self.actors[int(self.rng.integers(len(self.actors)))]
            verb = self.verbs[int(self.rng.integers(len(self.verbs)))]
            location = self.locations[
                int(self.rng.integers(len(self.locations)))]
            story[line] = self._sentence_ids(actor, verb, location)
            last_location[actor] = location
        queried = self.rng.choice(sorted(last_location))
        query = np.full(self.SENTENCE_LENGTH, PAD_ID, dtype=np.int32)
        query[0] = self.word_to_id["where-is"]
        query[1] = self.word_to_id[queried]
        answer = self.locations.index(last_location[queried])
        return story, query, answer

    def sample_batch(self, batch_size: int) -> dict[str, np.ndarray]:
        stories = np.empty(
            (batch_size, self.memory_size, self.SENTENCE_LENGTH),
            dtype=np.int32)
        queries = np.empty((batch_size, self.SENTENCE_LENGTH),
                           dtype=np.int32)
        answers = np.empty(batch_size, dtype=np.int32)
        for b in range(batch_size):
            stories[b], queries[b], answers[b] = self.sample_story()
        return {"stories": stories, "queries": queries, "answers": answers}


class SyntheticBabiTwoFacts(SyntheticDataset):
    """bAbI task 2: two supporting facts.

    Actors move between locations and pick up / put down objects; the
    question "where is the <object>?" requires chaining two facts — who
    last handled the object, and where that actor was at the relevant
    time. This is the task the multi-hop attention of end-to-end memory
    networks exists for.
    """

    SENTENCE_LENGTH = 4

    def __init__(self, memory_size: int = 12, num_actors: int = 3,
                 num_locations: int = 4, num_objects: int = 3,
                 seed: int = 0):
        super().__init__(seed)
        if not 1 <= num_actors <= len(_ACTORS):
            raise ValueError(f"num_actors must be in [1, {len(_ACTORS)}]")
        if not 2 <= num_locations <= len(_LOCATIONS):
            raise ValueError(
                f"num_locations must be in [2, {len(_LOCATIONS)}]")
        if not 1 <= num_objects <= len(_OBJECTS):
            raise ValueError(f"num_objects must be in [1, {len(_OBJECTS)}]")
        if memory_size < 4:
            raise ValueError("task 2 needs memory_size >= 4")
        self.memory_size = memory_size
        self.actors = _ACTORS[:num_actors]
        self.locations = _LOCATIONS[:num_locations]
        self.objects = _OBJECTS[:num_objects]
        self.vocab = (["<pad>"] + self.actors + _VERBS + ["to-the"]
                      + self.locations + ["where-is", "took", "dropped"]
                      + self.objects)
        self.word_to_id = {word: i for i, word in enumerate(self.vocab)}
        self.vocab_size = len(self.vocab)
        self.num_answers = num_locations

    def sample_story(self) -> tuple[np.ndarray, np.ndarray, int]:
        story = np.full((self.memory_size, self.SENTENCE_LENGTH), PAD_ID,
                        dtype=np.int32)
        # Only actors whose location has been stated *in the story* may
        # handle objects — otherwise the question is unanswerable.
        actor_location: dict[str, str] = {}
        object_state: dict[str, tuple[str, str]] = {}
        # object -> ("held", actor) or ("at", location)
        line = 0
        # Opening moves establish actor locations in-story.
        openers = max(1, min(len(self.actors), self.memory_size // 3))
        for actor in self.rng.permutation(self.actors)[:openers]:
            location = self.locations[
                int(self.rng.integers(len(self.locations)))]
            actor_location[actor] = location
            verb = _VERBS[int(self.rng.integers(len(_VERBS)))]
            story[line] = [self.word_to_id[actor], self.word_to_id[verb],
                           self.word_to_id["to-the"],
                           self.word_to_id[location]]
            line += 1
        while line < self.memory_size:
            roll = self.rng.random()
            placed = sorted(actor_location)
            if roll < 0.4:
                actor = self.actors[
                    int(self.rng.integers(len(self.actors)))]
                location = self.locations[
                    int(self.rng.integers(len(self.locations)))]
                actor_location[actor] = location
                verb = _VERBS[int(self.rng.integers(len(_VERBS)))]
                story[line] = [self.word_to_id[actor],
                               self.word_to_id[verb],
                               self.word_to_id["to-the"],
                               self.word_to_id[location]]
            elif roll < 0.75:
                actor = placed[int(self.rng.integers(len(placed)))]
                obj = self.objects[int(self.rng.integers(len(self.objects)))]
                object_state[obj] = ("held", actor)
                story[line] = [self.word_to_id[actor],
                               self.word_to_id["took"], PAD_ID,
                               self.word_to_id[obj]]
            else:
                held = [obj for obj, (state, who) in object_state.items()
                        if state == "held"]
                if not held:
                    continue
                obj = held[int(self.rng.integers(len(held)))]
                holder = object_state[obj][1]
                object_state[obj] = ("at", actor_location[holder])
                story[line] = [self.word_to_id[holder],
                               self.word_to_id["dropped"], PAD_ID,
                               self.word_to_id[obj]]
            line += 1
        if not object_state:
            # Rare: no object event sampled; retry.
            return self.sample_story()
        queried = sorted(object_state)[
            int(self.rng.integers(len(object_state)))]
        state, value = object_state[queried]
        location = actor_location[value] if state == "held" else value
        query = np.full(self.SENTENCE_LENGTH, PAD_ID, dtype=np.int32)
        query[0] = self.word_to_id["where-is"]
        query[1] = self.word_to_id[queried]
        return story, query, self.locations.index(location)

    def sample_batch(self, batch_size: int) -> dict[str, np.ndarray]:
        stories = np.empty(
            (batch_size, self.memory_size, self.SENTENCE_LENGTH),
            dtype=np.int32)
        queries = np.empty((batch_size, self.SENTENCE_LENGTH),
                           dtype=np.int32)
        answers = np.empty(batch_size, dtype=np.int32)
        for b in range(batch_size):
            stories[b], queries[b], answers[b] = self.sample_story()
        return {"stories": stories, "queries": queries, "answers": answers}
