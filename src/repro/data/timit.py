"""Synthetic TIMIT substitute for Deep Speech.

The paper already substitutes TIMIT (Garofolo et al., 1993) for Baidu's
private utterance corpus; TIMIT itself is LDC-licensed, so we substitute
once more: synthetic utterances whose spectrogram frames are noisy draws
from per-phoneme spectral templates, with CTC-compatible *unsegmented*
phoneme label sequences. TIMIT's standard folded phone set has 39 classes,
which is our default; the CTC blank is an extra class appended by the
workload.
"""

from __future__ import annotations

import numpy as np

from .synthetic import SyntheticDataset

TIMIT_FOLDED_PHONES = 39


class SyntheticTIMIT(SyntheticDataset):
    """Utterances of spectrogram frames with aligned-free phoneme labels."""

    def __init__(self, num_frames: int = 150, num_features: int = 26,
                 num_phonemes: int = TIMIT_FOLDED_PHONES,
                 min_phoneme_frames: int = 3, max_phoneme_frames: int = 8,
                 noise: float = 0.3, seed: int = 0):
        super().__init__(seed)
        if min_phoneme_frames < 1 or max_phoneme_frames < min_phoneme_frames:
            raise ValueError("invalid phoneme duration range")
        self.num_frames = num_frames
        self.num_features = num_features
        self.num_phonemes = num_phonemes
        self.min_phoneme_frames = min_phoneme_frames
        self.max_phoneme_frames = max_phoneme_frames
        self.noise = noise
        template_rng = np.random.default_rng(seed + 13)
        self._spectra = template_rng.standard_normal(
            (num_phonemes, num_features)).astype(np.float32)
        # Upper bound on labels per utterance, used for the dense
        # (batch, max_labels) label layout CTC consumes. The final
        # phoneme may be truncated below min_phoneme_frames, so the
        # worst case is full-length segments plus one short tail.
        self.max_labels = (num_frames - 1) // min_phoneme_frames + 1

    def sample_utterance(self) -> tuple[np.ndarray, list[int]]:
        """One utterance: ``(frames, phoneme_sequence)``.

        Frames always fill ``num_frames``; the phoneme sequence length
        varies with the sampled durations (always <= num_frames, as CTC
        requires).
        """
        frames = np.empty((self.num_frames, self.num_features),
                          dtype=np.float32)
        labels: list[int] = []
        t = 0
        while t < self.num_frames:
            phoneme = int(self.rng.integers(0, self.num_phonemes))
            duration = int(self.rng.integers(self.min_phoneme_frames,
                                             self.max_phoneme_frames + 1))
            duration = min(duration, self.num_frames - t)
            frames[t:t + duration] = self._spectra[phoneme]
            labels.append(phoneme)
            t += duration
        frames += self.noise * self.rng.standard_normal(
            frames.shape).astype(np.float32)
        return frames, labels

    def sample_batch(self, batch_size: int) -> dict[str, np.ndarray]:
        frames = np.empty((batch_size, self.num_frames, self.num_features),
                          dtype=np.float32)
        labels = np.zeros((batch_size, self.max_labels), dtype=np.int32)
        label_lengths = np.empty(batch_size, dtype=np.int32)
        input_lengths = np.full(batch_size, self.num_frames, dtype=np.int32)
        for b in range(batch_size):
            frames[b], sequence = self.sample_utterance()
            # CTC needs len(collapsed labels) + repeats <= frames; our
            # generator guarantees len(sequence) <= num_frames by design.
            labels[b, :len(sequence)] = sequence
            label_lengths[b] = len(sequence)
        return {"frames": frames, "labels": labels,
                "label_lengths": label_lengths,
                "input_lengths": input_lengths}
