"""Synthetic ImageNet substitute for alexnet, vgg, and residual.

The paper trains its three ILSVRC networks on ImageNet (Deng et al.,
2009). We substitute seeded synthetic images: each class has a smooth
template pattern, and samples are noisy draws around their class
template. This preserves the input/label tensor shapes and gives the
classifiers a learnable signal for the correctness tests.
"""

from __future__ import annotations

import numpy as np

from .synthetic import SyntheticDataset, class_templates


class SyntheticImageNet(SyntheticDataset):
    """Class-conditional synthetic images with ImageNet-style shapes."""

    def __init__(self, image_size: int = 224, channels: int = 3,
                 num_classes: int = 1000, noise: float = 0.5, seed: int = 0):
        super().__init__(seed)
        self.image_size = image_size
        self.channels = channels
        self.num_classes = num_classes
        self.noise = noise
        template_rng = np.random.default_rng(seed + 1)
        self._templates = class_templates(
            template_rng, num_classes, (image_size, image_size, channels))

    def sample_batch(self, batch_size: int) -> dict[str, np.ndarray]:
        labels = self.rng.integers(0, self.num_classes, size=batch_size)
        images = self._templates[labels].copy()
        images += self.noise * self.rng.standard_normal(
            images.shape).astype(np.float32)
        return {"images": images, "labels": labels.astype(np.int32)}
