"""Synthetic Penn-Treebank-style corpus for the extension workloads.

The paper's conclusion hopes Fathom becomes "a living workload suite,
incorporating advances as they are discovered"; the extension workloads
(:mod:`repro.workloads.extensions`) model the language-modeling domain
the survey found underserved. Their data is a seeded synthetic corpus
with first-order Markov structure — each word has a small set of likely
successors — so a language model has real statistical signal to learn
(perplexity drops well below the uniform bound) without shipping any
licensed text.
"""

from __future__ import annotations

import numpy as np

from .synthetic import SyntheticDataset


class SyntheticPTB(SyntheticDataset):
    """A Markov-chain word stream with PTB-like batch layout."""

    def __init__(self, vocab_size: int = 1000, branching: int = 20,
                 concentration: float = 0.7, seed: int = 0):
        """Args:
            vocab_size: number of word types.
            branching: likely successors per word.
            concentration: probability mass on the likely successors
                (the rest spreads uniformly, so all transitions are
                possible and perplexity stays finite).
        """
        super().__init__(seed)
        if not 0.0 < concentration < 1.0:
            raise ValueError("concentration must be in (0, 1)")
        if branching >= vocab_size:
            raise ValueError("branching must be below vocab_size")
        self.vocab_size = vocab_size
        self.branching = branching
        self.concentration = concentration
        chain_rng = np.random.default_rng(seed + 31)
        self._successors = np.empty((vocab_size, branching), dtype=np.int64)
        for word in range(vocab_size):
            self._successors[word] = chain_rng.choice(
                vocab_size, size=branching, replace=False)
        self._state = int(chain_rng.integers(vocab_size))

    def _next_word(self) -> int:
        if self.rng.random() < self.concentration:
            choices = self._successors[self._state]
            word = int(choices[self.rng.integers(self.branching)])
        else:
            word = int(self.rng.integers(self.vocab_size))
        self._state = word
        return word

    def sample_stream(self, length: int) -> np.ndarray:
        """A contiguous stream of token ids."""
        return np.array([self._next_word() for _ in range(length)],
                        dtype=np.int32)

    def sample_batch(self, batch_size: int,
                     sequence_length: int = 20) -> dict[str, np.ndarray]:
        """Language-model batches: inputs and one-step-shifted targets."""
        inputs = np.empty((batch_size, sequence_length), dtype=np.int32)
        targets = np.empty((batch_size, sequence_length), dtype=np.int32)
        for row in range(batch_size):
            stream = self.sample_stream(sequence_length + 1)
            inputs[row] = stream[:-1]
            targets[row] = stream[1:]
        return {"inputs": inputs, "targets": targets}

    def skipgram_batch(self, batch_size: int, window: int = 2,
                       negatives: int = 5) -> dict[str, np.ndarray]:
        """Word2vec-style training pairs with negative samples.

        Returns center words ``(batch,)``, true context words
        ``(batch,)``, and uniform negative samples ``(batch, negatives)``.
        """
        span = 2 * window + 1
        centers = np.empty(batch_size, dtype=np.int32)
        contexts = np.empty(batch_size, dtype=np.int32)
        for row in range(batch_size):
            stream = self.sample_stream(span)
            centers[row] = stream[window]
            offset = int(self.rng.integers(span - 1))
            contexts[row] = stream[offset if offset < window
                                   else offset + 1]
        negatives_array = self.rng.integers(
            0, self.vocab_size, size=(batch_size, negatives)).astype(np.int32)
        return {"centers": centers, "contexts": contexts,
                "negatives": negatives_array}

    def transition_logprob(self, current: int, following: int) -> float:
        """Ground-truth log transition probability (for oracle tests)."""
        base = (1.0 - self.concentration) / self.vocab_size
        if following in self._successors[current]:
            return float(np.log(base + self.concentration / self.branching))
        return float(np.log(base))
