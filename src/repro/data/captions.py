"""Synthetic image-captioning corpus for the NeuralTalk extension.

Images come from the class-template generator used by the ImageNet
substitute; captions are template sentences whose content words are
determined by the image's class (``"a photo of <adjective> <noun>"``),
so a captioner must genuinely extract the class from pixels to predict
the content words. Vocabulary and grammar are seeded and procedural.
"""

from __future__ import annotations

import numpy as np

from .synthetic import SyntheticDataset, class_templates

PAD_ID = 0
START_ID = 1
END_ID = 2

_STATIC_WORDS = ["<pad>", "<start>", "<end>", "a", "photo", "of"]
_ADJECTIVES = ["red", "small", "striped", "shiny", "old", "round",
               "bright", "dark"]
_NOUNS = ["cat", "truck", "flower", "house", "bird", "boat", "clock",
          "tree"]


class SyntheticCaptions(SyntheticDataset):
    """(image, caption) pairs with class-determined content words."""

    CAPTION_LENGTH = 6  # <start> a photo of <adj> <noun> (then <end>)

    def __init__(self, image_size: int = 32, num_classes: int = 8,
                 noise: float = 0.4, seed: int = 0):
        super().__init__(seed)
        if not 1 <= num_classes <= len(_NOUNS):
            raise ValueError(
                f"num_classes must be in [1, {len(_NOUNS)}]")
        self.image_size = image_size
        self.num_classes = num_classes
        self.noise = noise
        template_rng = np.random.default_rng(seed + 41)
        self._templates = class_templates(
            template_rng, num_classes, (image_size, image_size, 3))
        # Each class gets a fixed adjective+noun pairing.
        adjectives = template_rng.permutation(len(_ADJECTIVES))
        self.vocab = (_STATIC_WORDS + _ADJECTIVES + _NOUNS)
        self.word_to_id = {w: i for i, w in enumerate(self.vocab)}
        self.vocab_size = len(self.vocab)
        self._class_words = []
        for cls in range(num_classes):
            adjective = _ADJECTIVES[int(adjectives[cls])]
            noun = _NOUNS[cls]
            self._class_words.append(
                (self.word_to_id[adjective], self.word_to_id[noun]))

    def caption_ids(self, cls: int) -> np.ndarray:
        """The ground-truth caption token ids for a class (no <start>)."""
        adjective, noun = self._class_words[cls]
        return np.array([self.word_to_id["a"], self.word_to_id["photo"],
                         self.word_to_id["of"], adjective, noun, END_ID],
                        dtype=np.int32)

    def decode(self, token_ids) -> str:
        words = []
        for token in token_ids:
            if token in (PAD_ID, START_ID):
                continue
            if token == END_ID:
                break
            words.append(self.vocab[int(token)])
        return " ".join(words)

    def sample_batch(self, batch_size: int) -> dict[str, np.ndarray]:
        """Images plus teacher-forcing caption inputs/targets.

        ``caption_in`` is ``<start> + caption[:-1]``; ``caption_out`` is
        the caption ending with ``<end>``.
        """
        length = self.CAPTION_LENGTH
        images = np.empty((batch_size, self.image_size, self.image_size, 3),
                          dtype=np.float32)
        caption_in = np.empty((batch_size, length), dtype=np.int32)
        caption_out = np.empty((batch_size, length), dtype=np.int32)
        classes = self.rng.integers(0, self.num_classes, size=batch_size)
        for row, cls in enumerate(classes):
            images[row] = self._templates[cls]
            caption = self.caption_ids(int(cls))
            caption_in[row, 0] = START_ID
            caption_in[row, 1:] = caption[:-1]
            caption_out[row] = caption
        images += self.noise * self.rng.standard_normal(
            images.shape).astype(np.float32)
        return {"images": images, "caption_in": caption_in,
                "caption_out": caption_out,
                "classes": classes.astype(np.int32)}
