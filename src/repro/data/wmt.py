"""Synthetic WMT-15 substitute for sequence-to-sequence translation.

seq2seq (Sutskever et al., 2014) trains on the WMT English-French corpus.
We substitute a seeded toy translation task over synthetic vocabularies:
the "translation" of a source sentence is its token-wise mapping through
a fixed random bijection, emitted in reversed order (Sutskever et al.
famously reversed source sentences; reversing the target instead gives
the attention mechanism a non-trivial alignment to learn). Sequence
lengths vary within a bucket, padded with a PAD token and weighted out of
the loss, mirroring the bucketing of the original implementation.
"""

from __future__ import annotations

import numpy as np

from .synthetic import SyntheticDataset

PAD_ID = 0
GO_ID = 1
EOS_ID = 2
FIRST_WORD_ID = 3  # ids below this are reserved control tokens


class SyntheticWMT(SyntheticDataset):
    """Parallel sentence pairs under a deterministic toy translation."""

    def __init__(self, vocab_size: int = 1000, max_length: int = 20,
                 min_length: int | None = None, seed: int = 0):
        super().__init__(seed)
        if vocab_size <= FIRST_WORD_ID:
            raise ValueError(f"vocab_size must exceed {FIRST_WORD_ID}")
        self.vocab_size = vocab_size
        self.max_length = max_length
        self.min_length = min_length or max(2, max_length // 2)
        mapping_rng = np.random.default_rng(seed + 23)
        words = np.arange(FIRST_WORD_ID, vocab_size)
        shuffled = mapping_rng.permutation(words)
        self._lexicon = np.concatenate(
            [np.arange(FIRST_WORD_ID), shuffled]).astype(np.int32)

    def translate(self, source: np.ndarray) -> np.ndarray:
        """Reference translation: lexicon mapping, reversed order."""
        return self._lexicon[source][::-1].copy()

    def sample_batch(self, batch_size: int) -> dict[str, np.ndarray]:
        """Bucketed batch: fixed-width arrays with PAD and target weights.

        Returns source ``(batch, max_length)``, decoder inputs
        ``(batch, max_length + 1)`` beginning with GO, targets
        ``(batch, max_length + 1)`` ending with EOS, and float weights
        zeroing the padded positions.
        """
        width = self.max_length
        source = np.full((batch_size, width), PAD_ID, dtype=np.int32)
        decoder_input = np.full((batch_size, width + 1), PAD_ID,
                                dtype=np.int32)
        target = np.full((batch_size, width + 1), PAD_ID, dtype=np.int32)
        weights = np.zeros((batch_size, width + 1), dtype=np.float32)
        for b in range(batch_size):
            length = int(self.rng.integers(self.min_length, width + 1))
            words = self.rng.integers(FIRST_WORD_ID, self.vocab_size,
                                      size=length).astype(np.int32)
            translated = self.translate(words)
            source[b, :length] = words
            decoder_input[b, 0] = GO_ID
            decoder_input[b, 1:length + 1] = translated
            target[b, :length] = translated
            target[b, length] = EOS_ID
            weights[b, :length + 1] = 1.0
        return {"source": source, "decoder_input": decoder_input,
                "target": target, "weights": weights}
