"""Section V-A's framework-overhead claim.

The paper reports that TensorFlow spends "typically less than 1-2% of
the total runtime outside of operations". This benchmark measures the
same quantity for our executor on the heavyweight workloads (where ops
are large enough that scheduling cost should disappear) and prints it
for every workload, comparing against the committed baseline in
``BENCH_framework_overhead.json`` (regenerate with
``python benchmarks/record_overhead_baseline.py``).
"""

import json
import pathlib

from repro.profiling.tracer import Tracer
from repro.workloads import WORKLOAD_NAMES, create

BASELINE_PATH = (pathlib.Path(__file__).parent
                 / "BENCH_framework_overhead.json")


def _measure_overheads(backend=None):
    overheads = {}
    for name in WORKLOAD_NAMES:
        model = create(name, config="default", backend=backend)
        model.run_training(1)
        # Best of three: scheduler preemption on a shared machine shows
        # up as *extra* apparent overhead, so the minimum is the honest
        # estimate of the executor's own cost.
        best = 1.0
        for _ in range(3):
            tracer = Tracer()
            model.run_training(2, tracer=tracer)
            best = min(best, tracer.framework_overhead_fraction())
        overheads[name] = best
    return overheads


def test_framework_overhead(benchmark):
    overheads = benchmark.pedantic(_measure_overheads, rounds=1,
                                   iterations=1)
    codegen = _measure_overheads(backend="codegen")
    baseline = (json.loads(BASELINE_PATH.read_text())
                if BASELINE_PATH.exists() else None)
    print("\nFraction of wall time outside operations (training, default "
          "config):")
    for name, fraction in overheads.items():
        line = f"  {name:>10s}  interp {fraction:6.2%}  codegen {codegen[name]:6.2%}"
        if baseline and name in baseline.get("overhead_fraction", {}):
            line += (f"  (baseline "
                     f"{baseline['overhead_fraction'][name]:6.2%})")
        print(line)

    # The codegen backend collapses whole regions into single generated
    # kernels, so the dispatch loop touches a fraction of the steps: the
    # executor's own cost must drop below 5% on *every* workload — the
    # paper's 1-2% claim shape, including the fine-grained RNN graphs
    # that the interpreter cannot get under 20%.
    for name, fraction in codegen.items():
        assert fraction < 0.05, (name, fraction)

    # Big-op workloads should be within shouting distance of the paper's
    # 1-2% (pure-Python scheduling is heavier than TF's C++ executor, so
    # the bound is looser, but the *claim shape* — overhead is a small
    # fraction when kernels are coarse — must hold). Fine-grained graphs
    # (seq2seq's thousands of tiny unrolled ops) pay more; the deviation
    # is recorded in EXPERIMENTS.md.
    for name in ("vgg", "alexnet", "autoenc"):
        assert overheads[name] < 0.3, (name, overheads[name])
    # Time spent inside operations dominates everywhere. (The measured
    # "overhead" also absorbs scheduler preemption on shared machines,
    # hence the generous bound.)
    assert all(f < 0.85 for f in overheads.values())

    if baseline:
        # Steady-state dispatch must not regress against the recorded
        # baseline: allow generous absolute slack for machine noise, but
        # a wholesale regression (a fatter interpreter loop) must fail.
        for name, fraction in overheads.items():
            recorded = baseline["overhead_fraction"].get(name)
            if recorded is not None:
                assert fraction <= recorded + 0.15, (name, fraction,
                                                     recorded)
