"""Section V-D: forward/backward symmetry and the loss-function skew.

The paper's claims, asserted over the suite:

* the backward phase mirrors the forward phase ("most functions
  evaluated in the forward phase have an analogue in the backwards
  phase") — backward time lands within a small multiple of forward time;
* convolutional networks pay *more* than 1x backward ("the convolutional
  partial gradient involves two reduction operations in the backwards
  phase ... and only one in the forward phase");
* the loss function is evaluated only during training, and for simple
  classifiers it is cheap.
"""

from repro.analysis.phases import render_phase_table, split_phases
from repro.analysis.suite import get_model
from repro.workloads import WORKLOAD_NAMES


def test_phase_symmetry(benchmark):
    def build():
        return [split_phases(get_model(name, "default"))
                for name in WORKLOAD_NAMES]

    splits = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + render_phase_table(splits))
    by_name = {s.workload: s for s in splits}

    for split in splits:
        # Rough symmetry: backward within [0.5x, 4x] of forward.
        assert 0.5 < split.backward_forward_ratio < 4.0, split.workload
        # Every phase is present in training.
        assert split.seconds["forward"] > 0
        assert split.seconds["backward"] > 0
        assert split.seconds["optimizer"] > 0

    # Convolution's double backward: the conv nets' backward/forward
    # ratio exceeds the dense autoencoder's.
    conv_ratio = min(by_name[n].backward_forward_ratio
                     for n in ("vgg", "alexnet", "residual"))
    assert conv_ratio > by_name["autoenc"].backward_forward_ratio * 0.9

    # Simple classifiers have cheap loss functions; CTC does not come
    # for free — speech's loss share beats vgg's.
    assert by_name["speech"].fraction("loss") > \
        by_name["vgg"].fraction("loss")
