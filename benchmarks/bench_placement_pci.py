"""Section V-A: CPU fall-back ops split execution across the PCI bus.

The paper explains its CPU-based methodology: frameworks "have incomplete
support for all operations, and the fall-back behavior is to run
unsupported operations on the CPU, splitting execution across the PCI
bus. This causes crippling performance problems." This benchmark
simulates exactly that execution mode for every workload and sweeps the
boundary-crossing cost, reproducing the claim's shape:

* workloads whose op types all have GPU kernels are immune;
* workloads with fall-back ops on the critical path degrade as the
  synchronization cost grows;
* at 2016-realistic sync costs, fall-back execution can be slower than
  *pure CPU* execution (memnet) — the regime in which running the whole
  experiment on the CPU, as the paper does, is the sane choice.
"""

from repro.analysis.placement_study import (latency_sweep,
                                            render_placement_table,
                                            study_workload)
from repro.analysis.suite import get_model
from repro.workloads import WORKLOAD_NAMES


def test_placement_fallback(benchmark):
    def run_study():
        return [study_workload(get_model(name, "default"))
                for name in WORKLOAD_NAMES]

    points = benchmark.pedantic(run_study, rounds=1, iterations=1)
    print("\n" + render_placement_table(points))
    by_name = {p.workload: p for p in points}

    # Pure convolutional workloads have no CPU-only op types: immune.
    for name in ("deepq", "residual"):
        assert by_name[name].fallback_cpu_ops == 0
        assert by_name[name].fallback_penalty == 1.0

    # Workloads with RNG/CTC/scatter ops really do fall back.
    for name in ("alexnet", "vgg", "speech", "memnet", "autoenc",
                 "seq2seq"):
        assert by_name[name].fallback_cpu_ops > 0, name

    # Fall-back never beats the pure-GPU counterfactual by more than the
    # overlap a second device legitimately provides, and never wins for
    # the conv nets.
    assert all(p.fallback_seconds <= p.cpu_seconds * 1.5 for p in points)


def test_sync_cost_cripples_fallback(benchmark):
    def sweep():
        return {name: latency_sweep(get_model(name, "default"),
                                    latencies=(10e-6, 100e-6, 1e-3))
                for name in ("memnet", "autoenc", "vgg")}

    sweeps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFall-back penalty vs boundary-sync cost:")
    for name, by_latency in sweeps.items():
        row = ", ".join(
            f"{latency * 1e6:4.0f}us: {point.fallback_penalty:4.2f}x gpu / "
            f"{point.fallback_vs_cpu:4.2f}x cpu"
            for latency, point in by_latency.items())
        print(f"  {name:8s} {row}")

    # vgg's only fall-back ops are input-free dropout masks: the
    # scheduler prefetches them, so it stays immune at any latency.
    vgg = sweeps["vgg"]
    assert all(point.fallback_penalty < 1.05 for point in vgg.values())

    # memnet's scatter-adds sit mid-backward-pass: penalty grows with
    # sync cost, and at 1 ms the fall-back execution is slower than pure
    # CPU — the paper's "crippling" regime.
    memnet = sweeps["memnet"]
    penalties = [p.fallback_seconds for p in memnet.values()]
    assert penalties == sorted(penalties)
    worst = memnet[1e-3]
    assert worst.fallback_penalty > 1.3
    assert worst.fallback_vs_cpu > 1.0

    # autoenc's mid-network sampling stalls once sync cost approaches the
    # GPU step time.
    autoenc = sweeps["autoenc"]
    assert autoenc[1e-3].fallback_penalty > 1.3
