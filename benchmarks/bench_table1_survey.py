"""Table I: survey of deep learning in architecture research.

Regenerates the survey table and asserts the prose claims the paper
builds its motivation on.
"""

from repro.analysis.survey import (SURVEY, coverage_gaps, feature_counts,
                                   krizhevsky_share, render_table1)


def test_table1_regeneration(benchmark):
    text = benchmark(render_table1)
    print("\n" + text)

    counts = feature_counts()
    # Paper, Section II: the survey motivates Fathom with these gaps.
    assert len(SURVEY) == 16
    assert counts["Inference"] == 17          # every column marks inference
    assert counts["Recurrent"] == 3           # [24], [44], Fathom
    assert coverage_gaps() == ["Unsupervised", "Reinforcement"]
    assert 0.35 <= krizhevsky_share() <= 0.55  # "nearly half"
    # Fathom's column has the deepest model (residual, 34 layers).
    assert max(e.max_depth for e in SURVEY) < 34
