"""Fig. 3: breakdown of execution time by operation type.

Regenerates the workload x op-class heatmap and asserts the per-workload
shapes the paper describes in Section V-B, including the longitudinal
alexnet -> vgg -> residual fully-connected trend.
"""

from repro.analysis.breakdown import breakdown_matrix


def test_fig3_breakdown(benchmark, suite_profiles):
    matrix = benchmark(breakdown_matrix, suite_profiles)
    print("\n" + matrix.render())

    rows = {name: matrix.row(name) for name in matrix.workloads}

    # "convolutional neural networks are indeed dominated by convolution"
    for name in ("alexnet", "vgg", "residual", "deepq"):
        assert rows[name]["B"] > 0.4, (name, rows[name])
        assert matrix.dominant_group(name) == "B", name

    # "fully-connected networks depend heavily on matrix multiplication"
    assert matrix.dominant_group("autoenc") == "A"
    # "speech is comprised almost exclusively of matrix-matrix
    # multiplication operations"
    assert matrix.dominant_group("speech") == "A"
    assert rows["speech"]["A"] > 0.5
    assert rows["speech"]["B"] == 0.0

    # seq2seq: elementwise (LSTM gates) + data movement (attention).
    assert rows["seq2seq"]["C"] > rows["seq2seq"]["A"]
    assert rows["seq2seq"]["G"] > 0.1

    # memnet: skinny-tensor arithmetic, reductions, and data movement.
    assert rows["memnet"]["B"] == 0.0
    assert rows["memnet"]["C"] + rows["memnet"]["G"] + rows["memnet"]["D"] \
        > 0.6

    # Longitudinal trend (Section V-B): the fully-connected share of the
    # ImageNet networks shrinks with each generation -- alexnet's dense
    # layers ~11%, vgg's ~7%, residual's single classifier <1%.
    assert rows["alexnet"]["A"] > rows["vgg"]["A"] >= rows["residual"]["A"]
    assert rows["residual"]["A"] < 0.01
