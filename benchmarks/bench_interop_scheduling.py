"""Extension study: inter-op parallelism across the suite.

The paper's Section V-E studies *intra-op* threading (one Eigen pool
splitting each kernel). The complementary axis — multiple workers
executing independent operations of the dataflow DAG concurrently — is
what TensorFlow's inter-op thread pool provides. This study greedily
list-schedules each workload's training step over 1/2/4/8 single-thread
CPU workers (shared memory, so no transfer cost) and reports the
speedup, which is bounded by the DAG's inherent average parallelism
(ops / critical path; see ``repro.framework.graph_export``).

Expected shape: the image networks' mostly-sequential layer pipelines
gain little; models with parallel branches — bidirectional speech,
deepq's two towers + independent dropout/optimizer subtrees — gain more;
nothing approaches 8x because dataflow dependencies dominate.
"""

from repro.analysis.suite import get_model
from repro.framework.graph_export import graph_stats
from repro.framework.placement import simulate_greedy_schedule, worker_pool
from repro.workloads import WORKLOAD_NAMES

WORKER_COUNTS = (1, 2, 4, 8)


def _study():
    rows = {}
    for name in WORKLOAD_NAMES:
        model = get_model(name, "default")
        fetches = [model.loss, model.train_step]
        ops = model.graph.subgraph(fetches)
        makespans = {count: simulate_greedy_schedule(
            ops, worker_pool(count)).makespan for count in WORKER_COUNTS}
        inherent = graph_stats(model.graph,
                               fetches=fetches).average_parallelism
        rows[name] = (makespans, inherent)
    return rows


def test_interop_scheduling(benchmark):
    rows = benchmark.pedantic(_study, rounds=1, iterations=1)

    print("\nInter-op scheduling: training-step makespan over k workers")
    print(f"{'workload':>10s}  " + "  ".join(f"{c:>2d} wkr"
                                             for c in WORKER_COUNTS)
          + "  speedup@8  DAG parallelism")
    for name, (makespans, inherent) in rows.items():
        cells = "  ".join(f"{makespans[c] * 1e3:5.1f}ms"
                          for c in WORKER_COUNTS)
        speedup = makespans[1] / makespans[8]
        print(f"{name:>10s}  {cells}  {speedup:8.2f}x  {inherent:8.2f}")

    for name, (makespans, inherent) in rows.items():
        times = [makespans[c] for c in WORKER_COUNTS]
        # More workers never hurt (greedy over identical workers).
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:])), name
        speedup = makespans[1] / makespans[8]
        # Speedup is real but far from the 8 workers provisioned: the
        # DAG's dependencies dominate. (Op-count parallelism, printed for
        # context, is not a strict bound on time speedup — the critical
        # path can consist of cheap ops.)
        assert 1.0 <= speedup < 8.0, (name, speedup, inherent)

    # Bidirectional speech has two independent recurrent chains; it must
    # gain at least some inter-op speedup.
    speech_speedup = rows["speech"][0][1] / rows["speech"][0][8]
    assert speech_speedup > 1.2
