"""Checkpoint durability benchmark: replication vs silent corruption.

Sweeps fault rate × replication factor on the in-memory blob-store
substrate (virtual clock, fully deterministic) and records, per cell:

* **commit rate** — how often the quorum write succeeds at all;
* **restore success rate** — of the committed checkpoints, how many
  still restore bitwise while the fault plan stays armed (silent
  corruption: probabilistic bit rot + torn writes on every store);
* **recovery seconds** — mean virtual-clock cost of a verified fetch,
  including digest checks, failover, and read-repair of damaged
  replicas.

The fault plan stays armed through the restore (the hostile store stays
hostile), so the headline claim behind ``--checkpoint-replicas`` is
monotone improvement: at every fault rate, each added replica raises the
restore success rate — at rate 0.3 a single store keeps only ~21% of its
committed checkpoints while N=3 keeps ~58% — and the price is recovery
latency, as digest-verified failover and read-repair do more work per
fetch. Baselines live in
``BENCH_checkpoint_durability.json`` (regenerate with ``python
benchmarks/bench_checkpoint_durability.py``).
"""

import hashlib
import json
import pathlib

from repro import workloads
from repro.framework.clock import VirtualClock
from repro.framework.checkpoint import CheckpointError, save_bytes
from repro.framework.errors import StorageError
from repro.framework.faults import StorageFaultPlan, StorageFaultSpec
from repro.storage import MemoryStore, ReplicatedCheckpointStore

BASELINE_PATH = (pathlib.Path(__file__).parent
                 / "BENCH_checkpoint_durability.json")

WORKLOAD = "memnet"

#: per-blob-operation virtual seconds (so failover has a visible cost)
OP_SECONDS = 0.002

#: probability that each silent-corruption spec fires per operation
FAULT_RATES = (0.0, 0.05, 0.15, 0.3)

REPLICA_COUNTS = (1, 2, 3)

#: independent checkpoint lifecycles per (rate, replicas) cell
TRIALS = 24


def checkpoint_payload():
    """One serialized checkpoint, reused across every trial."""
    model = workloads.create(WORKLOAD, config="tiny", seed=0)
    model.session.run([model.loss, model.train_step],
                      feed_dict=model.sample_feed(training=True))
    return save_bytes(model.session)


def silent_corruption_plan(rate, seed):
    """Probabilistic bit rot + torn writes against every store."""
    return StorageFaultPlan([
        StorageFaultSpec("bit_rot", probability=rate,
                         max_triggers=None, key_pattern="payload"),
        StorageFaultSpec("torn_write", probability=rate,
                         max_triggers=None, key_pattern="payload",
                         fraction=0.5),
    ], seed=seed)


def run_trial(payload, replicas, rate, seed):
    """One checkpoint lifecycle: quorum-write, then verified fetch."""
    clock = VirtualClock()
    store = ReplicatedCheckpointStore(
        [MemoryStore(store_id=i, clock=clock, op_seconds=OP_SECONDS)
         for i in range(replicas)], clock=clock)
    if rate > 0.0:
        store.install_faults(silent_corruption_plan(rate, seed))
    try:
        record = store.save_payload(payload, step=0)
    except StorageError:
        return {"committed": False}
    started = clock.now()
    try:
        fetched = store.fetch(record.checkpoint_id)
    except (StorageError, CheckpointError):
        return {"committed": True, "restored": False,
                "seconds": clock.now() - started}
    ok = hashlib.sha256(fetched).hexdigest() == record.digest
    return {"committed": True, "restored": ok,
            "seconds": clock.now() - started}


def measure():
    payload = checkpoint_payload()
    grid = {}
    for replicas in REPLICA_COUNTS:
        for rate in FAULT_RATES:
            outcomes = [run_trial(payload, replicas, rate,
                                  seed=1000 * replicas + trial)
                        for trial in range(TRIALS)]
            committed = [o for o in outcomes if o["committed"]]
            restored = [o for o in committed if o["restored"]]
            seconds = [o["seconds"] for o in committed]
            grid[f"n{replicas}_rate{rate:g}"] = {
                "replicas": replicas,
                "fault_rate": rate,
                "trials": TRIALS,
                "commit_rate": len(committed) / TRIALS,
                "restore_success_rate": (len(restored) / len(committed)
                                         if committed else None),
                "mean_recovery_seconds": (round(sum(seconds)
                                                / len(seconds), 6)
                                          if seconds else None),
            }
    return grid


def test_checkpoint_durability(benchmark):
    grid = benchmark.pedantic(measure, rounds=1, iterations=1)
    baseline = (json.loads(BASELINE_PATH.read_text())["durability"]
                if BASELINE_PATH.exists() else {})
    print("\nCheckpoint durability (memnet tiny payload, virtual clock):")
    print("  replicas  fault_rate  commit  restore  recovery_s")
    for row in grid.values():
        restore = row["restore_success_rate"]
        seconds = row["mean_recovery_seconds"]
        print(f"  {row['replicas']:>8d}  {row['fault_rate']:>10g}"
              f"  {row['commit_rate']:6.2%}"
              f"  {restore if restore is None else format(restore, '6.2%')}"
              f"  {seconds}")

    # Fault-free, every factor commits and restores everything.
    for replicas in REPLICA_COUNTS:
        clean = grid[f"n{replicas}_rate0"]
        assert clean["commit_rate"] == 1.0
        assert clean["restore_success_rate"] == 1.0
    # The replication story: every added replica raises (or holds) the
    # restore success rate at every fault rate, and at the harshest rate
    # a single store measurably loses committed checkpoints while three
    # replicas keep strictly more of them.
    for rate in FAULT_RATES[1:]:
        rates = [grid[f"n{n}_rate{rate:g}"]["restore_success_rate"]
                 for n in REPLICA_COUNTS]
        assert rates == sorted(rates), (rate, rates)
    harsh = max(FAULT_RATES)
    assert grid[f"n1_rate{harsh:g}"]["restore_success_rate"] < 1.0
    assert (grid[f"n3_rate{harsh:g}"]["restore_success_rate"]
            > grid[f"n1_rate{harsh:g}"]["restore_success_rate"])
    # Everything is virtual-clock deterministic: exact baseline match.
    for key, expected in baseline.items():
        assert grid[key] == expected, (key, grid[key], expected)


def record_baseline():
    import datetime
    import platform
    payload = {
        "metadata": {
            "recorded": datetime.date.today().isoformat(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": f"{WORKLOAD} tiny checkpoint payload on in-memory "
                    f"replica stores; probabilistic bit_rot+torn_write "
                    f"at each fault rate; {TRIALS} lifecycles per cell; "
                    f"virtual clock, deterministic",
        },
        "durability": measure(),
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH}")


if __name__ == "__main__":
    record_baseline()
