"""Fleet storm benchmark: attainment, shedding, and outage recovery.

Two measurements per workload on a *virtual* clock, compared against
the committed baseline in ``BENCH_fleet_storm.json`` (regenerate with
``python benchmarks/bench_fleet_storm.py``):

* **burst shedding vs one server** — the exact overload scenario
  ``bench_serving_latency.py`` pins for a single two-replica server (an
  800 qps open-loop burst against 20 ms-stalled batches, queue limit 8,
  40 ms deadlines), replayed against a three-zone fleet whose servers
  carry the *same* per-batch handicap. The fleet's whole reason to
  exist is spare fault-domain capacity: its shed rate must come in
  strictly below the single server's committed baseline (52.1% on
  memnet).
* **storm recovery** — a diurnal arrival pattern (overnight trickle,
  morning ramp, flash crowd, cool-down) with a zone outage landing in
  the middle of the flash crowd. Recorded: deadline attainment, shed
  rate, re-routes, and the *recovery time* — virtual seconds from the
  outage instant until every request accepted before the outage has
  reached its terminal reply. All deterministic given the seeds, so
  asserted exactly against the baseline.
"""

import json
import pathlib

from repro import workloads
from repro.framework.faults import (FleetFaultPlan, FleetFaultSpec,
                                    ServingFaultPlan, ServingFaultSpec)
from repro.serving import (AutoscaleConfig, FleetConfig, LoadConfig,
                           LoadGenerator, ServingConfig, ServingFleet,
                           TenantSpec, VirtualClock)

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_fleet_storm.json"

#: fast workloads keep the benchmark (and CI smoke) under a minute
BENCH_WORKLOADS = ("memnet", "autoenc")

#: the single-server shed rate the fleet must beat (committed in
#: BENCH_serving_latency.json for the identical memnet burst)
SINGLE_SERVER_SHED = 0.5208333333333334

#: diurnal phases for the storm run: (qps, requests)
DIURNAL_PHASES = ((150.0, 24), (400.0, 24), (800.0, 24), (150.0, 24))

#: the zone outage lands mid-flash-crowd
OUTAGE_AT = 0.23
OUTAGE_SECONDS = 0.08


def _burst_fleet(model):
    """A fleet under the bench_serving_latency overload scenario."""
    fleet = ServingFleet(
        model,
        FleetConfig(
            zones=("z0", "z1", "z2"), servers_per_zone=1,
            server=ServingConfig(replicas=2, queue_limit=8,
                                 default_deadline_ms=40.0,
                                 est_batch_ms=5.0, seed=2),
            autoscale=AutoscaleConfig(enabled=False, min_servers=1),
            seed=0),
        clock=VirtualClock())
    # The same handicap the single-server baseline carries: every
    # batch on every replica stalls 20 ms of virtual time.
    for fleet_server in fleet.servers_in("active"):
        fleet_server.server.install_faults(ServingFaultPlan(
            [ServingFaultSpec("slow_replica", latency_seconds=0.02,
                              max_triggers=None)]))
    return fleet


def _burst_shedding(model):
    fleet = _burst_fleet(model)
    report = LoadGenerator(fleet, LoadConfig(
        requests=48, qps=800.0, seed=3)).run()
    assert (report.ok + report.shed + report.deadline
            + report.error) == 48
    return {"burst_shed_rate": report.shed_rate,
            "burst_attainment": report.attainment}


def _storm_recovery(model):
    """Diurnal + flash-crowd arrivals with a mid-crowd zone outage."""
    fleet = ServingFleet(
        model,
        FleetConfig(
            zones=("z0", "z1", "z2"), servers_per_zone=1,
            server=ServingConfig(replicas=1, queue_limit=32,
                                 default_deadline_ms=100.0,
                                 est_batch_ms=5.0, seed=2),
            tenants=(TenantSpec("default"),),
            autoscale=AutoscaleConfig(min_servers=2, max_servers=9,
                                      cooldown_seconds=0.02),
            seed=0),
        clock=VirtualClock())
    fleet.install_faults(FleetFaultPlan(
        [FleetFaultSpec("zone_outage", zone="z1", at_seconds=OUTAGE_AT,
                        duration_seconds=OUTAGE_SECONDS)], seed=0))

    pool = fleet.codec.split_feed(model.sample_feed(training=False))
    # Precomputed absolute arrival schedule (no coordinated omission).
    arrivals = []
    at = 0.0
    for qps, count in DIURNAL_PHASES:
        for _ in range(count):
            arrivals.append(at)
            at += 1.0 / qps

    pre_outage = []
    recovered_at = None
    for index, due in enumerate(arrivals):
        now = fleet.clock.now()
        if due > now:
            fleet.clock.sleep(due - now)
        fid = fleet.submit(pool[index % len(pool)])
        if fleet.clock.now() < OUTAGE_AT:
            pre_outage.append(fid)
        fleet.pump()
        if recovered_at is None and fleet.clock.now() >= OUTAGE_AT \
                and all(fleet.result(i) is not None
                        for i in pre_outage):
            recovered_at = fleet.clock.now()
    fleet.drain()
    if recovered_at is None:
        recovered_at = fleet.clock.now()

    report = fleet.report()
    total = sum(count for _, count in DIURNAL_PHASES)
    assert (report.ok + report.shed + report.deadline
            + report.error) == total
    assert report.zone_outages == 1
    return {"storm_attainment": report.attainment,
            "storm_shed_rate": report.shed_rate,
            "storm_reroutes": report.reroutes,
            "recovery_seconds": round(recovered_at - OUTAGE_AT, 6)}


def measure():
    results = {}
    for name in BENCH_WORKLOADS:
        model = workloads.create(name, config="tiny", seed=0)
        model.run_inference(1)  # warm the plan cache
        results[name] = {**_burst_shedding(model),
                         **_storm_recovery(model)}
    return results


def test_fleet_storm(benchmark):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    baseline = (json.loads(BASELINE_PATH.read_text())["fleet"]
                if BASELINE_PATH.exists() else {})
    print("\nFleet storm SLOs (tiny config, 3 zones, virtual clock):")
    for name, row in results.items():
        print(f"  {name:>10s}  burst shed {row['burst_shed_rate']:6.2%}"
              f"  (single server {SINGLE_SERVER_SHED:6.2%})"
              f"  storm attainment {row['storm_attainment']:6.2%}"
              f"  recovery {row['recovery_seconds'] * 1000:6.1f} ms")
        # The headline claim: fault-domain capacity turns the burst
        # the single server sheds half of into mostly-served traffic.
        assert row["burst_shed_rate"] < SINGLE_SERVER_SHED
        assert row["storm_attainment"] > 0.0
        assert row["recovery_seconds"] >= 0.0
        if name in baseline:
            for key, value in baseline[name].items():
                assert row[key] == value, (name, key, row[key], value)


def record_baseline():
    import datetime
    import platform
    payload = {
        "metadata": {
            "recorded": datetime.date.today().isoformat(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": "fleet: tiny config, 3 zones; burst mirrors the "
                    "bench_serving_latency 800 qps overload, storm is "
                    "diurnal + flash crowd with a mid-crowd zone "
                    "outage; all virtual-clock deterministic",
        },
        "single_server_shed_baseline": SINGLE_SERVER_SHED,
        "fleet": measure(),
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH}")


if __name__ == "__main__":
    record_baseline()
