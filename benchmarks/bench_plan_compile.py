"""Plan-compiler cost/benefit: compile time, dispatch overhead, reuse.

Three questions about the compile-to-ExecutionPlan pipeline, answered
with numbers:

1. **What does compilation cost?** One-time per fetch set; must be
   milliseconds, amortized over every subsequent step.
2. **What does the compiled interpreter save per step?** The legacy
   interpreter re-derived refcounts and looked values up in name-keyed
   dicts every run; the plan interpreter dispatches over precomputed
   integer slots. ``_legacy_run`` below is a faithful replica of the
   pre-compiler loop, so the two can be timed against each other on the
   same session, same graph, same numerics.
3. **What would a buffer arena reuse?** The memory planner's static
   hit rate, reported per workload.

Results are compared against the committed baseline in
``BENCH_framework_overhead.json`` (regenerate with
``python benchmarks/record_overhead_baseline.py``).
"""

import json
import pathlib
import time

import numpy as np

from repro import workloads
from repro.framework.ops.state_ops import Placeholder

BASELINE_PATH = (pathlib.Path(__file__).parent
                 / "BENCH_framework_overhead.json")

#: tiny configs stress dispatch (many small kernels), which is exactly
#: what this benchmark is about
CONFIG = "tiny"
WARMUP_STEPS = 2
MEASURE_STEPS = 5
ROUNDS = 3


def _legacy_run(session, ops_list, fetch_list, feeds):
    """The pre-compiler interpreter loop, transplanted verbatim.

    Per-run refcount construction, name-keyed value dict, per-op
    perf_counter calls, and per-op validated-set membership checks —
    everything the plan compiler moved to compile time.
    """
    refcount = {}
    for op in ops_list:
        for tensor in op.inputs:
            refcount[tensor.name] = refcount.get(tensor.name, 0) + 1
    for tensor in fetch_list:
        refcount[tensor.name] = refcount.get(tensor.name, 0) + 1

    now = time.perf_counter
    validated = _legacy_run.validated
    ctx = session._ctx
    values = {}
    for op in ops_list:
        if type(op) is Placeholder:
            values[op.outputs[0].name] = feeds[id(op)]
            continue
        args = tuple(values[t.name] for t in op.inputs)
        op_start = now()
        outputs = op.compute(args, ctx)
        _ = now() - op_start
        if id(op) in validated:
            for tensor, value in zip(op.outputs, outputs):
                values[tensor.name] = value
        else:
            validated.add(id(op))
            for tensor, value in zip(op.outputs, outputs):
                values[tensor.name] = np.asarray(value)
        for tensor in op.inputs:
            name = tensor.name
            refcount[name] -= 1
            if refcount[name] == 0:
                del values[name]
    return [values[t.name] for t in fetch_list]


_legacy_run.validated = set()


def _steady_state_seconds(fn, rounds=ROUNDS, steps=MEASURE_STEPS):
    """Best-of-rounds mean seconds per step (minimum defeats noise)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(steps):
            fn()
        best = min(best, (time.perf_counter() - start) / steps)
    return best


def _measure_workload(name):
    model = workloads.create(name, config=CONFIG, seed=0)
    session = model.session
    fetch_list = [model.loss, model.train_step]
    feed = model.sample_feed(training=True)
    feeds = session._validate_feeds(feed)

    plan = session.compile(fetch_list)
    ops_list = model.graph.subgraph(fetch_list)
    _legacy_run.validated = set()

    for _ in range(WARMUP_STEPS):
        session.run(fetch_list, feed_dict=feed)
        _legacy_run(session, ops_list, fetch_list, feeds)

    plan_seconds = _steady_state_seconds(
        lambda: session.run(fetch_list, feed_dict=feed))
    legacy_seconds = _steady_state_seconds(
        lambda: _legacy_run(session, ops_list, fetch_list, feeds))

    return {
        "compile_ms": plan.compile_seconds * 1e3,
        "ops_in": plan.stats.ops_in,
        "steps": plan.num_steps,
        "plan_seconds_per_step": plan_seconds,
        "legacy_seconds_per_step": legacy_seconds,
        "dispatch_speedup": legacy_seconds / plan_seconds,
        "arena_hit_rate": plan.memory.hit_rate,
        "fused_cells": plan.fused_cells,
    }


def test_plan_compile_and_dispatch(benchmark):
    results = benchmark.pedantic(
        lambda: {name: _measure_workload(name)
                 for name in workloads.WORKLOAD_NAMES},
        rounds=1, iterations=1)

    print("\nplan compiler cost/benefit (training fetches, tiny config):")
    print(f"{'workload':>10s} {'compile':>9s} {'ops->steps':>11s} "
          f"{'plan s/step':>12s} {'legacy s/step':>14s} {'speedup':>8s} "
          f"{'arena':>6s}")
    for name, r in results.items():
        print(f"{name:>10s} {r['compile_ms']:7.1f}ms "
              f"{r['ops_in']:5d}->{r['steps']:<5d} "
              f"{r['plan_seconds_per_step']:12.6f} "
              f"{r['legacy_seconds_per_step']:14.6f} "
              f"{r['dispatch_speedup']:7.2f}x {r['arena_hit_rate']:6.1%}")

    for name, r in results.items():
        # Compilation is a once-per-fetch-set cost; keep it bounded.
        assert r["compile_ms"] < 2000, (name, r["compile_ms"])
        # The optimizing pipeline must actually shrink the schedule.
        assert r["steps"] <= r["ops_in"], name
        # Compiled dispatch must not be slower than the legacy loop it
        # replaced (it precomputes everything the legacy loop re-derives;
        # 10% headroom absorbs scheduler noise on shared machines).
        assert (r["plan_seconds_per_step"]
                <= r["legacy_seconds_per_step"] * 1.10), (
            name, r["plan_seconds_per_step"], r["legacy_seconds_per_step"])

    # Iterative graphs re-use same-shaped intermediates heavily; the
    # arena must capture that.
    assert results["memnet"]["arena_hit_rate"] > 0.3
    # Gate escapes into the backward pass are recovered from the fused
    # op's cached-gates output, so training graphs fuse too.
    assert results["seq2seq"]["fused_cells"] > 0

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        print("\nvs committed baseline "
              f"({baseline['metadata']['recorded']}):")
        for name, r in results.items():
            base = baseline["workloads"].get(name)
            if base is None:
                continue
            delta = (r["plan_seconds_per_step"]
                     / base["plan_seconds_per_step"] - 1.0)
            print(f"  {name:>10s}  plan s/step {delta:+7.1%} vs baseline")
