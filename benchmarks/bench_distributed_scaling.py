"""Cross-validation: executed cluster runtime vs the analytic scaling study.

``repro.analysis.scaling`` *prices* data-parallel scaling;
``repro.distributed`` *executes* it over a deterministic cluster clock.
Both share one :class:`ClusterModel` and one modeled compute price, so
the measured curve (step times read off the executed runtime's clock)
must reproduce the analytic study's qualitative orderings — notably that
the compute-heavy/parameter-light vgg trunk out-scales the
parameter-heavy autoenc at 8 workers. Divergence would mean the runtime's
composition of compute, exchange, and barriers disagrees with the
analytic model it claims to embody.

Records benchmarks/BENCH_distributed_scaling.json.
"""

import json
import pathlib

from repro.analysis.scaling import measured_scaling_curve, scaling_curve
from repro.workloads import create

#: executed runs are real numpy training; keep the matrix tight
WORKLOADS = ("vgg", "autoenc")
WORKER_COUNTS = (1, 2, 4, 8)
STEPS = 2

RECORD_PATH = pathlib.Path(__file__).parent / \
    "BENCH_distributed_scaling.json"


def build_curves():
    measured, analytic = {}, {}
    for name in WORKLOADS:
        # The analytic curve profiles a default-config model; the
        # executed run uses tiny (8 real sessions of vgg-default would
        # dominate the suite) with the *default* model's compute price —
        # timing is modeled either way, so the curves stay comparable.
        priced = create(name, config="default", seed=0)
        analytic[name] = scaling_curve(priced,
                                       worker_counts=WORKER_COUNTS)
        executed = create(name, config="tiny", seed=0)
        measured[name] = measured_scaling_curve(
            executed, steps=STEPS, worker_counts=WORKER_COUNTS,
            strategy="allreduce")
    return measured, analytic


def test_executed_matches_analytic_ordering(benchmark):
    measured, analytic = benchmark.pedantic(build_curves, rounds=1,
                                            iterations=1)

    print("\nexecuted cluster-clock efficiency vs analytic prediction:")
    for name in WORKLOADS:
        m, a = measured[name], analytic[name]
        row = "  ".join(f"{m.efficiency(k):5.0%}/{a.efficiency(k):5.0%}"
                        for k in WORKER_COUNTS[1:])
        print(f"  {name:>8s}  (measured/analytic @K)  {row}")

    for name in WORKLOADS:
        m = measured[name]
        efficiencies = [m.efficiency(k) for k in m.worker_counts]
        # Executed efficiency is monotone non-increasing, like the model.
        assert all(x >= y - 1e-9 for x, y in
                   zip(efficiencies, efficiencies[1:])), name
        assert efficiencies[0] == 1.0

    # The assertion the satellite is named for: the measured efficiency
    # ordering at 8 workers matches the analytic prediction — vgg
    # out-scales autoenc (tiny-config magnitudes differ from default,
    # but the compute/parameter asymmetry survives scaling down).
    assert measured["vgg"].efficiency(8) > measured["autoenc"].efficiency(8)
    assert analytic["vgg"].efficiency(8) > analytic["autoenc"].efficiency(8)

    record = {
        "metadata": {
            "note": "executed ClusterRuntime (tiny config, allreduce, "
                    "modeled compute on the cluster clock) vs analytic "
                    "scaling_curve (default config); efficiency by "
                    "worker count",
            "worker_counts": list(WORKER_COUNTS),
            "steps": STEPS,
        },
        "measured": {
            name: {str(k): measured[name].efficiency(k)
                   for k in WORKER_COUNTS}
            for name in WORKLOADS
        },
        "analytic": {
            name: {str(k): analytic[name].efficiency(k)
                   for k in WORKER_COUNTS}
            for name in WORKLOADS
        },
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {RECORD_PATH.name}")
