"""Ablation: minibatch size vs modeled step cost.

The paper separates programs on update-step (minibatch) boundaries; this
ablation shows how the modeled cost per step and per example move with
batch size — total work grows ~linearly while fixed per-op dispatch
amortizes, so per-example cost falls. Useful context for interpreting
the absolute numbers in the figure benchmarks.
"""

import pytest

from repro import workloads
from repro.framework.device_model import cpu

BATCH_SIZES = (2, 4, 8)


def _per_step_seconds(batch_size: int) -> float:
    model = workloads.AlexNet(
        config={**workloads.AlexNet.configs["default"],
                "batch_size": batch_size},
        seed=0)
    profile = model.profile(mode="training", steps=1, device=cpu(1),
                            warmup=1)
    return profile.seconds_per_step()


def test_batch_scaling(benchmark):
    def sweep():
        return {b: _per_step_seconds(b) for b in BATCH_SIZES}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nalexnet modeled training step cost by batch size:")
    for batch, seconds in times.items():
        print(f"  batch {batch}: {seconds * 1e3:7.2f} ms/step, "
              f"{seconds / batch * 1e3:6.2f} ms/example")

    # Step cost grows with batch...
    assert times[8] > times[4] > times[2]
    # ...sublinearly (per-op dispatch and small ops amortize), so cost
    # per example falls.
    assert times[8] / 8 < times[2] / 2
    # And the growth is within 8x of linear scaling sanity bounds.
    assert times[8] < 8 * times[2]
