"""Shared fixtures for the figure/table regeneration benchmarks.

Profiles are computed once per session and shared across benchmark
modules; every figure benchmark both regenerates its artifact (printed to
stdout, captured in bench_output.txt when run with ``--benchmark-only``)
and asserts the paper's qualitative claims about its shape.
"""

import pytest

from repro.analysis import suite
from repro.framework.device_model import cpu

CONFIG = "default"
STEPS = 2


@pytest.fixture(scope="session")
def suite_profiles():
    """Training profiles for all eight workloads on the 1-thread CPU model."""
    return suite.profile_suite(config=CONFIG, mode="training", steps=STEPS,
                               device=cpu(1))


@pytest.fixture(scope="session")
def profile_by_name(suite_profiles):
    return {p.workload: p for p in suite_profiles}
