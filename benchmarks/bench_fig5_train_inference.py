"""Fig. 5: training vs. inference on CPU and GPU.

Regenerates the normalized four-bar comparison for all eight workloads
and asserts the shapes from Section V-D: training always costs more than
inference; the premium varies and is higher for convolutional networks
(two backward reductions per conv); the GPU is faster, especially on
skewed profiles; and CPU and GPU train/infer gaps correlate.
"""

import numpy as np

from repro.analysis.suite import suite_train_vs_infer
from repro.analysis.train_vs_infer import render_figure5

CONV_NETS = ("residual", "vgg", "alexnet", "deepq")
NON_CONV = ("seq2seq", "memnet", "speech", "autoenc")


def test_fig5_training_vs_inference(benchmark):
    points = benchmark.pedantic(suite_train_vs_infer,
                                kwargs={"config": "default", "steps": 2},
                                rounds=1, iterations=1)
    print("\n" + render_figure5(points))
    by_name = {p.workload: p for p in points}

    # Training is slower than inference for every workload, on both
    # devices — and variably so.
    ratios = []
    for point in points:
        assert point.training_cpu > point.inference_cpu, point.workload
        assert point.training_gpu > point.inference_gpu, point.workload
        ratios.append(point.cpu_train_infer_ratio)
    assert max(ratios) / min(ratios) > 1.2  # "it is variably faster"

    # Convolutional networks pay a higher training premium on average
    # (backward conv needs two reduction kernels vs one forward).
    conv_premium = np.mean([by_name[n].cpu_train_infer_ratio
                            for n in CONV_NETS])
    other_premium = np.mean([by_name[n].cpu_train_infer_ratio
                             for n in NON_CONV])
    assert conv_premium > other_premium

    # "GPU performance is substantially higher" for every workload...
    for point in points:
        assert point.gpu_speedup_training > 1.0, point.workload
    # "...especially on workloads with higher skew in their operation
    # profile": the dense conv nets gain more than the skinny-op models.
    assert by_name["vgg"].gpu_speedup_training > \
        5 * by_name["memnet"].gpu_speedup_training

    # Train/infer gaps on GPU correlate with gaps on CPU. The paper calls
    # the correlation "strong"; under our analytic device models it is
    # positive but weaker (~0.3 Pearson over 8 points) — recorded as a
    # deviation in EXPERIMENTS.md.
    cpu_gaps = [p.cpu_train_infer_ratio for p in points]
    gpu_gaps = [p.gpu_train_infer_ratio for p in points]
    correlation = np.corrcoef(cpu_gaps, gpu_gaps)[0, 1]
    assert correlation > 0.0, correlation
