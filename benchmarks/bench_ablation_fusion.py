"""Ablation: kernel fusion vs composed primitives for recurrent models.

The paper's Figs. 3/6b show fine-grained recurrent graphs (seq2seq-class
models) spending their time in many small elementwise/data-movement
operations whose cost is dominated by per-op dispatch — "there are
limits to the benefits that can be extracted" from accelerating the big
kernels alone. Kernel fusion is the system-level answer; this ablation
quantifies it by building the *same* stacked-LSTM model twice — once
from ~15 primitives per step (`rnn.LSTMCell`), once with the fused
`LSTMBlockCell` op — and comparing op counts and modeled step times.
"""

import numpy as np

from repro.framework import ops, rnn
from repro.framework.device_model import cpu
from repro.framework.graph import Graph
from repro.framework.optimizers import AdamOptimizer
from repro.framework.session import Session
from repro.profiling.profile import OperationProfile
from repro.profiling.tracer import Tracer

HIDDEN = 32
BATCH = 16
STEPS = 12
LAYERS = 2


def _build(fused: bool):
    graph = Graph()
    rng = np.random.default_rng(0)
    with graph.as_default():
        cell_cls = rnn.FusedLSTMCell if fused else rnn.LSTMCell
        inputs = [ops.placeholder((BATCH, HIDDEN), name=f"t{t}")
                  for t in range(STEPS)]
        cells = [cell_cls(HIDDEN, HIDDEN, rng, name=f"l{i}")
                 for i in range(LAYERS)]
        states = [cell.zero_state(BATCH) for cell in cells]
        outputs = []
        for step_input in inputs:
            out = step_input
            new_states = []
            for cell, state in zip(cells, states):
                out, new_state = cell(out, state)
                new_states.append(new_state)
            states = new_states
            outputs.append(out)
        loss = ops.reduce_mean(ops.square(outputs[-1]))
        train = AdamOptimizer(1e-3).minimize(loss)
    session = Session(graph, seed=0)
    feed = {p: np.random.default_rng(1).standard_normal(
        (BATCH, HIDDEN)).astype(np.float32) for p in inputs}
    return graph, session, loss, train, feed


def _profile(fused: bool):
    graph, session, loss, train, feed = _build(fused)
    training_ops = len(graph.subgraph([loss, train]))
    session.run([loss, train], feed_dict=feed)  # warmup
    tracer = Tracer()
    for _ in range(2):
        session.run([loss, train], feed_dict=feed, tracer=tracer)
    modeled = OperationProfile.from_trace(
        tracer, "fused" if fused else "composed", device=cpu(1))
    overhead = tracer.framework_overhead_fraction()
    return training_ops, modeled.seconds_per_step(), overhead


def test_fusion_ablation(benchmark):
    def run_ablation():
        return {"composed": _profile(fused=False),
                "fused": _profile(fused=True)}

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    composed_ops, composed_time, composed_overhead = results["composed"]
    fused_ops, fused_time, fused_overhead = results["fused"]

    print(f"\nKernel-fusion ablation ({LAYERS}x{HIDDEN} LSTM, "
          f"{STEPS} steps, batch {BATCH}):")
    print(f"  composed: {composed_ops:5d} training ops, "
          f"{composed_time * 1e3:6.2f} ms/step modeled, "
          f"{composed_overhead:5.1%} executor overhead")
    print(f"  fused:    {fused_ops:5d} training ops, "
          f"{fused_time * 1e3:6.2f} ms/step modeled, "
          f"{fused_overhead:5.1%} executor overhead")
    print(f"  op-count reduction {composed_ops / fused_ops:.1f}x, "
          f"modeled speedup {composed_time / fused_time:.2f}x")

    # Fusion collapses each step's ~15 primitives into one forward and
    # one backward op.
    assert composed_ops / fused_ops > 3.0
    # Dispatch savings dominate for these small tensors: the fused graph
    # is substantially faster under the modeled CPU.
    assert fused_time < 0.7 * composed_time
    # Executor overhead (a measured quantity) also drops.
    assert fused_overhead < composed_overhead + 0.05


def test_automatic_fusion_on_seq2seq(benchmark):
    """The pattern-matching pass achieves the fusion win automatically:
    every composed LSTM step in seq2seq's inference graph is recognized
    and replaced, with bit-identical outputs."""
    import numpy as np

    from repro import workloads
    from repro.framework.fuse import fuse_lstm_cells

    # A fresh instance: the suite-shared cached model may have been
    # trained by other benchmarks, while the fused graph's variables
    # initialize from their initial values.
    model = workloads.create("seq2seq", config="default", seed=0)

    def run_pass():
        return fuse_lstm_cells(model.graph, [model.inference_output])

    result = benchmark.pedantic(run_pass, rounds=1, iterations=1)
    steps = model.config["sequence_length"]
    layers = model.config["num_layers"]
    expected_cells = (2 * steps + 1) * layers
    print(f"\nauto-fusion: {result.fused_cells} LSTM steps fused, "
          f"{result.stats.ops_in} -> {result.stats.ops_out} ops")
    assert result.fused_cells == expected_cells
    assert result.stats.ops_out < 0.5 * result.stats.ops_in

    feed = model.sample_feed(training=False)
    original = model.session.run(model.inference_output, feed_dict=feed)
    fused = Session(result.graph, seed=0).run(
        result.map_tensor(model.inference_output),
        feed_dict=result.map_feed(feed))
    np.testing.assert_allclose(original, fused, rtol=1e-5, atol=1e-6)
