"""Ablations on the analytic device model (the DESIGN.md substitution).

The reproduction's Figs. 3-6 rest on three modeled mechanisms:

1. per-op dispatch overhead makes fine-grained graphs (seq2seq, memnet)
   elementwise/data-movement-bound;
2. the Eigen-style grain limits how many threads a small op can use;
3. GPU utilization rises with trip count, so dense ops gain most.

These benchmarks vary each parameter and assert the result moves the way
the mechanism predicts — evidence that the headline figures are driven by
the modeled physics, not by accidental constant choices.
"""

import dataclasses

import pytest

from repro.analysis.suite import get_model
from repro.framework.device_model import CPUDeviceModel, GPUDeviceModel
from repro.profiling.profile import OperationProfile
from repro.profiling.tracer import Tracer


@pytest.fixture(scope="module")
def seq2seq_trace():
    model = get_model("seq2seq", "default")
    model.run_training(1)
    tracer = Tracer()
    model.run_training(2, tracer=tracer)
    return tracer


@pytest.fixture(scope="module")
def vgg_trace():
    model = get_model("vgg", "default")
    model.run_training(1)
    tracer = Tracer()
    model.run_training(2, tracer=tracer)
    return tracer


def _small_op_share(tracer, dispatch_overhead: float) -> float:
    device = dataclasses.replace(CPUDeviceModel(),
                                 dispatch_overhead=dispatch_overhead)
    profile = OperationProfile.from_trace(tracer, "seq2seq", device=device)
    breakdown = profile.class_breakdown()
    return breakdown["C"] + breakdown["G"]  # elementwise + data movement


def test_dispatch_overhead_drives_fine_grained_profiles(benchmark,
                                                        seq2seq_trace):
    def sweep():
        return [_small_op_share(seq2seq_trace, ovh)
                for ovh in (1e-6, 5e-6, 10e-6, 30e-6)]

    shares = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nseq2seq elementwise+movement share vs dispatch overhead: "
          + ", ".join(f"{s:.0%}" for s in shares))
    # Mechanism: more per-op overhead -> tiny unrolled ops matter more.
    assert all(a <= b + 1e-9 for a, b in zip(shares, shares[1:]))
    assert shares[-1] > shares[0] + 0.1


def test_grain_limits_thread_scaling(benchmark, seq2seq_trace, vgg_trace):
    def speedup(tracer, grain):
        t1 = OperationProfile.from_trace(
            tracer, device=dataclasses.replace(
                CPUDeviceModel(threads=1), grain=grain)).total_seconds
        t8 = OperationProfile.from_trace(
            tracer, device=dataclasses.replace(
                CPUDeviceModel(threads=8), grain=grain)).total_seconds
        return t1 / t8

    def sweep():
        return {(name, grain): speedup(tracer, grain)
                for name, tracer in (("seq2seq", seq2seq_trace),
                                     ("vgg", vgg_trace))
                for grain in (256.0, 2048.0, 16384.0)}

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n8-thread speedup by grain:")
    for (name, grain), value in speedups.items():
        print(f"  {name:8s} grain={grain:7.0f}  {value:.2f}x")
    # Coarser grain -> fewer ops can split across threads -> less speedup.
    for name in ("seq2seq", "vgg"):
        ordered = [speedups[(name, g)] for g in (256.0, 2048.0, 16384.0)]
        assert all(a >= b - 1e-9 for a, b in zip(ordered, ordered[1:])), name
    # vgg's huge convolutions retain strong scaling even at the coarsest
    # grain, while seq2seq's tiny ops never scale at even the finest —
    # the qualitative Fig. 6 contrast is robust across the whole range.
    assert speedups[("vgg", 16384.0)] > 2.0
    assert speedups[("seq2seq", 256.0)] < 1.5


def test_gpu_saturation_controls_dense_advantage(benchmark, vgg_trace,
                                                 seq2seq_trace):
    def advantage(tracer, saturation):
        gpu = dataclasses.replace(GPUDeviceModel(),
                                  saturation_trips=saturation)
        cpu_time = OperationProfile.from_trace(
            tracer, device=CPUDeviceModel(threads=1)).total_seconds
        gpu_time = OperationProfile.from_trace(tracer,
                                               device=gpu).total_seconds
        return cpu_time / gpu_time

    def sweep():
        return [advantage(vgg_trace, s) for s in (4096.0, 16384.0, 65536.0)]

    advantages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nvgg GPU speedup vs saturation threshold: "
          + ", ".join(f"{a:.1f}x" for a in advantages))
    # Harder saturation -> lower utilization -> smaller GPU advantage,
    # but the dense workload stays GPU-favoured throughout.
    assert all(a >= b - 1e-9 for a, b in zip(advantages, advantages[1:]))
    assert advantages[-1] > 1.0


def test_fig4_clusters_robust_to_device_choice(benchmark):
    """The Fig. 4 cluster structure must not depend on which device model
    priced the trace: conv nets cluster under CPU and GPU pricing alike."""
    from repro.analysis.similarity import cluster_profiles
    from repro.analysis.suite import profile_suite

    def clusters():
        out = {}
        for device in (CPUDeviceModel(threads=1), GPUDeviceModel()):
            profiles = profile_suite(config="default", steps=2,
                                     device=device)
            dendrogram = cluster_profiles(profiles)
            index = {name: i for i, name in enumerate(dendrogram.labels)}
            conv = max(
                dendrogram.cophenetic_distance(index["alexnet"],
                                               index["vgg"]),
                dendrogram.cophenetic_distance(index["vgg"],
                                               index["residual"]))
            cross = dendrogram.cophenetic_distance(index["vgg"],
                                                   index["memnet"])
            out[device.name] = (conv, cross)
        return out

    result = benchmark.pedantic(clusters, rounds=1, iterations=1)
    print("\nconv-trio vs conv-to-memnet cophenetic distances by device:")
    for device_name, (conv, cross) in result.items():
        print(f"  {device_name}: trio {conv:.3f}, to memnet {cross:.3f}")
        assert conv < cross, device_name
