"""Record the framework-overhead baseline for regression comparison.

Writes ``benchmarks/BENCH_framework_overhead.json``: per-workload
framework-overhead fractions (default config, the Section V-A metric)
plus the plan-vs-legacy dispatch measurements from
``bench_plan_compile`` (tiny config). ``bench_framework_overhead.py``
and ``bench_plan_compile.py`` compare fresh runs against this file.

Run from the repository root::

    PYTHONPATH=src python benchmarks/record_overhead_baseline.py
"""

import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from bench_framework_overhead import _measure_overheads  # noqa: E402
from bench_plan_compile import BASELINE_PATH, _measure_workload  # noqa: E402

from repro.workloads import WORKLOAD_NAMES  # noqa: E402


def main() -> None:
    overheads = _measure_overheads()
    overheads_codegen = _measure_overheads(backend="codegen")
    dispatch = {name: _measure_workload(name) for name in WORKLOAD_NAMES}
    payload = {
        "metadata": {
            "recorded": time.strftime("%Y-%m-%d"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": ("framework overhead: default config, interp and "
                     "codegen backends; dispatch: tiny config, training "
                     "fetches, best-of-3"),
        },
        "overhead_fraction": overheads,
        "overhead_fraction_codegen": overheads_codegen,
        "workloads": dispatch,
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH}")
    for name in WORKLOAD_NAMES:
        r = dispatch[name]
        print(f"  {name:>10s}  overhead {overheads[name]:6.2%}  "
              f"codegen {overheads_codegen[name]:6.2%}  "
              f"plan {r['plan_seconds_per_step']:.6f}s/step  "
              f"legacy {r['legacy_seconds_per_step']:.6f}s/step  "
              f"({r['dispatch_speedup']:.2f}x)")


if __name__ == "__main__":
    main()
