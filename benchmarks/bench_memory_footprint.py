"""Extension study: intermediate-tensor memory footprint per workload.

The executor reference-counts intermediates and records the peak live
bytes per step (measured, not modeled — these are the actual numpy
buffers). The expected shape: training holds more live state than
inference (activations kept for the backward pass flow through the
graph), and the deep convolutional models carry the largest activation
footprints.
"""

from repro.analysis.suite import get_model
from repro.profiling.tracer import Tracer
from repro.workloads import WORKLOAD_NAMES


def _measure():
    rows = {}
    for name in WORKLOAD_NAMES:
        model = get_model(name, "default")
        train_tracer = Tracer()
        model.run_training(1, tracer=train_tracer)
        infer_tracer = Tracer()
        model.run_inference(1, tracer=infer_tracer)
        rows[name] = (train_tracer.peak_live_bytes(),
                      infer_tracer.peak_live_bytes(),
                      model.num_parameters() * 4)
    return rows


def test_memory_footprint(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print("\nPeak live intermediate bytes per step (measured):")
    print(f"{'workload':>10s}  {'training':>10s}  {'inference':>10s}  "
          f"{'params':>10s}")
    for name, (train_peak, infer_peak, param_bytes) in rows.items():
        print(f"{name:>10s}  {train_peak / 1e6:8.2f}MB  "
              f"{infer_peak / 1e6:8.2f}MB  {param_bytes / 1e6:8.2f}MB")

    for name, (train_peak, infer_peak, _) in rows.items():
        assert train_peak > 0 and infer_peak > 0, name
        # Training must hold at least as much live state as inference.
        assert train_peak >= 0.8 * infer_peak, name

    # The big-image conv nets have the largest training footprints
    # among the suite.
    conv_peak = max(rows[n][0] for n in ("vgg", "residual", "alexnet"))
    other_peak = max(rows[n][0] for n in ("memnet", "autoenc", "seq2seq"))
    assert conv_peak > other_peak
