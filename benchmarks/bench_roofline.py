"""Roofline study: compute- vs memory- vs overhead-bound time.

Extension analysis built on the paper's cost model: splits each
workload's modeled training step by the resource that bounds each
operation. The expected shape backs the paper's hardware narrative —
convolutional workloads are compute-bound (the accelerator-friendly
regime), while the fine-grained recurrent/memory models burn their time
on per-op overhead and memory traffic, which no FLOP engine fixes.
"""

from repro.analysis.roofline import render_roofline, roofline
from repro.analysis.suite import get_model
from repro.framework.device_model import cpu, gpu
from repro.workloads import WORKLOAD_NAMES


def test_roofline_cpu(benchmark):
    def build():
        return [roofline(get_model(name, "default"), device=cpu(1))
                for name in WORKLOAD_NAMES]

    points = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + render_roofline(points))
    by_name = {p.workload: p for p in points}

    # Conv nets: dominated by compute-bound time.
    for name in ("vgg", "residual", "alexnet", "deepq"):
        assert by_name[name].fraction("compute") > 0.5, name
    # vgg is the extreme compute-bound member.
    assert by_name["vgg"].fraction("compute") > 0.85

    # seq2seq's tiny unrolled ops: mostly overhead-bound.
    assert by_name["seq2seq"].fraction("overhead") > 0.4
    # memnet: overhead + memory dwarf compute.
    memnet = by_name["memnet"]
    assert memnet.fraction("overhead") + memnet.fraction("memory") > \
        memnet.fraction("compute")


def test_roofline_gpu_shifts_toward_overhead(benchmark):
    """On the GPU the dense work collapses, so launch overhead claims a
    larger share everywhere — the accelerator version of Amdahl's law."""
    def build():
        out = {}
        for name in ("vgg", "seq2seq"):
            model = get_model(name, "default")
            out[name] = (roofline(model, device=cpu(1)),
                         roofline(model, device=gpu()))
        return out

    pairs = benchmark.pedantic(build, rounds=1, iterations=1)
    for name, (cpu_point, gpu_point) in pairs.items():
        print(f"\n{name}: overhead share {cpu_point.fraction('overhead'):.1%}"
              f" (cpu) -> {gpu_point.fraction('overhead'):.1%} (gpu)")
        assert gpu_point.fraction("overhead") >= \
            cpu_point.fraction("overhead") - 0.05, name
