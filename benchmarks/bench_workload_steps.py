"""Wall-clock step benchmarks for every Fathom workload.

Not a figure from the paper — this is the conventional pytest-benchmark
use: measured seconds per training step and per inference step for each
workload at the default configuration, so regressions in the framework
or the models show up as timing changes.
"""

import pytest

from repro.analysis.suite import get_model
from repro.workloads import WORKLOAD_NAMES


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_training_step(benchmark, name):
    model = get_model(name, "default")
    model.run_training(1)  # warmup / variable init
    benchmark.pedantic(model.run_training, kwargs={"steps": 1},
                       rounds=3, iterations=1)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_inference_step(benchmark, name):
    model = get_model(name, "default")
    model.run_inference(1)
    benchmark.pedantic(model.run_inference, kwargs={"steps": 1},
                       rounds=3, iterations=1)
