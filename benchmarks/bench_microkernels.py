"""Primitive-operation microbenchmarks (measured wall time).

The workload benchmarks time whole training steps; these time the
individual kernels the device model prices, at representative sizes —
the data you would use to re-calibrate
:mod:`repro.framework.device_model` for new hardware (see
``framework.calibrate`` for the automated version).
"""

import numpy as np
import pytest

from repro.framework import graph as graph_module
from repro.framework import ops
from repro.framework.session import Session


def _run_kernel(build):
    graph = graph_module.reset_default_graph()
    fetch = build()
    session = Session(graph, seed=0)
    session.run(fetch)  # warm: plan cache, first-run validation
    return session, fetch


RNG = np.random.default_rng(0)


def _array(*shape):
    return RNG.standard_normal(shape).astype(np.float32)


KERNELS = {
    "matmul_128": lambda: ops.matmul(ops.constant(_array(128, 128)),
                                     ops.constant(_array(128, 128))),
    "matmul_512": lambda: ops.matmul(ops.constant(_array(512, 512)),
                                     ops.constant(_array(512, 512))),
    "conv2d_32x32x64": lambda: ops.conv2d(
        ops.constant(_array(4, 32, 32, 32)),
        ops.constant(_array(3, 3, 32, 64))),
    "elementwise_1m": lambda: ops.multiply(
        ops.constant(_array(1024, 1024)), ops.constant(_array(1024, 1024))),
    "reduce_1m_to_scalar": lambda: ops.reduce_sum(
        ops.constant(_array(1024, 1024))),
    "softmax_4096x128": lambda: ops.softmax(ops.constant(_array(4096, 128))),
    "gather_64k": lambda: ops.gather(
        ops.constant(_array(65536, 64)),
        ops.constant(RNG.integers(0, 65536, 4096).astype(np.int32))),
    "transpose_1m": lambda: ops.transpose(ops.constant(_array(1024, 1024))),
    "lstm_block_64x256": lambda: __import__(
        "repro.framework.ops.rnn_ops", fromlist=["lstm_block_cell"]
    ).lstm_block_cell(
        ops.constant(_array(64, 256)), ops.constant(_array(64, 256)),
        ops.constant(_array(64, 256)), ops.constant(_array(512, 1024)),
        ops.constant(np.zeros(1024, dtype=np.float32)))[1],
}


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel(benchmark, name):
    session, fetch = _run_kernel(KERNELS[name])
    benchmark.pedantic(session.run, args=(fetch,), rounds=5, iterations=1)
