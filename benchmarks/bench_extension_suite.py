"""The living-suite mechanism at work: characterize the extensions.

Profiles the extension workloads with exactly the same toolchain as the
core eight and verifies they genuinely broaden the suite's coverage:
skipgram lands far from every core workload's profile (a new point in
the Fig. 4 space), while lstm_lm lands near seq2seq (both are unrolled
recurrent stacks) — extensions add diversity where they should and
cluster where they should.
"""

from repro.analysis.similarity import cluster_profiles, profile_distance
from repro.analysis.suite import get_model, profile_suite
from repro.framework.device_model import cpu
from repro.workloads import extensions


def _extension_profiles():
    profiles = {}
    for name in extensions.EXTENSION_WORKLOADS:
        model = extensions.create(name, config="default", seed=0)
        profiles[name] = model.profile(mode="training", steps=2,
                                       device=cpu(1))
    return profiles


def test_extensions_extend_the_suite(benchmark, suite_profiles):
    ext_profiles = benchmark.pedantic(_extension_profiles, rounds=1,
                                      iterations=1)
    core_by_name = {p.workload: p for p in suite_profiles}

    print("\nExtension profiles vs core suite (cosine distance):")
    for name, profile in ext_profiles.items():
        distances = {core: profile_distance(profile, core_profile)
                     for core, core_profile in core_by_name.items()}
        nearest = min(distances, key=distances.get)
        print(f"  {name:10s} nearest core workload: {nearest} "
              f"(d={distances[nearest]:.3f}); farthest: "
              f"{max(distances, key=distances.get)} "
              f"(d={max(distances.values()):.3f})")

    # lstm_lm is an unrolled recurrent stack: its nearest neighbour is a
    # recurrent core workload (speech in practice — both are dominated by
    # per-step matmuls at default scale), never a convolutional one.
    lm_distances = {core: profile_distance(ext_profiles['lstm_lm'],
                                           core_profile)
                    for core, core_profile in core_by_name.items()}
    assert min(lm_distances, key=lm_distances.get) in ("seq2seq", "memnet",
                                                       "speech")

    # skipgram is not a near-duplicate of any core profile: it genuinely
    # widens coverage.
    sg_distances = [profile_distance(ext_profiles['skipgram'], p)
                    for p in suite_profiles]
    assert min(sg_distances) > 0.05

    # neuraltalk is the CNN+LSTM hybrid: it must land nearest a
    # convolutional workload (its encoder dominates the default profile).
    nt_distances = {core: profile_distance(ext_profiles['neuraltalk'],
                                           core_profile)
                    for core, core_profile in core_by_name.items()}
    assert min(nt_distances, key=nt_distances.get) in (
        "alexnet", "vgg", "residual", "deepq")

    # The clustering machinery accepts the extended suite unchanged.
    extended = suite_profiles + list(ext_profiles.values())
    dendrogram = cluster_profiles(extended)
    assert len(dendrogram.labels) == len(extended)
    assert len(dendrogram.merges) == len(extended) - 1
