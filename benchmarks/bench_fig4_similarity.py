"""Fig. 4: hierarchical similarity of the Fathom workloads.

Regenerates the cosine-distance / centroid-linkage dendrogram and asserts
the cluster structure the paper reports: the convolutional networks form
a tight lower cluster; speech and autoenc pair up; and despite both being
recurrent, speech and seq2seq are far apart while seq2seq sits nearest
memnet.
"""

from repro.analysis.similarity import cluster_profiles, profile_distance


def _render(dendrogram):
    lines = ["Fig. 4: agglomerative clustering (cosine distance, centroid "
             "linkage)"]
    count = len(dendrogram.labels)

    def name(index):
        if index < count:
            return dendrogram.labels[index]
        return "(" + " ".join(dendrogram.labels[i] for i in
                              dendrogram.cluster_members(index)) + ")"

    for merge in dendrogram.merges:
        lines.append(f"  d={merge.distance:5.3f}  {name(merge.left)}"
                     f"  +  {name(merge.right)}")
    order = " | ".join(dendrogram.labels[i] for i in dendrogram.leaf_order())
    lines.append(f"  leaf order: {order}")
    return "\n".join(lines)


def test_fig4_similarity_dendrogram(benchmark, suite_profiles,
                                    profile_by_name):
    dendrogram = benchmark(cluster_profiles, suite_profiles)
    print("\n" + _render(dendrogram))

    labels = dendrogram.labels
    index = {name: i for i, name in enumerate(labels)}

    def joined_at(a, b):
        return dendrogram.cophenetic_distance(index[a], index[b])

    # The ImageNet trio clusters tightly (paper: "the three ImageNet
    # challenge networks are grouped closely").
    conv_trio = max(joined_at("alexnet", "vgg"),
                    joined_at("vgg", "residual"),
                    joined_at("alexnet", "residual"))
    assert conv_trio < 0.3

    # deepq joins the convolutional cluster before any non-conv workload.
    assert joined_at("deepq", "alexnet") < joined_at("deepq", "speech")
    assert joined_at("deepq", "alexnet") < joined_at("deepq", "memnet")

    # "speech and autoenc have more similar performance profiles to each
    # other than seq2seq and memnet [do to them]".
    assert joined_at("speech", "autoenc") < joined_at("speech", "seq2seq")

    # The headline: the two recurrent models are NOT similar ("somewhat
    # less intuitive is the large distance between the two recurrent
    # networks, speech and seq2seq").
    direct = profile_distance(profile_by_name["speech"],
                              profile_by_name["seq2seq"])
    assert direct > 0.3, direct
    # seq2seq pairs with memnet at the top of the dendrogram.
    assert joined_at("seq2seq", "memnet") < joined_at("seq2seq", "speech")
