"""Extension study: data-parallel scaling limits per workload.

Prices Krizhevsky-era data parallelism for the suite: per-replica
modeled compute vs ring-all-reduce gradient exchange on 10 GbE. The
expected shape: efficiency falls with worker count everywhere; the
compute-heavy/parameter-light convolutional trunks sustain it longest,
and the parameter-heavy dense/embedding models hit the communication
wall almost immediately.
"""

from repro.analysis.scaling import render_scaling, scaling_curve
from repro.analysis.suite import get_model
from repro.workloads import WORKLOAD_NAMES


def test_data_parallel_scaling(benchmark):
    def build():
        return [scaling_curve(get_model(name, "default"))
                for name in WORKLOAD_NAMES]

    curves = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + render_scaling(curves))
    by_name = {c.workload: c for c in curves}

    for curve in curves:
        # Efficiency is monotonically non-increasing in workers.
        efficiencies = [curve.efficiency(k) for k in curve.worker_counts]
        assert all(a >= b - 1e-9 for a, b in
                   zip(efficiencies, efficiencies[1:])), curve.workload
        assert efficiencies[0] == 1.0

    # The conv trunks out-scale the dense/embedding-heavy models: vgg's
    # compute/communication ratio beats autoenc's (three dense layers,
    # big parameter tensors, comparatively little compute).
    assert by_name["vgg"].compute_comm_ratio > \
        3 * by_name["autoenc"].compute_comm_ratio
    # residual (conv-only, few params) scales better at 8 workers than
    # autoenc.
    assert by_name["residual"].efficiency(8) > by_name["autoenc"].efficiency(8)
