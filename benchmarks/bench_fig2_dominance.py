"""Fig. 2: total execution time is dominated by a handful of op types.

Regenerates the cumulative dominance curves for all eight workloads and
asserts the paper's quantitative claim: 5-15 "heavy" operation types
cover >= 90% of execution time, and the heavy types differ across models.
"""

from repro.analysis.dominance import dominance_curves, render_dominance_table


def test_fig2_dominance_curves(benchmark, suite_profiles):
    curves = benchmark(dominance_curves, suite_profiles)
    print("\n" + render_dominance_table(curves))

    for curve in curves:
        k90 = curve.types_for_coverage(0.9)
        # "a handful of heavy operation types (usually 5 to 15) are
        # collectively responsible for upwards of 90%"
        assert k90 <= 15, f"{curve.workload}: {k90} types for 90%"
        # The skew is real: far fewer types than the total vocabulary.
        assert k90 < curve.num_types, curve.workload
        # Curves are valid CDFs.
        assert curve.curve[-1] > 0.999

    # "these types are not the same for every model": the heaviest op
    # type differs across the suite.
    heaviest = {curve.op_types[0] for curve in curves}
    assert len(heaviest) >= 3, heaviest
