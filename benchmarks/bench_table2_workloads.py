"""Table II: the Fathom workloads.

Regenerates the workload table from live registry metadata and asserts
it matches the paper's rows.
"""

from repro.analysis.workload_table import render_table2, table2_rows


def test_table2_regeneration(benchmark):
    text = benchmark(render_table2)
    print("\n" + text)

    rows = {r.name: r for r in table2_rows()}
    assert set(rows) == {"seq2seq", "memnet", "speech", "autoenc",
                         "residual", "vgg", "alexnet", "deepq"}
    assert rows["seq2seq"].layers == 7
    assert rows["memnet"].layers == 3
    assert rows["speech"].layers == 5
    assert rows["autoenc"].layers == 3
    assert rows["residual"].layers == 34
    assert rows["vgg"].layers == 19
    assert rows["alexnet"].layers == 5
    assert rows["deepq"].layers == 5
    assert rows["autoenc"].learning_task == "Unsupervised"
    assert rows["deepq"].learning_task == "Reinforcement"
    # Three distinct ImageNet-vintage classifiers for the longitudinal
    # comparison, sharing a dataset.
    assert {rows[n].dataset for n in ("alexnet", "vgg", "residual")} == \
        {"ImageNet"}
