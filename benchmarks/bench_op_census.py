"""Static operation census over the suite (Section III-C's structure claim).

Not a numbered figure — this regenerates the structural facts the paper
reasons from: training graphs are a few times larger than inference
graphs (backward ops + optimizer), the convolutional networks carry the
FLOPs, and arithmetic intensity separates the compute-bound conv nets
from the memory-bound embedding/recurrent models.
"""

from repro.analysis.census import census, render_census
from repro.analysis.suite import get_model
from repro.workloads import WORKLOAD_NAMES


def test_operation_census(benchmark):
    def build():
        return [census(get_model(name, "default"))
                for name in WORKLOAD_NAMES]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + render_census(rows))
    by_name = {r.workload: r for r in rows}

    for row in rows:
        # Training graphs strictly extend inference graphs.
        assert row.training_ops > row.inference_ops, row.workload
        assert row.backward_ops > 0, row.workload
        assert row.parameters > 0

    # The deepest model (residual, 34 layers) has the longest critical
    # path among the convolutional networks.
    conv = ["residual", "vgg", "alexnet", "deepq"]
    assert by_name["residual"].critical_path == max(
        by_name[n].critical_path for n in conv)

    # Conv nets are the FLOP-heavy, high-arithmetic-intensity members;
    # memnet is the memory-bound extreme.
    assert by_name["vgg"].flops_per_step > by_name["memnet"].flops_per_step
    assert by_name["vgg"].arithmetic_intensity > \
        5 * by_name["memnet"].arithmetic_intensity

    # The statically-unrolled recurrent models have the biggest graphs.
    assert by_name["seq2seq"].training_ops > by_name["alexnet"].training_ops
    assert by_name["speech"].training_ops > by_name["alexnet"].training_ops
