"""Section V-E's closing lesson, made quantitative.

"While convolution and matrix multiplication are attractive targets for
hardware support, there are limits to the benefits that can be
extracted from them. This is especially true for deep learning models
with non-convolutional layers, sophisticated loss functions or
optimization algorithms, or sparse storage."

This benchmark applies hypothetical 10x/100x accelerators for
convolution, GEMM, and both combined to every workload's traced profile
and reports the end-to-end Amdahl speedups and their ceilings.
"""

from repro.analysis.accelerator import PRESETS, render_what_if, what_if
from repro.analysis.suite import get_model
from repro.workloads import WORKLOAD_NAMES


def test_accelerator_what_if(benchmark):
    def build():
        return {preset: [what_if(get_model(name, "default"), classes)
                         for name in WORKLOAD_NAMES]
                for preset, classes in PRESETS.items()}

    by_preset = benchmark.pedantic(build, rounds=1, iterations=1)
    for preset, results in by_preset.items():
        print("\n" + render_what_if(results, preset))

    conv = {r.workload: r for r in by_preset["conv-engine"]}
    gemm = {r.workload: r for r in by_preset["gemm-engine"]}
    both = {r.workload: r for r in by_preset["conv+gemm"]}

    # A conv engine helps only the conv nets — and even there, far below
    # its nominal factor.
    assert conv["vgg"].speedups[100.0] > 5.0
    assert conv["vgg"].speedups[100.0] < 50.0    # Amdahl bites
    for name in ("seq2seq", "memnet", "speech", "autoenc"):
        assert conv[name].speedups[100.0] < 1.05, name

    # A GEMM engine is the mirror image.
    assert gemm["speech"].speedups[10.0] > 1.8
    assert gemm["vgg"].speedups[100.0] < 1.1

    # Even accelerating BOTH heavy classes 100x leaves every workload far
    # from 100x — the "limits to the benefits" claim.
    for name, result in both.items():
        assert result.speedups[100.0] < 25.0, (name,
                                               result.speedups[100.0])
    # memnet, the skinny-tensor model, barely moves no matter what.
    assert both["memnet"].ceiling() < 1.5

    # Diminishing returns: the 100x engine buys less than 10x more than
    # the 10x engine everywhere.
    for name in WORKLOAD_NAMES:
        assert both[name].speedups[100.0] < \
            10 * both[name].speedups[10.0]
