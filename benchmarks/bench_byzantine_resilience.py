"""Byzantine resilience: detection latency and loss damage, measured.

One persistent liar (worker 1) attacks memnet-tiny with each byzantine
fault kind, across every aggregation mode and two cluster widths. Per
cell the benchmark records:

* **detection latency** — steps from the first injected firing to the
  first ``gradient_suspect`` conviction (attestation modes only). The
  loud kinds (64x scale, stale replay) must convict on the firing step.
  Signflip and low-rate drift are the interesting ones: their
  statistics are geometry-dependent (a flipped shard's cosine against
  four peers can stay above the floor where against two it cannot), so
  at some widths only the seeded round-robin probe catches them —
  within its ``K - 1``-step bound.
* **bitwise prefix** — how many leading steps of the faulted run match
  the same-config fault-free trajectory bit-for-bit. Plain ``mean``
  commits the first lie immediately (prefix 1: only the pre-update
  forward matches); ``screened_mean`` stays bitwise clean until an
  eviction legitimately re-shards the cluster.
* **final loss gap** — |final faulted loss - final fault-free loss|,
  the tolerance story for the estimator modes (trimmed mean,
  coordinate median), which never convict anyone and pay instead with
  a small bias.

Records benchmarks/BENCH_byzantine.json.
"""

import json
import pathlib

import numpy as np

from repro.distributed import ClusterConfig, ClusterRuntime
from repro.framework.faults import (BYZANTINE_FAULT_KINDS,
                                    ClusterFaultPlan, ClusterFaultSpec)
from repro.workloads import create

WORKLOAD = "memnet"
STEPS = 5
WORKER_COUNTS = (3, 5)
AGGREGATIONS = ("mean", "screened_mean", "trimmed_mean",
                "coordinate_median")
#: attack parameters: loud scale, geometry-dependent signflip, exact
#: stale replay, and a drift gentle enough to hide from the statistics
ATTACKS = {
    "byzantine_scale": dict(scale_factor=64.0),
    "byzantine_signflip": dict(),
    "byzantine_stale": dict(),
    "byzantine_drift": dict(drift_rate=1.0),
}

RECORD_PATH = pathlib.Path(__file__).parent / "BENCH_byzantine.json"


def run_once(workers, aggregation, faults=None):
    config = ClusterConfig(workers=workers, strategy="allreduce",
                           seed=0, aggregation=aggregation)
    runtime = ClusterRuntime(create(WORKLOAD, config="tiny", seed=0),
                             config=config, faults=faults)
    return runtime.run(STEPS)


def measure_cell(kind, aggregation, workers, clean):
    plan = ClusterFaultPlan([ClusterFaultSpec(
        kind, worker=1, max_triggers=None, **ATTACKS[kind])])
    result = run_once(workers, aggregation, faults=plan)
    fired = [sig[0] for sig in result.injected if sig[2] == kind]
    suspects = [e.step for e in result.events_of("gradient_suspect")]
    latency = (suspects[0] - fired[0]
               if fired and suspects else None)
    prefix = 0
    for faulted_loss, clean_loss in zip(result.losses, clean.losses):
        if faulted_loss != clean_loss:
            break
        prefix += 1
    return {
        "detection_latency": latency,
        "convicted_steps": suspects,
        "evicted": bool(result.events_of("evict")),
        "bitwise_prefix": prefix,
        "final_gap": abs(result.losses[-1] - clean.losses[-1]),
        "final_loss": result.losses[-1],
    }


def build_matrix():
    matrix = {}
    for workers in WORKER_COUNTS:
        for aggregation in AGGREGATIONS:
            clean = run_once(workers, aggregation)
            for kind in BYZANTINE_FAULT_KINDS:
                cell = measure_cell(kind, aggregation, workers, clean)
                matrix[f"{kind}/{aggregation}/k{workers}"] = cell
    return matrix


def test_byzantine_resilience_matrix(benchmark):
    matrix = benchmark.pedantic(build_matrix, rounds=1, iterations=1)

    print("\nkind/aggregation/width: latency  bitwise-prefix  final-gap")
    for key in sorted(matrix):
        cell = matrix[key]
        latency = ("-" if cell["detection_latency"] is None
                   else cell["detection_latency"])
        print(f"  {key:45s} {str(latency):>3s}  "
              f"{cell['bitwise_prefix']:d}/{STEPS}  "
              f"{cell['final_gap']:.2e}")

    for workers in WORKER_COUNTS:
        # Loud attacks convict on the firing step under attestation,
        # so screening extends the bitwise-clean committed prefix.
        for kind in ("byzantine_scale", "byzantine_stale"):
            cell = matrix[f"{kind}/screened_mean/k{workers}"]
            assert cell["detection_latency"] == 0, (kind, workers)
            assert cell["bitwise_prefix"] >= 4, (kind, workers)
        # Signflip and gentle drift can hide from the statistics at
        # some widths, but never from the probe: detected within the
        # K-1 round-robin bound.
        for kind in ("byzantine_signflip", "byzantine_drift"):
            cell = matrix[f"{kind}/screened_mean/k{workers}"]
            assert cell["detection_latency"] is not None, (kind, workers)
            assert cell["detection_latency"] <= workers - 1, cell
        # Plain mean commits the first lie immediately; screening is
        # never worse, and strictly better whenever conviction lands
        # on the firing step.
        for kind in BYZANTINE_FAULT_KINDS:
            mean_cell = matrix[f"{kind}/mean/k{workers}"]
            screened = matrix[f"{kind}/screened_mean/k{workers}"]
            assert mean_cell["bitwise_prefix"] <= 2, (kind, workers)
            assert screened["bitwise_prefix"] >= \
                mean_cell["bitwise_prefix"], (kind, workers)
            if screened["detection_latency"] == 0:
                assert screened["bitwise_prefix"] > \
                    mean_cell["bitwise_prefix"], (kind, workers)
        # The estimator modes never convict but stay on course.
        for aggregation in ("trimmed_mean", "coordinate_median"):
            for kind in BYZANTINE_FAULT_KINDS:
                cell = matrix[f"{kind}/{aggregation}/k{workers}"]
                assert cell["convicted_steps"] == [], (kind, aggregation)
                assert np.isfinite(cell["final_loss"])
                assert cell["final_gap"] < 0.25 * abs(cell["final_loss"])

    record = {
        "metadata": {
            "note": "persistent byzantine worker 1 vs memnet-tiny on "
                    "the executed ClusterRuntime (allreduce, virtual "
                    "clock); detection latency in steps from first "
                    "firing to first gradient_suspect conviction, "
                    "bitwise prefix vs the same-config fault-free run",
            "workload": WORKLOAD,
            "steps": STEPS,
            "worker_counts": list(WORKER_COUNTS),
            "aggregations": list(AGGREGATIONS),
            "attacks": {kind: dict(params) for kind, params
                        in ATTACKS.items()},
        },
        "matrix": matrix,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {RECORD_PATH.name}")
