"""Fig. 6: operation-type scaling with intra-op parallelism.

Regenerates the three thread sweeps (deepq = 6a, seq2seq = 6b,
memnet = 6c) and asserts the Amdahl's-law-at-the-application-level
behaviour of Section V-E.
"""

import pytest

from repro.analysis.suite import get_model
from repro.analysis.parallelism import sweep_threads

THREADS = (1, 2, 4, 8)


def _sweep(name):
    return sweep_threads(get_model(name, "default"), steps=2,
                         thread_counts=THREADS)


def test_fig6a_deepq(benchmark):
    sweep = benchmark.pedantic(_sweep, args=("deepq",), rounds=1,
                               iterations=1)
    print("\n" + sweep.render())

    # The dense kernels scale strongly...
    for op_type in ("Conv2D", "Conv2DBackpropFilter", "MatMul"):
        series = sweep.series(op_type)
        assert series[0] / series[-1] > 2.0, op_type
    # ...so the data-dependent optimizer grows in relative importance,
    # reaching roughly the ~7% the paper reports at 8 threads.
    start = sweep.fraction("ApplyRMSProp", 1)
    end = sweep.fraction("ApplyRMSProp", 8)
    assert end > start
    assert 0.03 < end < 0.15, end
    assert sweep.speedup(8) > 1.5


def test_fig6b_seq2seq(benchmark):
    sweep = benchmark.pedantic(_sweep, args=("seq2seq",), rounds=1,
                               iterations=1)
    print("\n" + sweep.render())

    # seq2seq's small unrolled tensors barely scale: the profile is
    # already flat, and total speedup is marginal.
    assert sweep.speedup(8) < 1.5
    # Elementwise LSTM arithmetic stays the dominant time sink at every
    # thread count.
    assert sweep.op_types[0] in ("Mul", "MatMul", "Add", "Sigmoid")
    # The loss/softmax machinery does not vanish: its share grows or
    # holds as threads increase.
    xent = "SoftmaxCrossEntropyWithLogits"
    if xent in sweep.op_types:
        assert sweep.fraction(xent, 8) >= sweep.fraction(xent, 1) * 0.9


def test_fig6c_memnet(benchmark):
    sweep = benchmark.pedantic(_sweep, args=("memnet",), rounds=1,
                               iterations=1)
    print("\n" + sweep.render())

    # "Many of the operations in the memory layers operate on small,
    # skinny tensors... they do not parallelize well": overall speedup
    # is modest.
    assert sweep.speedup(8) < 2.0
    # "The elementwise multiplication is an exception (it operates on
    # the final outputs of the memory layer, which is a wide tensor)":
    # Mul scales more than the skinny BatchMatMul attention ops.
    mul = sweep.series("Mul")
    bmm = sweep.series("BatchMatMul")
    mul_scaling = mul[0] / mul[-1]
    bmm_scaling = bmm[0] / bmm[-1]
    assert mul_scaling > bmm_scaling
    assert mul_scaling > 1.2
