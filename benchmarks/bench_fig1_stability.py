"""Fig. 1: operation execution times are stationary with low variance.

Traces a workload over many steps and checks that per-op-type measured
execution time distributions are stable: low coefficient of variation
and no drift between the first and second halves of the run.
"""

import numpy as np

from repro import workloads
from repro.profiling.stability import stability_report
from repro.profiling.tracer import Tracer

STEPS = 12


def _trace_speech():
    model = workloads.create("speech", config="default", seed=0)
    tracer = Tracer()
    model.run_training(steps=STEPS, tracer=tracer)
    return tracer


def test_fig1_stationarity(benchmark):
    tracer = benchmark.pedantic(_trace_speech, rounds=1, iterations=1)
    stats = stability_report(tracer, warmup_steps=2, top_n=8)

    print("\nFig. 1: per-op-type execution time across "
          f"{STEPS - 2} steady-state steps (speech, measured)")
    print(f"{'op type':>24s}  {'median':>9s}  {'iqr/med':>7s}  "
          f"{'cv':>6s}  {'drift':>6s}")
    for s in stats:
        print(f"{s.op_type:>24s}  {s.median * 1e3:7.2f}ms  "
              f"{s.robust_dispersion:7.3f}  "
              f"{s.coefficient_of_variation:6.3f}  {s.drift():6.3f}")

    assert stats, "trace produced no op samples"

    # Structural stationarity — the mechanism behind the paper's Fig. 1:
    # every steady-state step executes the identical multiset of ops.
    from collections import Counter
    step_signatures = {
        step: Counter(r.op.name for r in tracer.records_for_step(step))
        for step in range(2, tracer.num_steps)}
    signatures = list(step_signatures.values())
    assert all(sig == signatures[0] for sig in signatures[1:])

    # Distributional stationarity, judged with outlier-resistant spread
    # (shared machines inject scheduler-preemption outliers into wall
    # times; IQR/median tolerates them, a raw cv does not).
    heavy = stats[:3]
    for s in heavy:
        assert s.robust_dispersion < 1.5, (s.op_type, s.robust_dispersion)
        assert s.median > 0.0
    # The heaviest op's per-step time is positive every step (no dropouts).
    assert np.all(heavy[0].samples > 0.0)
