"""Ablation: the application-level graph optimizer's effect.

Section III-C notes that the popular frameworks all converged on "an
application-level, compiler-esque optimizer". This ablation runs our
rewrite passes (identity elimination, constant folding, CSE) over every
workload's training subgraph and measures what they buy: op-count
reduction and modeled step-time savings under the dispatch-dominated
CPU model. The shape: the statically-unrolled recurrent models — whose
graphs repeat the same structure per timestep — gain the most; the
conv nets, whose time lives in a few huge kernels, barely care.
"""

from repro.analysis.suite import get_model
from repro.framework.device_model import cpu
from repro.framework.rewrite import rewrite_graph
from repro.framework.session import Session
from repro.profiling.profile import OperationProfile
from repro.profiling.tracer import Tracer
from repro.workloads import WORKLOAD_NAMES


def _modeled_step(graph, fetches, feed, seed=0):
    session = Session(graph, seed=seed)
    session.run(fetches, feed_dict=feed)  # warmup / variable init
    tracer = Tracer()
    session.run(fetches, feed_dict=feed, tracer=tracer)
    return OperationProfile.from_trace(tracer,
                                       device=cpu(1)).seconds_per_step()


def _study():
    rows = {}
    for name in WORKLOAD_NAMES:
        model = get_model(name, "default")
        fetches = [model.loss, model.train_step]
        feed = model.sample_feed()
        before_ops = len(model.graph.subgraph(fetches))
        before_time = _modeled_step(model.graph, fetches, feed)
        result = rewrite_graph(model.graph, fetches)
        new_fetches = [result.map_tensor(t) for t in fetches]
        after_time = _modeled_step(result.graph, new_fetches,
                                   result.map_feed(feed))
        rows[name] = (before_ops, result.stats.ops_out, before_time,
                      after_time, result.stats)
    return rows


def test_rewrite_ablation(benchmark):
    rows = benchmark.pedantic(_study, rounds=1, iterations=1)

    print("\nGraph-optimizer ablation (training subgraph, modeled cpu1):")
    print(f"{'workload':>10s}  {'ops':>5s} -> {'ops':>5s}  "
          f"{'time':>8s} -> {'time':>8s}  {'saved':>6s}")
    for name, (ops_in, ops_out, before, after, stats) in rows.items():
        saved = 1.0 - after / before
        print(f"{name:>10s}  {ops_in:5d} -> {ops_out:5d}  "
              f"{before * 1e3:6.1f}ms -> {after * 1e3:6.1f}ms  "
              f"{saved:6.1%}")

    for name, (ops_in, ops_out, before, after, stats) in rows.items():
        # The optimizer never grows the graph or slows the modeled step.
        assert ops_out <= ops_in, name
        assert after <= before * 1.02, name

    # The unrolled recurrent models benefit most in op count.
    def reduction(name):
        ops_in, ops_out = rows[name][0], rows[name][1]
        return 1.0 - ops_out / ops_in

    assert reduction("seq2seq") > reduction("vgg")
    assert reduction("seq2seq") > 0.02
