"""Serving SLO benchmark: latency percentiles and overload shedding.

Two measurements per workload, printed side by side and compared
against the committed baseline in ``BENCH_serving_latency.json``
(regenerate with ``python benchmarks/bench_serving_latency.py``):

* **unloaded latency** — closed-loop requests on the real clock
  through a two-replica server; p50/p95/p99 of per-request latency.
  Machine-dependent, reported for trend-watching only.
* **overload behaviour** — an open-loop burst at ~4x the service rate
  on a *virtual* clock with a bounded queue and tight deadlines. The
  shed rate and attainment are deterministic given the seeds, so they
  are asserted exactly against the baseline: admission control must
  shed the excess while every accepted request is answered on time.
"""

import json
import pathlib

from repro import workloads
from repro.serving import (LoadConfig, LoadGenerator, ServingConfig,
                           VirtualClock)

BASELINE_PATH = (pathlib.Path(__file__).parent
                 / "BENCH_serving_latency.json")

#: fast workloads keep the benchmark (and CI smoke) under a minute
BENCH_WORKLOADS = ("memnet", "autoenc")
REQUESTS = 48


def _unloaded_latency(model):
    server = model.serve(config=ServingConfig(
        replicas=2, default_deadline_ms=0.0))
    report = LoadGenerator(server, LoadConfig(requests=REQUESTS)).run()
    return {"p50_ms": report.p50_ms, "p95_ms": report.p95_ms,
            "p99_ms": report.p99_ms}


def _overload_shedding(model):
    # Every batch is stalled 20 ms of virtual time while arrivals come
    # every 1.25 ms — a sustained overload. The bounded queue plus
    # deadline-unmeetable admission must shed the excess; the virtual
    # clock makes the whole trajectory deterministic.
    from repro.framework.faults import ServingFaultPlan, ServingFaultSpec
    server = model.serve(
        config=ServingConfig(replicas=2, queue_limit=8,
                             default_deadline_ms=40.0, est_batch_ms=5.0,
                             seed=2),
        clock=VirtualClock())
    server.install_faults(ServingFaultPlan(
        [ServingFaultSpec("slow_replica", latency_seconds=0.02,
                          max_triggers=None)]))
    report = LoadGenerator(server, LoadConfig(
        requests=REQUESTS, qps=800.0, seed=3)).run()
    assert (report.ok + report.shed + report.deadline
            + report.error) == REQUESTS
    return {"shed_rate": report.shed_rate,
            "attainment": report.attainment}


def measure():
    results = {}
    for name in BENCH_WORKLOADS:
        model = workloads.create(name, config="tiny", seed=0)
        model.run_inference(1)  # warm the plan cache
        results[name] = {**_unloaded_latency(model),
                         **_overload_shedding(model)}
    return results


def test_serving_latency(benchmark):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    baseline = (json.loads(BASELINE_PATH.read_text())["serving"]
                if BASELINE_PATH.exists() else {})
    print("\nServing SLOs (tiny config, 2 replicas, closed loop + "
          "overload burst):")
    for name, row in results.items():
        line = (f"  {name:>10s}  p50 {row['p50_ms']:7.2f} ms  "
                f"p95 {row['p95_ms']:7.2f} ms  p99 {row['p99_ms']:7.2f} ms"
                f"  shed {row['shed_rate']:6.2%}  "
                f"attainment {row['attainment']:6.2%}")
        if name in baseline:
            line += f"  (baseline shed {baseline[name]['shed_rate']:6.2%})"
        print(line)
        assert row["p50_ms"] > 0.0
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
        # Overload is deterministic on the virtual clock: admission
        # control sheds a real fraction and still answers a real
        # fraction of what it accepts on time.
        assert row["shed_rate"] > 0.0
        assert row["attainment"] > 0.0
        if name in baseline:
            assert row["shed_rate"] == baseline[name]["shed_rate"]
            assert row["attainment"] == baseline[name]["attainment"]


def record_baseline():
    import datetime
    import platform
    payload = {
        "metadata": {
            "recorded": datetime.date.today().isoformat(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": "serving: tiny config, 2 replicas; latency real-clock "
                    "closed loop, shedding virtual-clock 800 qps burst",
        },
        "serving": measure(),
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH}")


if __name__ == "__main__":
    record_baseline()
